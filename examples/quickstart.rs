//! Quickstart: run the full study end to end and inspect its products.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Simulates a telemetry campaign on the synthetic Cosmos-like cluster,
//! learns the shape catalog (Fig 5 / Table 2), trains the shape predictor
//! (§5.2), and prints the headline numbers.

use rv_core::framework::{Framework, FrameworkConfig};

fn main() {
    println!("running the scaled-down study (FrameworkConfig::small) ...\n");
    let f = Framework::run(FrameworkConfig::small()).expect("valid config");

    // Table 1 analog: the datasets the study is built on.
    println!("datasets (Table 1 analog):");
    for (name, groups, instances, support) in f.dataset_summary() {
        println!("  {name}: {groups} job groups, {instances} instances (support >= {support})");
    }

    // The shape catalogs.
    for pipe in [&f.ratio, &f.delta] {
        println!("\n{}", pipe.characterization.catalog.to_table());
    }

    // Predictor quality (Fig 7a headline).
    println!(
        "shape prediction accuracy on the test window: Ratio {:.2}%, Delta {:.2}%",
        f.ratio.test_accuracy * 100.0,
        f.delta.test_accuracy * 100.0
    );

    // Predict one upcoming job's distribution.
    let row = &f.d3.store.rows()[0];
    let shape = f.ratio.predictor.predict_row(row);
    let stats = f.ratio.characterization.catalog.stats(shape);
    println!(
        "\nexample: job group `{}` is predicted to follow shape {shape}:",
        row.group.normalized_name
    );
    println!(
        "  outlier probability {:.2}%, IQR {:.3}, p95 {:.3} (ratio to median runtime)",
        stats.outlier_prob * 100.0,
        stats.iqr(),
        stats.p95
    );

    // Top drivers of the model (Gini importance, §5.2).
    println!("\ntop feature importances (Ratio predictor):");
    for (name, v) in f.ratio.predictor.importances().into_iter().take(8) {
        println!("  {name:<28} {v:.4}");
    }
}
