//! What-if planning: which control lever most stabilizes each risky job?
//!
//! ```text
//! cargo run --release --example whatif_planner
//! ```
//!
//! §7 of the paper evaluates three platform levers — disabling spare
//! tokens, shifting vertices to newer SKUs, and balancing machine load.
//! This planner applies all three to every test job and recommends the one
//! whose predicted shape has the smallest interquartile range (i.e. the
//! most stable runtime).

use rv_core::framework::{Framework, FrameworkConfig};
use rv_core::rv_sim::SkuGeneration;
use rv_core::whatif::Scenario;

fn main() {
    // Lever sensitivity needs the full-scale study (the small demo config
    // has too few groups near shape boundaries); expect ~a minute.
    println!(
        "running the full-scale study; this takes a moment ...
"
    );
    let f = Framework::run(FrameworkConfig::default()).expect("valid config");
    let pipe = &f.ratio;
    let catalog = &pipe.characterization.catalog;

    let level =
        f.d3.store
            .rows()
            .iter()
            .map(|r| r.cluster_load)
            .sum::<f64>()
            / f.d3.store.len().max(1) as f64;
    let scenarios = [
        Scenario::DisableSpareTokens,
        Scenario::ShiftSku {
            from: SkuGeneration::Gen3_5,
            to: SkuGeneration::Gen5_2,
        },
        Scenario::PerfectLoadBalance { level },
    ];

    println!("per-job recommendations (jobs whose shape improves under some lever):\n");
    let mut recommended = 0;
    let mut seen = std::collections::BTreeSet::new();
    for row in f.d3.store.rows() {
        if !seen.insert(row.group.clone()) {
            continue;
        }
        let features = pipe.predictor.features_of(row);
        let baseline_shape = pipe.predictor.predict_features(&features);
        let baseline_iqr = catalog.stats(baseline_shape).iqr();

        let mut best: Option<(Scenario, usize, f64)> = None;
        for scenario in scenarios {
            let mut transformed = features.clone();
            scenario.apply(&mut transformed);
            let shape = pipe.predictor.predict_features(&transformed);
            let iqr = catalog.stats(shape).iqr();
            if iqr < baseline_iqr && best.as_ref().map_or(true, |&(_, _, bi)| iqr < bi) {
                best = Some((scenario, shape, iqr));
            }
        }
        if let Some((scenario, shape, iqr)) = best {
            recommended += 1;
            println!(
                "  {:<32} shape {} (IQR {:.3}) -> shape {} (IQR {:.3}) via {}",
                row.group.normalized_name,
                baseline_shape,
                baseline_iqr,
                shape,
                iqr,
                scenario.name()
            );
        }
    }
    println!(
        "\n{recommended} of {} job groups have an improving lever",
        seen.len()
    );
}
