//! Scheduler advisory: order a submission queue by predicted runtime risk.
//!
//! ```text
//! cargo run --release --example scheduler_advisor
//! ```
//!
//! The related work the paper builds on ([23, 70, 84]) uses runtime
//! predictions to drive shortest-processing-time-first scheduling and
//! backfilling. A predicted *distribution* improves on a point estimate:
//! this advisor scores each queued job by its expected normalized runtime
//! AND its tail risk, so a scheduler can run the predictable jobs first and
//! fence off the ones that might blow through their window.

use rv_core::framework::{Framework, FrameworkConfig};
use rv_core::risk::breach_probability;

fn main() {
    let f = Framework::run(FrameworkConfig::small()).expect("valid config");
    let pipe = &f.ratio;
    let catalog = &pipe.characterization.catalog;

    // Treat the first run of every test-window group as "the queue".
    struct Queued {
        name: String,
        expected_s: f64,
        tail_risk: f64,
    }
    let mut queue: Vec<Queued> = Vec::new();
    for key in f.d3.store.group_keys() {
        let Some(row) = f.d3.store.group_rows(key).first().copied() else {
            continue;
        };
        let shape = pipe.predictor.predict_row(row);
        let median = f
            .history
            .median_or(key, &f.d3.store.group_runtimes(key))
            .expect("group has runs");
        // Expected runtime = median x mean predicted ratio; tail risk =
        // probability of exceeding 3x the median.
        let expected_s = median * catalog.pmf(shape).mean();
        let tail_risk = breach_probability(catalog, shape, 3.0);
        queue.push(Queued {
            name: key.normalized_name.clone(),
            expected_s,
            tail_risk,
        });
    }

    // SPF with a risk fence: low-risk jobs sorted by expected runtime first,
    // risky jobs at the back regardless of how short they claim to be.
    queue.sort_by(|a, b| {
        let fa = a.tail_risk > 0.05;
        let fb = b.tail_risk > 0.05;
        fa.cmp(&fb).then(
            a.expected_s
                .partial_cmp(&b.expected_s)
                .expect("finite expectations"),
        )
    });

    println!(
        "{:<34} {:>12} {:>12}",
        "queue order", "E[runtime]", "P(>3x med)"
    );
    for q in queue.iter().take(20) {
        println!(
            "{:<34} {:>11.1}s {:>11.2}%",
            q.name,
            q.expected_s,
            q.tail_risk * 100.0
        );
    }
    let fenced = queue.iter().filter(|q| q.tail_risk > 0.05).count();
    println!(
        "\n{} of {} jobs fenced to the back of the queue for tail risk",
        fenced,
        queue.len()
    );
}
