//! Cluster exploration: how many distribution shapes does a workload have?
//!
//! ```text
//! cargo run --release --example cluster_explorer
//! ```
//!
//! Reproduces the §4.2 design loop interactively: build the group PMFs,
//! sweep k over the inertia curve, pick the elbow, then inspect what kinds
//! of jobs populate each shape.

use std::collections::BTreeMap;

use rv_core::characterize::{characterize, group_distributions, CharacterizeConfig};
use rv_core::framework::FrameworkConfig;
use rv_core::rv_cluster::{elbow_point, inertia_curve, KMeansConfig};
use rv_core::rv_scope::WorkloadGenerator;
use rv_core::rv_sim::{Cluster, SimConfig};
use rv_core::rv_stats::Normalization;
use rv_core::rv_telemetry::{collect_telemetry, Dataset, DatasetSpec};

fn main() {
    // Collect a campaign directly through the substrate crates.
    let config = FrameworkConfig::small();
    let mut generator_config = config.generator.clone();
    generator_config.window_days_hint = config.campaign.window_days;
    let generator = WorkloadGenerator::new(generator_config);
    let cluster = Cluster::new(config.cluster.clone());
    let sim = SimConfig::default();
    let store = collect_telemetry(&generator, &cluster, &sim, &config.campaign)
        .expect("valid campaign config");
    let d1 = Dataset::assemble(
        &store,
        DatasetSpec::new("D1", 0.0, config.campaign.window_days, 10),
    );
    println!(
        "campaign: {} instances across {} groups; characterizing on {} groups\n",
        store.len(),
        store.n_groups(),
        d1.n_groups()
    );

    // Inertia curve and elbow (§4.2's "number of clusters" design choice).
    let ch_config = CharacterizeConfig {
        min_support: 10,
        ..CharacterizeConfig::paper(Normalization::Ratio)
    };
    let dists = group_distributions(&d1.store, &ch_config);
    let vectors: Vec<Vec<f64>> = dists.pmfs.iter().map(|p| p.probs().to_vec()).collect();
    let curve = inertia_curve(&vectors, 1..=10, &KMeansConfig::default());
    println!("inertia curve:");
    for &(k, inertia) in &curve {
        let bar = "#".repeat((inertia / curve[0].1 * 40.0) as usize);
        println!("  k={k:>2} {inertia:>8.4} {bar}");
    }
    let k = elbow_point(&curve).unwrap_or(4).max(3);
    println!("\nelbow suggests k = {k}\n");

    // Characterize at the chosen k and describe each shape's membership.
    let ch = characterize(
        &d1.store,
        &CharacterizeConfig {
            k,
            min_support: 10,
            ..CharacterizeConfig::paper(Normalization::Ratio)
        },
    );
    println!("{}", ch.catalog.to_table());
    let mut members: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (key, &shape) in &ch.memberships {
        members
            .entry(shape)
            .or_default()
            .push(key.normalized_name.clone());
    }
    for (shape, names) in members {
        let sample: Vec<&str> = names.iter().take(4).map(|s| s.as_str()).collect();
        println!(
            "shape {shape}: {} groups, e.g. {}",
            names.len(),
            sample.join(", ")
        );
    }
}
