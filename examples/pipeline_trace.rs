//! Pipeline tracing: run the full study with observability on and inspect
//! both outputs — the JSON-lines trace and the end-of-run summary.
//!
//! ```text
//! cargo run --release --example pipeline_trace
//! ```
//!
//! Initializes `rv-obs` with a trace sink, runs the scaled-down study, then
//! prints the per-phase wall times, simulator counters (all in virtual
//! sim-time), and a breakdown of the trace file's event types.

use std::collections::BTreeMap;

use rv_core::framework::{Framework, FrameworkConfig};

fn main() {
    let trace_path = std::env::temp_dir().join("runvar_pipeline_trace.jsonl");
    rv_obs::init(rv_obs::ObsConfig {
        trace_path: Some(trace_path.clone()),
        log_level: None,
    })
    .expect("create trace file");

    rv_obs::info!("tracing the scaled-down study to {}", trace_path.display());
    let f = Framework::run(FrameworkConfig::small()).expect("valid config");
    rv_obs::flush();

    println!(
        "study finished: Ratio accuracy {:.3}, Delta accuracy {:.3}\n",
        f.ratio.test_accuracy, f.delta.test_accuracy
    );

    // The human-readable report: phase wall times + sim counters.
    print!("{}", rv_obs::render_summary());

    // The machine-readable trace: one JSON object per line.
    let text = std::fs::read_to_string(&trace_path).expect("read trace");
    let mut kinds: BTreeMap<String, usize> = BTreeMap::new();
    for line in text.lines() {
        // `"type"` is always the first key of a well-formed trace line.
        let kind = line
            .split('"')
            .nth(3)
            .expect("trace line has a type field")
            .to_string();
        *kinds.entry(kind).or_default() += 1;
    }
    println!("\ntrace event types ({}):", trace_path.display());
    for (kind, count) in &kinds {
        println!("  {kind:<24} x{count}");
    }
}
