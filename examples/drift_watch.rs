//! Drift watching: detect when a recurring job stops following its shape.
//!
//! ```text
//! cargo run --release --example drift_watch
//! ```
//!
//! §1 of the paper asks "how likely it is for the next job run to be an
//! outlier compared to historic runs". The [`rv_core::monitor::DriftMonitor`]
//! answers the streaming version: feed each completed run in, and get a
//! log-likelihood-ratio verdict on whether the group's recent window still
//! matches the shape it was assigned.

use rv_core::framework::{Framework, FrameworkConfig};
use rv_core::monitor::DriftMonitor;

fn main() {
    let f = Framework::run(FrameworkConfig::small()).expect("valid config");
    let pipe = &f.ratio;
    let catalog = pipe.characterization.catalog.clone();
    let mut monitor = DriftMonitor::new(catalog, 16, 6, 0.4);

    // Track every test-window group at its assigned shape.
    for (key, &shape) in &pipe.test_labels {
        let median = f
            .history
            .median_or(key, &f.d3.store.group_runtimes(key))
            .expect("group has runs");
        monitor.track(key.clone(), shape, median);
    }
    println!("tracking {} job groups\n", monitor.n_tracked());

    // Replay the test window as a stream; report drifts — and then inject a
    // synthetic regression (a job suddenly running 2.5x slower) to show the
    // detector firing.
    let mut drifts = 0;
    for row in f.d3.store.rows() {
        if !pipe.test_labels.contains_key(&row.group) {
            continue;
        }
        if let Some(v) = monitor
            .observe(&row.group, row.runtime_s)
            .expect("tracked above")
        {
            if v.drifted {
                drifts += 1;
                println!(
                    "DRIFT {}: shape {} -> {} (advantage {:.2} nats/obs over {} runs)",
                    row.group.normalized_name,
                    v.assigned_shape,
                    v.best_shape,
                    v.advantage_per_obs,
                    v.window_len
                );
            }
        }
    }
    println!("organic drifts in the test window: {drifts}\n");

    // Inject a regression into one healthy group.
    let victim = pipe.test_labels.keys().next().expect("has groups").clone();
    let median = f
        .history
        .median_or(&victim, &f.d3.store.group_runtimes(&victim))
        .expect("median");
    println!(
        "injecting a 2.5x slowdown into `{}` (median {:.1}s) ...",
        victim.normalized_name, median
    );
    for i in 0..16 {
        if let Some(v) = monitor
            .observe(&victim, median * 2.5 * (1.0 + (i % 3) as f64 * 0.02))
            .expect("victim is tracked")
        {
            if v.drifted {
                println!(
                    "detected after {} slow runs: shape {} -> {} ({:.2} nats/obs)",
                    i + 1,
                    v.assigned_shape,
                    v.best_shape,
                    v.advantage_per_obs
                );
                return;
            }
        }
    }
    println!("no drift detected (unexpected for a 2.5x regression)");
}
