//! SLA monitoring: flag recurring jobs whose *predicted runtime
//! distribution* puts their SLO at risk.
//!
//! ```text
//! cargo run --release --example sla_monitor
//! ```
//!
//! The paper's motivation (§1): pipelines have strong data dependencies, so
//! operators need the probability that the *next* run of a job exceeds a
//! threshold — a question a point estimate cannot answer but a predicted
//! distribution can. For each job group in the test window we predict its
//! shape and read `P(runtime > SLO)` off the shape PMF.

use rv_core::framework::{Framework, FrameworkConfig};
use rv_core::risk::{assess_store, RiskLevel};

fn main() {
    let f = Framework::run(FrameworkConfig::small()).expect("valid config");

    // SLO policy: each job must finish within 2x its historic median.
    let slo_ratio = 2.0;
    println!("SLO policy: runtime must stay below {slo_ratio}x the historic median\n");
    println!(
        "{:<34} {:>7} {:>10} {:>10} {:>8}",
        "job group", "shape", "P(breach)", "P(outlier)", "risk"
    );

    let assessments = assess_store(
        &f.ratio.predictor,
        &f.ratio.characterization.catalog,
        &f.d3.store,
        slo_ratio,
    );
    let mut flagged = 0;
    for (name, a) in &assessments {
        if a.level == RiskLevel::Low {
            continue;
        }
        flagged += 1;
        println!(
            "{:<34} {:>7} {:>9.2}% {:>9.2}% {:>8}",
            truncate(name, 34),
            a.shape,
            a.breach_probability * 100.0,
            a.outlier_probability * 100.0,
            a.level
        );
    }
    println!(
        "\n{flagged} of {} job groups flagged for SLO review",
        assessments.len()
    );
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}..", &s[..n - 2])
    }
}
