//! Cache behavior end to end: a cold cached run must match an uncached run
//! byte for byte, a warm rerun must load every artifact (verified through
//! the `pipeline.cache.*` counters) and still be byte-identical, a
//! predictor-only config change must reuse the simulated telemetry and
//! characterizations while retraining, and a seed change must invalidate
//! every stage.
//!
//! Everything lives in one `#[test]` because the rv-obs metrics hub is
//! process-global: parallel tests would race on the counters.

use std::fs;

use rv_core::framework::{Framework, FrameworkConfig};
use rv_core::persist::write_catalog;
use rv_core::pipeline::ArtifactCache;
use rv_core::rv_telemetry::write_store;

fn small() -> FrameworkConfig {
    let mut cfg = FrameworkConfig::small();
    // Shrink further: this test runs the framework five times.
    cfg.generator.n_templates = 24;
    cfg.campaign.window_days = 12.0;
    cfg.characterize_support = 8;
    cfg
}

/// Serializes a run's externally visible artifacts (same digest as the
/// determinism suite): campaign, both catalogs, every D3 prediction.
fn artifact_bytes(f: &Framework) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_store(&f.store, &mut bytes).expect("serialize store");
    write_catalog(&f.ratio.characterization.catalog, &mut bytes).expect("serialize ratio catalog");
    write_catalog(&f.delta.characterization.catalog, &mut bytes).expect("serialize delta catalog");
    for pipe in [&f.ratio, &f.delta] {
        for row in f.d3.store.rows() {
            bytes.push(pipe.predictor.predict_row(row) as u8);
        }
        bytes.extend_from_slice(&pipe.test_accuracy.to_be_bytes());
    }
    bytes
}

fn hits(stage: &str) -> u64 {
    rv_obs::counter(&format!("pipeline.cache.hit.{stage}")).get()
}

fn misses(stage: &str) -> u64 {
    rv_obs::counter(&format!("pipeline.cache.miss.{stage}")).get()
}

#[test]
fn cache_reuses_matching_stages_and_invalidates_downstream() {
    let dir = std::env::temp_dir().join(format!("rv-pipeline-cache-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    // Uncached reference run: the cache counters must not move at all, so
    // uncached metric snapshots stay identical to the pre-pipeline ones.
    let reference = Framework::run(small()).expect("valid config");
    assert_eq!(rv_obs::counter("pipeline.cache.hit").get(), 0);
    assert_eq!(rv_obs::counter("pipeline.cache.miss").get(), 0);

    // Cold cached run: all ten stage artifacts miss, compute, persist —
    // and the outputs match the uncached run exactly.
    let cache = ArtifactCache::new(&dir).expect("cache dir");
    let cold = Framework::run_cached(small(), &cache).expect("valid config");
    assert_eq!(cache.stats(), (0, 10), "cold run must miss every stage");
    assert_eq!(misses("simulate"), 1);
    assert_eq!(artifact_bytes(&cold), artifact_bytes(&reference));

    // Warm rerun: every artifact loads (Simulate and Characterize are
    // skipped — their hit counters move, their miss counters do not) and
    // the outputs are still byte-identical.
    let cache = ArtifactCache::new(&dir).expect("cache dir");
    let warm = Framework::run_cached(small(), &cache).expect("valid config");
    assert_eq!(cache.stats(), (10, 0), "warm run must hit every stage");
    assert_eq!(hits("simulate"), 1);
    assert_eq!(hits("characterize-ratio"), 1);
    assert_eq!(hits("characterize-delta"), 1);
    assert_eq!(misses("simulate"), 1, "warm run must not re-simulate");
    assert_eq!(artifact_bytes(&warm), artifact_bytes(&reference));

    // Predictor-only change: telemetry, datasets, characterize, and label
    // artifacts are reused; train and evaluate recompute.
    let mut tweaked = small();
    tweaked.predictor.probe_rounds += 1;
    let train_misses_before = misses("train-ratio");
    let cache = ArtifactCache::new(&dir).expect("cache dir");
    let retrained = Framework::run_cached(tweaked, &cache).expect("valid config");
    assert_eq!(
        cache.stats(),
        (6, 4),
        "predictor change must hit simulate/datasets/characterize/label and recompute train/evaluate"
    );
    assert_eq!(
        misses("simulate"),
        1,
        "predictor change must not re-simulate"
    );
    assert_eq!(hits("characterize-ratio"), 2);
    assert_eq!(misses("train-ratio"), train_misses_before + 1);
    let (mut a, mut b) = (Vec::new(), Vec::new());
    write_store(&retrained.store, &mut a).expect("serialize");
    write_store(&reference.store, &mut b).expect("serialize");
    assert_eq!(a, b, "reused telemetry must be the cached campaign");

    // Seed change: every fingerprint moves, everything recomputes.
    let mut reseeded = small();
    reseeded.generator.seed ^= 0xdead_beef;
    let cache = ArtifactCache::new(&dir).expect("cache dir");
    Framework::run_cached(reseeded, &cache).expect("valid config");
    assert_eq!(
        cache.stats(),
        (0, 10),
        "seed change must invalidate every stage"
    );

    let _ = fs::remove_dir_all(&dir);
}
