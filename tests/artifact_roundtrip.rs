//! Artifact codec round trips: every stage artifact must survive a
//! write→read→write cycle byte-for-byte (floats go through `Display`, which
//! is shortest-round-trip in Rust), corrupt inputs must surface as parse
//! errors rather than panics, and stage fingerprints must be stable
//! functions of the configuration.

use std::sync::OnceLock;

use proptest::prelude::*;

use rv_core::framework::{Framework, FrameworkConfig};
use rv_core::pipeline::artifact::{
    read_characterization, read_datasets, read_evaluation, read_labels, read_predictor,
    read_telemetry, write_characterization, write_datasets, write_evaluation, write_labels,
    write_predictor, write_telemetry, DatasetsArtifact, EvaluationArtifact, LabelsArtifact,
};
use rv_core::pipeline::stage_fingerprints;
use rv_core::predictor::{ModelKind, PredictorConfig, ShapePredictor};
use rv_core::rv_learn::{GbdtConfig, LineReader, RandomForestConfig, SerializeError};
use rv_core::rv_telemetry::FeatureExtractor;

fn small() -> FrameworkConfig {
    let mut cfg = FrameworkConfig::small();
    // Shrink further: this binary trains four extra predictors.
    cfg.generator.n_templates = 24;
    cfg.campaign.window_days = 12.0;
    cfg.characterize_support = 8;
    cfg
}

fn framework() -> &'static Framework {
    static FRAMEWORK: OnceLock<Framework> = OnceLock::new();
    FRAMEWORK.get_or_init(|| Framework::run(small()).expect("valid config"))
}

/// Writes `value`, reads it back, writes the reconstruction, and returns
/// `(reconstruction, first_bytes, second_bytes)`.
fn recycle<T>(
    value: &T,
    write: impl Fn(&mut Vec<u8>, &T) -> std::io::Result<()>,
    read: impl Fn(&mut LineReader<std::io::Cursor<Vec<u8>>>) -> Result<T, SerializeError>,
) -> (T, Vec<u8>, Vec<u8>) {
    let mut bytes = Vec::new();
    write(&mut bytes, value).expect("serialize");
    let mut r = LineReader::new(std::io::Cursor::new(bytes.clone()));
    let back = read(&mut r).expect("deserialize");
    assert!(
        r.try_next_line().expect("readable").is_none(),
        "reader must consume the whole artifact"
    );
    let mut again = Vec::new();
    write(&mut again, &back).expect("re-serialize");
    (back, bytes, again)
}

#[test]
fn telemetry_round_trips_byte_for_byte() {
    let f = framework();
    let (back, bytes, again) = recycle(&f.store, write_telemetry, read_telemetry);
    assert_eq!(bytes, again);
    assert_eq!(back.len(), f.store.len());
    assert_eq!(back.n_groups(), f.store.n_groups());
}

#[test]
fn datasets_round_trip_byte_for_byte() {
    let f = framework();
    let value = DatasetsArtifact {
        d1: f.d1.clone(),
        d2: f.d2.clone(),
        d3: f.d3.clone(),
        history: f.history.clone(),
    };
    let (back, bytes, again) = recycle(&value, write_datasets, read_datasets);
    assert_eq!(bytes, again);
    for (a, b) in [(&back.d1, &f.d1), (&back.d2, &f.d2), (&back.d3, &f.d3)] {
        assert_eq!(a.spec.name, b.spec.name);
        assert_eq!(a.spec.from_days.to_bits(), b.spec.from_days.to_bits());
        assert_eq!(a.spec.to_days.to_bits(), b.spec.to_days.to_bits());
        assert_eq!(a.spec.min_support, b.spec.min_support);
        assert_eq!(a.n_instances(), b.n_instances());
    }
    assert_eq!(back.history.len(), f.history.len());
    for ((ka, sa), (kb, sb)) in back.history.iter().zip(f.history.iter()) {
        assert_eq!(ka, kb);
        assert_eq!(sa, sb);
    }
}

#[test]
fn characterizations_round_trip_byte_for_byte() {
    let f = framework();
    for pipe in [&f.ratio, &f.delta] {
        let value = pipe.characterization.clone();
        let (back, bytes, again) = recycle(&value, write_characterization, read_characterization);
        assert_eq!(bytes, again, "{} catalog diverged", pipe.normalization);
        assert_eq!(back.catalog.normalization, value.catalog.normalization);
        assert_eq!(back.catalog.spec, value.catalog.spec);
        assert_eq!(back.catalog.n_shapes(), value.catalog.n_shapes());
        for i in 0..value.catalog.n_shapes() {
            assert_eq!(back.catalog.pmf(i), value.catalog.pmf(i));
            assert_eq!(back.catalog.stats(i), value.catalog.stats(i));
        }
        assert_eq!(back.memberships, value.memberships);
        assert_eq!(back.inertia.to_bits(), value.inertia.to_bits());
    }
}

#[test]
fn labels_round_trip_byte_for_byte() {
    let f = framework();
    let value = LabelsArtifact {
        train: f.ratio.train_labels.clone(),
        test: f.ratio.test_labels.clone(),
    };
    let (back, bytes, again) = recycle(&value, write_labels, read_labels);
    assert_eq!(bytes, again);
    assert_eq!(back, value);
}

#[test]
fn predictors_round_trip_for_every_model_kind() {
    let f = framework();
    let kinds = [
        ModelKind::Gbdt(GbdtConfig {
            n_rounds: 5,
            ..Default::default()
        }),
        ModelKind::RandomForest(RandomForestConfig {
            n_trees: 5,
            ..Default::default()
        }),
        ModelKind::NaiveBayes,
        ModelKind::Ensemble(
            GbdtConfig {
                n_rounds: 5,
                ..Default::default()
            },
            RandomForestConfig {
                n_trees: 5,
                ..Default::default()
            },
        ),
    ];
    for model in kinds {
        let config = PredictorConfig {
            model,
            ..PredictorConfig::default()
        };
        let (predictor, _) = ShapePredictor::train(
            &f.d2.store,
            &f.ratio.train_labels,
            FeatureExtractor::new(f.history.clone()),
            f.config.k,
            &config,
        );
        let (back, bytes, again) = recycle(&predictor, write_predictor, read_predictor);
        assert_eq!(bytes, again, "{model:?} bytes diverged");
        assert_eq!(back.n_shapes(), predictor.n_shapes());
        assert_eq!(back.selection(), predictor.selection());
        assert_eq!(back.fitted(), predictor.fitted());
        for row in f.d3.store.rows() {
            assert_eq!(
                back.predict_row(row),
                predictor.predict_row(row),
                "{model:?} prediction diverged"
            );
        }
    }
}

#[test]
fn evaluation_round_trips_byte_for_byte() {
    let f = framework();
    let value = EvaluationArtifact {
        test_accuracy: f.ratio.test_accuracy,
        confusion: f.ratio.confusion.clone(),
        n_test_instances: f.ratio.confusion.counts().iter().flatten().sum::<u64>() as usize,
    };
    let (back, bytes, again) = recycle(&value, write_evaluation, read_evaluation);
    assert_eq!(bytes, again);
    assert_eq!(back, value);
}

#[test]
fn corrupt_artifacts_error_instead_of_panicking() {
    // Truncation mid-artifact.
    let f = framework();
    let mut bytes = Vec::new();
    write_telemetry(&mut bytes, &f.store).expect("serialize");
    bytes.truncate(bytes.len() / 2);
    let mut r = LineReader::new(bytes.as_slice());
    read_telemetry(&mut r).expect_err("truncated store must fail");

    // A PMF that does not sum to 1 must be rejected before Pmf::from_probs.
    let text = "catalog,Ratio,0,10,2,1,0.5\n\
                shape,0,0,1,2,3,0.1,4,40\n\
                pmf,0,0.9,0.9\n\
                members,0\n";
    let mut r = LineReader::new(text.as_bytes());
    let err = read_characterization(&mut r).expect_err("bad pmf must fail");
    assert!(err.message.contains("sum to 1"), "{err}");

    // Non-finite percentiles would poison the catalog's IQR ranking.
    let text = "catalog,Ratio,0,10,2,1,0.5\n\
                shape,0,0,NaN,2,3,0.1,4,40\n";
    let mut r = LineReader::new(text.as_bytes());
    let err = read_characterization(&mut r).expect_err("NaN percentile must fail");
    assert!(err.message.contains("finite"), "{err}");

    // Wrong field counts.
    let mut r = LineReader::new("evaluation,0.5,3\n".as_bytes());
    read_evaluation(&mut r).expect_err("short evaluation header must fail");
    let mut r = LineReader::new("train,1\nlabel,a,zz,0\n".as_bytes());
    let err = read_labels(&mut r).expect_err("bad signature must fail");
    assert!(err.message.contains("signature"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Fingerprints are pure functions of the configuration.
    #[test]
    fn fingerprints_are_deterministic(seed in 0u64..u64::MAX, k in 2usize..12) {
        let mut cfg = FrameworkConfig::small();
        cfg.generator.seed = seed;
        cfg.k = k;
        prop_assert_eq!(stage_fingerprints(&cfg), stage_fingerprints(&cfg.clone()));
    }

    // A generator-seed change reaches every stage fingerprint.
    #[test]
    fn seed_perturbation_invalidates_all_stages(seed in 0u64..u64::MAX, delta in 1u64..1000) {
        let mut a = FrameworkConfig::small();
        a.generator.seed = seed;
        let mut b = a.clone();
        b.generator.seed = seed.wrapping_add(delta);
        let fa = stage_fingerprints(&a);
        let fb = stage_fingerprints(&b);
        prop_assert_ne!(fa.simulate, fb.simulate);
        prop_assert_ne!(fa.datasets, fb.datasets);
        for i in 0..2 {
            prop_assert_ne!(fa.characterize[i], fb.characterize[i]);
            prop_assert_ne!(fa.label[i], fb.label[i]);
            prop_assert_ne!(fa.train[i], fb.train[i]);
            prop_assert_ne!(fa.evaluate[i], fb.evaluate[i]);
        }
    }

    // A predictor-only change leaves every upstream fingerprint intact.
    #[test]
    fn predictor_perturbation_preserves_upstream(probe in 1usize..64) {
        let a = FrameworkConfig::small();
        let mut b = a.clone();
        b.predictor.probe_rounds = a.predictor.probe_rounds + probe;
        let fa = stage_fingerprints(&a);
        let fb = stage_fingerprints(&b);
        prop_assert_eq!(fa.simulate, fb.simulate);
        prop_assert_eq!(fa.datasets, fb.datasets);
        prop_assert_eq!(fa.characterize, fb.characterize);
        prop_assert_eq!(fa.label, fb.label);
        for i in 0..2 {
            prop_assert_ne!(fa.train[i], fb.train[i]);
            prop_assert_ne!(fa.evaluate[i], fb.evaluate[i]);
        }
    }
}
