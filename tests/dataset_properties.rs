//! Structural properties of the simulated campaign and its datasets —
//! the Table 1 machinery and the §3.2 sources of variation.

use rv_core::framework::{Framework, FrameworkConfig};
use rv_core::rv_stats::Summary;
use rv_core::rv_telemetry::{FeatureExtractor, FeatureSchema, GroupHistory};

use std::sync::OnceLock;

fn framework() -> &'static Framework {
    static FRAMEWORK: OnceLock<Framework> = OnceLock::new();
    FRAMEWORK.get_or_init(|| Framework::run(FrameworkConfig::small()).expect("valid config"))
}

#[test]
fn datasets_respect_window_and_support() {
    let f = framework();
    for ds in [&f.d1, &f.d2, &f.d3] {
        let from_s = ds.spec.from_days * 86_400.0;
        let to_s = ds.spec.to_days * 86_400.0;
        for key in ds.store.group_keys() {
            let rows = ds.store.group_rows(key);
            assert!(
                rows.len() >= ds.spec.min_support,
                "{}: group {key} below support",
                ds.spec.name
            );
            for r in rows {
                assert!(r.submit_time_s >= from_s && r.submit_time_s < to_s);
            }
        }
    }
}

#[test]
fn recurrences_share_group_but_vary() {
    // §3.2: within a group, input sizes and token usage vary across runs.
    let f = framework();
    let mut groups_with_input_variation = 0;
    let mut groups_with_token_variation = 0;
    let mut n_groups = 0;
    for key in f.d1.store.group_keys() {
        let rows = f.d1.store.group_rows(key);
        if rows.len() < 5 {
            continue;
        }
        n_groups += 1;
        let inputs: Vec<f64> = rows.iter().map(|r| r.data_read_gb).collect();
        let peaks: Vec<f64> = rows.iter().map(|r| r.token_max as f64).collect();
        let s_in = Summary::compute(&inputs).expect("non-empty");
        let s_tok = Summary::compute(&peaks).expect("non-empty");
        if s_in.max > s_in.min {
            groups_with_input_variation += 1;
        }
        if s_tok.max > s_tok.min {
            groups_with_token_variation += 1;
        }
    }
    assert!(n_groups > 10);
    assert!(groups_with_input_variation as f64 > 0.9 * n_groups as f64);
    assert!(groups_with_token_variation as f64 > 0.5 * n_groups as f64);
}

#[test]
fn environment_features_track_diurnal_cycle() {
    // Submit-time cluster load must span a real range over the campaign.
    let f = framework();
    let loads: Vec<f64> = f.store.rows().iter().map(|r| r.cluster_load).collect();
    let s = Summary::compute(&loads).expect("non-empty");
    assert!(s.max - s.min > 0.25, "load range {} .. {}", s.min, s.max);
    // Spare availability is anti-correlated with load.
    let spare: Vec<f64> = f.store.rows().iter().map(|r| r.spare_fraction).collect();
    let corr = rv_core::rv_learn::feature_select::pearson(&loads, &spare);
    assert!(corr < -0.9, "load/spare correlation {corr}");
}

#[test]
fn rare_disruptions_form_a_small_tail() {
    let f = framework();
    let n = f.store.len();
    let disrupted = f.store.rows().iter().filter(|r| r.disrupted).count();
    let rate = disrupted as f64 / n as f64;
    // The paper: stalagmite runs are rare, <5% of all runs.
    assert!(rate > 0.0005, "no disruptions at all ({disrupted}/{n})");
    assert!(rate < 0.05, "disruption rate too high: {rate}");
}

#[test]
fn every_feature_vector_is_finite_and_fixed_width() {
    let f = framework();
    let extractor = FeatureExtractor::new(GroupHistory::compute(&f.d1.store));
    for row in f.store.rows() {
        let x = extractor.extract(row);
        assert_eq!(x.len(), FeatureSchema::WIDTH);
        for (i, v) in x.iter().enumerate() {
            assert!(v.is_finite(), "feature {i} of {} not finite", row.group);
        }
    }
}

#[test]
fn token_accounting_is_consistent() {
    let f = framework();
    for r in f.store.rows() {
        assert!(r.token_max >= r.token_min);
        assert!(r.token_avg <= r.token_max as f64 + 1e-9);
        assert!(r.spare_avg >= 0.0);
        // Spare usage cannot exceed cap - 1 times the allocation.
        let cap = f.config.sim.spare.cap_multiplier;
        assert!(
            r.spare_avg <= (cap - 1.0) * r.allocated_tokens as f64 + 1e-9,
            "group {} spare {} alloc {}",
            r.group,
            r.spare_avg,
            r.allocated_tokens
        );
        let frac_sum: f64 = r.sku_fractions.iter().sum();
        assert!((frac_sum - 1.0).abs() < 1e-6);
        assert_eq!(r.sku_vertex_counts.iter().sum::<u64>(), r.total_vertices);
    }
}
