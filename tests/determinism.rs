//! Reproducibility: the entire study is a deterministic function of its
//! seeds. Two runs with the same configuration must agree bit for bit; a
//! different seed must produce a genuinely different campaign.

use rv_core::framework::{Framework, FrameworkConfig};

fn small() -> FrameworkConfig {
    let mut cfg = FrameworkConfig::small();
    // Shrink further: this test runs the framework twice.
    cfg.generator.n_templates = 24;
    cfg.campaign.window_days = 12.0;
    cfg.characterize_support = 8;
    cfg
}

#[test]
fn identical_configs_produce_identical_studies() {
    let a = Framework::run(small());
    let b = Framework::run(small());

    assert_eq!(a.store.len(), b.store.len());
    for (ra, rb) in a.store.rows().iter().zip(b.store.rows()) {
        assert_eq!(ra.runtime_s, rb.runtime_s);
        assert_eq!(ra.group, rb.group);
        assert_eq!(ra.spare_avg, rb.spare_avg);
    }
    assert_eq!(a.ratio.test_accuracy, b.ratio.test_accuracy);
    assert_eq!(a.delta.test_accuracy, b.delta.test_accuracy);
    assert_eq!(a.ratio.train_labels, b.ratio.train_labels);
    assert_eq!(a.ratio.test_labels, b.ratio.test_labels);
    for (row_a, row_b) in a.d3.store.rows().iter().zip(b.d3.store.rows()) {
        assert_eq!(
            a.ratio.predictor.predict_row(row_a),
            b.ratio.predictor.predict_row(row_b)
        );
    }
    for i in 0..a.config.k {
        assert_eq!(
            a.ratio.characterization.catalog.pmf(i).probs(),
            b.ratio.characterization.catalog.pmf(i).probs()
        );
    }
}

#[test]
fn different_seed_changes_the_campaign() {
    let a = Framework::run(small());
    let mut cfg = small();
    cfg.generator.seed ^= 0xdead_beef;
    cfg.sim.seed ^= 0x1234_5678;
    let b = Framework::run(cfg);
    let same_runtime = a
        .store
        .rows()
        .iter()
        .zip(b.store.rows())
        .filter(|(x, y)| x.runtime_s == y.runtime_s)
        .count();
    assert!(
        (same_runtime as f64) < 0.01 * a.store.len() as f64,
        "{same_runtime} of {} runtimes identical across seeds",
        a.store.len()
    );
}
