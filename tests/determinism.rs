//! Reproducibility: the entire study is a deterministic function of its
//! seeds. Two runs with the same configuration must agree bit for bit; a
//! different seed must produce a genuinely different campaign; and the
//! worker-pool width (`--threads` / `RUNVAR_THREADS`) must not leak into
//! any artifact.

use proptest::prelude::*;

use rv_core::framework::{Framework, FrameworkConfig};
use rv_core::persist::write_catalog;
use rv_core::rv_telemetry::write_store;

fn small() -> FrameworkConfig {
    let mut cfg = FrameworkConfig::small();
    // Shrink further: this test runs the framework twice.
    cfg.generator.n_templates = 24;
    cfg.campaign.window_days = 12.0;
    cfg.characterize_support = 8;
    cfg
}

#[test]
fn identical_configs_produce_identical_studies() {
    let a = Framework::run(small()).expect("valid config");
    let b = Framework::run(small()).expect("valid config");

    assert_eq!(a.store.len(), b.store.len());
    for (ra, rb) in a.store.rows().iter().zip(b.store.rows()) {
        assert_eq!(ra.runtime_s, rb.runtime_s);
        assert_eq!(ra.group, rb.group);
        assert_eq!(ra.spare_avg, rb.spare_avg);
    }
    assert_eq!(a.ratio.test_accuracy, b.ratio.test_accuracy);
    assert_eq!(a.delta.test_accuracy, b.delta.test_accuracy);
    assert_eq!(a.ratio.train_labels, b.ratio.train_labels);
    assert_eq!(a.ratio.test_labels, b.ratio.test_labels);
    for (row_a, row_b) in a.d3.store.rows().iter().zip(b.d3.store.rows()) {
        assert_eq!(
            a.ratio.predictor.predict_row(row_a),
            b.ratio.predictor.predict_row(row_b)
        );
    }
    for i in 0..a.config.k {
        assert_eq!(
            a.ratio.characterization.catalog.pmf(i).probs(),
            b.ratio.characterization.catalog.pmf(i).probs()
        );
    }
}

#[test]
fn different_seed_changes_the_campaign() {
    let a = Framework::run(small()).expect("valid config");
    let mut cfg = small();
    cfg.generator.seed ^= 0xdead_beef;
    cfg.sim.seed ^= 0x1234_5678;
    let b = Framework::run(cfg).expect("valid config");
    let same_runtime = a
        .store
        .rows()
        .iter()
        .zip(b.store.rows())
        .filter(|(x, y)| x.runtime_s == y.runtime_s)
        .count();
    assert!(
        (same_runtime as f64) < 0.01 * a.store.len() as f64,
        "{same_runtime} of {} runtimes identical across seeds",
        a.store.len()
    );
}

/// Serializes a run's externally visible artifacts: the full telemetry
/// campaign, both shape catalogs, and every D3 prediction.
fn artifact_bytes(f: &Framework) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_store(&f.store, &mut bytes).expect("serialize store");
    write_catalog(&f.ratio.characterization.catalog, &mut bytes).expect("serialize ratio catalog");
    write_catalog(&f.delta.characterization.catalog, &mut bytes).expect("serialize delta catalog");
    for pipe in [&f.ratio, &f.delta] {
        for row in f.d3.store.rows() {
            bytes.push(pipe.predictor.predict_row(row) as u8);
        }
        bytes.extend_from_slice(&pipe.test_accuracy.to_be_bytes());
    }
    bytes
}

/// The ISSUE's core contract: `--threads 4` and `--threads 1` must produce
/// byte-identical artifacts over the full pipeline.
#[test]
fn parallel_run_matches_serial_byte_for_byte() {
    rv_par::set_global_threads(1);
    let serial = Framework::run(small()).expect("valid config");
    rv_par::set_global_threads(4);
    let parallel = Framework::run(small()).expect("valid config");
    rv_par::set_global_threads(0);

    assert_eq!(
        artifact_bytes(&serial),
        artifact_bytes(&parallel),
        "threads=1 and threads=4 artifacts diverge"
    );
}

// `par_map` must return results in input-index order for arbitrary item
// counts and thread counts (0 = auto).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn par_map_preserves_input_order(n in 0usize..257, threads in 0usize..9) {
        let out = rv_par::par_map(n, threads, |i| i.wrapping_mul(2_654_435_761));
        let expected: Vec<usize> = (0..n).map(|i| i.wrapping_mul(2_654_435_761)).collect();
        prop_assert_eq!(out, expected);
    }
}
