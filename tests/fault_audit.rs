//! Fault-injection integration tests: corruption at every byte offset
//! degrades to a cache miss, injected pool panics stay isolated to their
//! task, a faulted campaign converges to byte-identical telemetry, and the
//! `audit` driver replays a full run to byte-identical artifacts under
//! distinct fault schedules.

use std::fs;
use std::io::{self, Cursor, Write};
use std::path::PathBuf;
use std::sync::Mutex;

use rv_core::pipeline::{audit, fault, ArtifactCache, FaultConfig, FaultPlan, Fingerprint};
use rv_core::rv_learn::{LineReader, SerializeError};
use rv_core::rv_scope::{GeneratorConfig, WorkloadGenerator};
use rv_core::rv_sim::{Cluster, ClusterConfig, SimConfig};
use rv_core::rv_telemetry::{collect_telemetry, write_store, CampaignConfig, TelemetryStore};
use rv_core::FrameworkConfig;

/// The fault plan and the metrics hub are process-global; tests that
/// install a plan — or that need loads to be fault-free — must not overlap.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rv-fault-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn counter_total(prefix: &str) -> u64 {
    rv_obs::counters_with_prefix(prefix)
        .iter()
        .map(|(_, v)| v)
        .sum()
}

fn write_rows(w: &mut Vec<u8>, rows: &Vec<u64>) -> io::Result<()> {
    writeln!(w, "rows,{}", rows.len())?;
    for r in rows {
        writeln!(w, "row,{r}")?;
    }
    Ok(())
}

fn read_rows(r: &mut LineReader<Cursor<Vec<u8>>>) -> Result<Vec<u64>, SerializeError> {
    let f = r.expect_tag("rows")?;
    let n: usize = r.parse("rows", &f[0])?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let f = r.expect_tag("row")?;
        rows.push(r.parse("row", &f[0])?);
    }
    Ok(rows)
}

/// Satellite 5: corrupt a small `.rva` artifact at *every* byte offset —
/// both by truncating there and by flipping a bit there — and check every
/// corrupted load degrades to a miss (never a panic, never a wrong value),
/// while restoring the original bytes always loads again.
#[test]
fn corruption_at_every_offset_is_a_miss_never_a_panic() {
    let _lock = serial();
    let dir = temp_dir("sweep");
    let cache = ArtifactCache::new(&dir).expect("create cache");
    let fp = Fingerprint::of_bytes(b"sweep");
    let value: Vec<u64> = vec![7, 41, 1_000_003];
    cache
        .store("simulate", fp, &value, write_rows)
        .expect("store");
    let path = dir.join(format!("simulate-{fp}.rva"));
    let pristine = fs::read(&path).expect("read artifact");
    assert!(pristine.len() > 20, "artifact unexpectedly tiny");
    assert_eq!(
        cache.load("simulate", fp, read_rows),
        Some(value.clone()),
        "pristine artifact must load"
    );

    for offset in 0..pristine.len() {
        // Truncate at `offset`.
        fs::write(&path, &pristine[..offset]).expect("truncate");
        assert_eq!(
            cache.load("simulate", fp, read_rows),
            None,
            "truncation at offset {offset} must be a miss"
        );
        // Flip one bit at `offset`.
        let mut flipped = pristine.clone();
        flipped[offset] ^= 1 << (offset % 8);
        fs::write(&path, &flipped).expect("flip");
        assert_eq!(
            cache.load("simulate", fp, read_rows),
            None,
            "bit flip at offset {offset} must be a miss"
        );
    }

    fs::write(&path, &pristine).expect("restore");
    assert_eq!(
        cache.load("simulate", fp, read_rows),
        Some(value),
        "restored artifact must load again"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Acceptance: an injected panic inside the worker pool fails only its own
/// task slot; every other task completes and results keep submission order.
#[test]
fn injected_pool_panics_stay_isolated_to_their_task() {
    rv_core::rv_par::fault::install_quiet_panic_filter();
    for threads in [1, 4] {
        let results = rv_core::rv_par::par_map_isolated(64, threads, |i| {
            if i % 9 == 4 {
                panic!("injected fault: task {i} blew up");
            }
            i * 3
        });
        assert_eq!(results.len(), 64);
        for (i, r) in results.iter().enumerate() {
            if i % 9 == 4 {
                let e = r.as_ref().expect_err("panicking task must fail its slot");
                assert_eq!(e.index, i);
                assert!(e.message.contains("blew up"), "message: {}", e.message);
            } else {
                assert_eq!(*r.as_ref().expect("healthy task"), i * 3);
            }
        }
    }
}

fn campaign_store(generator: &WorkloadGenerator) -> TelemetryStore {
    let cluster = Cluster::new(ClusterConfig::default());
    collect_telemetry(
        generator,
        &cluster,
        &SimConfig::default(),
        &CampaignConfig {
            window_days: 2.0,
            ..Default::default()
        },
    )
    .expect("campaign must converge")
}

/// A campaign run under an installed fault plan — tasks panicking and
/// erroring mid-pool — retries to a store byte-identical to the fault-free
/// run, and the fault/retry counters prove faults actually fired.
#[test]
fn campaign_converges_under_task_faults() {
    let _lock = serial();
    let generator = WorkloadGenerator::new(GeneratorConfig {
        n_templates: 8,
        seed: 5,
        late_start_fraction: 0.0,
        ..Default::default()
    });
    let clean = campaign_store(&generator);

    let injected_before = counter_total("fault.injected.");
    let retries_before = counter_total("retry.instance");
    let guard = fault::install(FaultPlan::with_config(
        99,
        FaultConfig {
            task_panic_prob: 0.15,
            instance_error_prob: 0.15,
            ..FaultConfig::default()
        },
    ));
    let faulted = campaign_store(&generator);
    drop(guard);

    assert!(
        counter_total("fault.injected.") > injected_before,
        "the elevated fault plan must actually fire"
    );
    assert!(
        counter_total("retry.instance") > retries_before,
        "recovering must have spent instance retries"
    );

    let mut a = Vec::new();
    write_store(&clean, &mut a).expect("serialize clean");
    let mut b = Vec::new();
    write_store(&faulted, &mut b).expect("serialize faulted");
    assert_eq!(a, b, "faulted campaign must converge byte-identically");
}

/// Tentpole acceptance: `audit` replays the small config under two fault
/// schedules; every schedule converges to artifacts byte-identical to the
/// fault-free baseline while faults demonstrably fired.
#[test]
fn audit_replays_converge_byte_identical() {
    let _lock = serial();
    let dir = temp_dir("audit");
    let report = audit(&FrameworkConfig::small(), 2, 9, &dir).expect("audit baseline must run");
    assert_eq!(
        report.n_artifacts, 10,
        "simulate + datasets + 4 stages x 2 normalizations"
    );
    for s in &report.schedules {
        assert_eq!(s.divergence, None, "schedule seed={} diverged", s.seed);
    }
    assert!(report.converged());
    assert!(
        report.total_injected() > 0,
        "audit without any injected fault proves nothing"
    );
    let _ = fs::remove_dir_all(&dir);
}
