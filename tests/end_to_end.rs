//! End-to-end integration: the full Fig 2 pipeline on a scaled-down
//! campaign, exercised exactly the way a downstream user would drive it.

use rv_core::explain::explain_shape;
use rv_core::framework::{Framework, FrameworkConfig};
use rv_core::likelihood::{assign_group, posterior_probs};
use rv_core::regression_baseline::{compare_distribution_fidelity, RuntimeRegressor};
use rv_core::rv_learn::RandomForestConfig;
use rv_core::rv_shap::ShapConfig;
use rv_core::rv_telemetry::{FeatureExtractor, FEATURE_NAMES};

use std::sync::OnceLock;

fn framework() -> &'static Framework {
    static FRAMEWORK: OnceLock<Framework> = OnceLock::new();
    FRAMEWORK.get_or_init(|| Framework::run(FrameworkConfig::small()).expect("valid config"))
}

#[test]
fn pipeline_reaches_paper_accuracy_band() {
    let f = framework();
    // The paper reports >96% at production scale; the scaled-down campaign
    // must still clear 90% for both normalizations.
    assert!(
        f.ratio.test_accuracy > 0.90,
        "ratio accuracy {}",
        f.ratio.test_accuracy
    );
    assert!(
        f.delta.test_accuracy > 0.90,
        "delta accuracy {}",
        f.delta.test_accuracy
    );
}

#[test]
fn catalogs_are_ranked_and_consistent() {
    let f = framework();
    for pipe in [&f.ratio, &f.delta] {
        let catalog = &pipe.characterization.catalog;
        assert_eq!(catalog.n_shapes(), f.config.k);
        for i in 0..catalog.n_shapes() {
            let pmf = catalog.pmf(i);
            let total: f64 = pmf.probs().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "shape {i} PMF not normalized");
            if i > 0 {
                assert!(catalog.stats(i).iqr() >= catalog.stats(i - 1).iqr());
            }
        }
        // Every characterization group got a shape id in range.
        for (key, &shape) in &pipe.characterization.memberships {
            assert!(shape < catalog.n_shapes(), "group {key} shape {shape}");
        }
    }
}

#[test]
fn likelihood_assignment_recovers_own_members() {
    // Groups strongly assigned during characterization should be re-assigned
    // to the same shape from their raw runtimes.
    let f = framework();
    let pipe = &f.ratio;
    let catalog = &pipe.characterization.catalog;
    let mut checked = 0;
    let mut agree = 0;
    for (key, &shape) in &pipe.characterization.memberships {
        let runtimes = f.d1.store.group_runtimes(key);
        let median = f.history.median_or(key, &runtimes).expect("has runs");
        let (assigned, lls) = assign_group(catalog, &runtimes, median);
        let posterior = posterior_probs(&lls);
        if posterior[assigned] > 0.9 {
            checked += 1;
            if assigned == shape {
                agree += 1;
            }
        }
    }
    assert!(checked > 5, "too few confident groups ({checked})");
    let rate = agree as f64 / checked as f64;
    assert!(rate > 0.8, "self-assignment agreement {rate}");
}

#[test]
fn predictions_cover_all_test_rows() {
    let f = framework();
    for pipe in [&f.ratio, &f.delta] {
        for row in f.d3.store.rows() {
            let shape = pipe.predictor.predict_row(row);
            assert!(shape < f.config.k);
            let proba = pipe.predictor.predict_proba_row(row);
            assert_eq!(proba.len(), f.config.k);
            assert!((proba.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn importances_reference_schema_features() {
    let f = framework();
    let imps = f.ratio.predictor.importances();
    assert!(!imps.is_empty());
    for (name, value) in imps {
        assert!(FEATURE_NAMES.contains(&name), "unknown feature {name}");
        assert!(value > 0.0);
    }
}

#[test]
fn explanation_produces_named_attributions() {
    let f = framework();
    let rows: Vec<_> = f.d3.store.rows().iter().step_by(40).take(12).collect();
    let background: Vec<_> = f.d3.store.rows().iter().step_by(37).take(12).collect();
    let explanation = explain_shape(
        &f.ratio.predictor,
        &rows,
        &background,
        0,
        &ShapConfig {
            n_permutations: 8,
            seed: 1,
        },
    );
    assert!(!explanation.features.is_empty());
    for (name, stats) in &explanation.features {
        assert!(FEATURE_NAMES.contains(name));
        assert!(stats.mean_abs.is_finite());
    }
    // Sorted by magnitude.
    for w in explanation.features.windows(2) {
        assert!(w[0].1.mean_abs >= w[1].1.mean_abs);
    }
}

#[test]
fn classification_beats_regression_in_the_ratio_tail() {
    let f = framework();
    let regressor = RuntimeRegressor::train(
        &f.d2.store,
        FeatureExtractor::new(f.history.clone()),
        &RandomForestConfig {
            n_trees: 15,
            ..Default::default()
        },
    );
    let report = compare_distribution_fidelity(
        &f.d3.store,
        &f.ratio.predictor,
        &f.ratio.characterization.catalog,
        &regressor,
        7,
    );
    // The paper's Fig 8 headline: the classification approach reproduces
    // the runtime distribution better than point regression (KS distance).
    // The tail-MAE dominance additionally holds at full scale — asserted by
    // the experiments harness; at this reduced scale the sparse outlier
    // sample makes the tail comparison too noisy to gate on.
    assert!(
        report.ks_classification < report.ks_regression,
        "KS: classification {} vs regression {}",
        report.ks_classification,
        report.ks_regression
    );
}

#[test]
fn risk_assessment_covers_every_test_group() {
    let f = framework();
    let assessments = rv_core::risk::assess_store(
        &f.ratio.predictor,
        &f.ratio.characterization.catalog,
        &f.d3.store,
        2.0,
    );
    assert_eq!(assessments.len(), f.d3.store.n_groups());
    // Sorted by descending breach probability, all probabilities valid.
    for w in assessments.windows(2) {
        assert!(w[0].1.breach_probability >= w[1].1.breach_probability);
    }
    for (_, a) in &assessments {
        assert!((0.0..=1.0).contains(&a.breach_probability));
        assert!(a.shape < f.config.k);
    }
}

#[test]
fn catalog_round_trips_through_persistence() {
    let f = framework();
    let catalog = &f.ratio.characterization.catalog;
    let mut buf = Vec::new();
    rv_core::persist::write_catalog(catalog, &mut buf).expect("write");
    let restored = rv_core::persist::read_catalog(std::io::BufReader::new(&buf[..])).expect("read");
    // The restored catalog must assign every D3 group identically.
    for key in f.d3.store.group_keys() {
        let runtimes = f.d3.store.group_runtimes(key);
        let median = f.history.median_or(key, &runtimes).expect("has runs");
        let (a, _) = rv_core::likelihood::assign_group(catalog, &runtimes, median);
        let (b, _) = rv_core::likelihood::assign_group(&restored, &runtimes, median);
        assert_eq!(a, b, "group {key} assigned differently after round trip");
    }
}

#[test]
fn drift_monitor_accepts_the_whole_test_window() {
    let f = framework();
    let mut monitor =
        rv_core::monitor::DriftMonitor::new(f.ratio.characterization.catalog.clone(), 16, 6, 0.4);
    for (key, &shape) in &f.ratio.test_labels {
        let median = f
            .history
            .median_or(key, &f.d3.store.group_runtimes(key))
            .expect("has runs");
        monitor.track(key.clone(), shape, median);
    }
    let mut verdicts = 0;
    let mut drifts = 0;
    for row in f.d3.store.rows() {
        if let Some(v) = monitor
            .observe(&row.group, row.runtime_s)
            .expect("every test-window group is tracked")
        {
            verdicts += 1;
            if v.drifted {
                drifts += 1;
            }
        }
    }
    assert!(verdicts > 0, "monitor never reached min_obs");
    // Groups are monitored against their own assigned shapes, so organic
    // drift must be rare.
    assert!(
        (drifts as f64) < 0.2 * verdicts as f64,
        "{drifts} of {verdicts} verdicts drifted"
    );
}
