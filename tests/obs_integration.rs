//! Integration tests for the observability layer (rv-obs) wired through the
//! full framework:
//!
//! * a traced run produces a JSON-lines file where every line parses as a
//!   JSON object, with event types spanning the simulator and the analysis
//!   pipeline;
//! * two same-seed runs emit bit-identical metric values (instrumentation
//!   observes the pipeline without perturbing it);
//! * span aggregates track call counts deterministically.
//!
//! Everything lives in one `#[test]` because the obs hub is process-global:
//! parallel test threads would interleave their metric updates.

use rv_core::framework::{Framework, FrameworkConfig};

/// Minimal recursive-descent JSON validator (std-only; values are not
/// materialized, just checked against the grammar).
mod json {
    pub fn validate(s: &str) -> Result<(), String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => string(b, pos),
            Some(b't') => literal(b, pos, b"true"),
            Some(b'f') => literal(b, pos, b"false"),
            Some(b'n') => literal(b, pos, b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            other => Err(format!("unexpected {other:?} at byte {pos}")),
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // consume '{'
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, pos);
            string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {pos}"));
            }
            *pos += 1;
            skip_ws(b, pos);
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // consume '['
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, pos);
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected '\"' at byte {pos}"));
        }
        *pos += 1;
        while let Some(&c) = b.get(*pos) {
            match c {
                b'"' => {
                    *pos += 1;
                    return Ok(());
                }
                b'\\' => *pos += 2,
                _ => *pos += 1,
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
        let start = *pos;
        while let Some(&c) = b.get(*pos) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                *pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(|_| ())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
        if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }
}

#[test]
fn traced_run_is_valid_jsonl_and_metrics_are_deterministic() {
    let trace_path =
        std::env::temp_dir().join(format!("rv_obs_integration_{}.jsonl", std::process::id()));

    // --- Traced run: every line must parse, event types must span layers ---
    rv_obs::init(rv_obs::ObsConfig {
        trace_path: Some(trace_path.clone()),
        log_level: None,
    })
    .expect("init with trace");
    let run_a = Framework::run(FrameworkConfig::small()).expect("valid config");
    rv_obs::flush();

    let text = std::fs::read_to_string(&trace_path).expect("read trace");
    let mut kinds = std::collections::BTreeSet::new();
    let mut n_lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        json::validate(line).unwrap_or_else(|e| panic!("line {}: {e}\n{line}", i + 1));
        assert!(
            line.starts_with("{\"type\":\""),
            "line {} lacks type: {line}",
            i + 1
        );
        let kind = line["{\"type\":\"".len()..]
            .split('"')
            .next()
            .expect("type value");
        kinds.insert(kind.to_string());
        n_lines += 1;
    }
    assert!(n_lines >= 10, "only {n_lines} trace lines");
    for required in [
        "trace.start",
        "span",
        "sim.campaign",
        "cluster.kmeans",
        "learn.boosting",
        "framework.pipeline",
    ] {
        assert!(
            kinds.contains(required),
            "missing event type {required}: {kinds:?}"
        );
    }
    assert!(kinds.len() >= 6, "too few event types: {kinds:?}");
    let _ = std::fs::remove_file(&trace_path);

    // --- Same-seed metric determinism (no trace; metrics only) -------------
    rv_obs::init(rv_obs::ObsConfig::default()).expect("re-init without trace");
    let snapshot_of_run = || {
        rv_obs::reset_metrics();
        let f = Framework::run(FrameworkConfig::small()).expect("valid config");
        let spans: Vec<(&'static str, u64)> = rv_obs::span_snapshot()
            .into_iter()
            .map(|(name, stat)| (name, stat.calls))
            .collect();
        (f.ratio.test_accuracy, rv_obs::metrics_snapshot(), spans)
    };
    let (acc_b, metrics_b, spans_b) = snapshot_of_run();
    let (acc_c, metrics_c, spans_c) = snapshot_of_run();

    // The framework result itself is unchanged by instrumentation...
    assert_eq!(run_a.ratio.test_accuracy, acc_b);
    assert_eq!(acc_b, acc_c);
    // ...and every metric (counters, gauges, histogram summaries — all
    // recorded from virtual sim-time quantities) is bit-identical.
    assert_eq!(metrics_b, metrics_c);
    // Span *wall times* differ run to run, but call counts are exact.
    assert_eq!(spans_b, spans_c);
    assert!(
        spans_b
            .iter()
            .any(|&(name, calls)| name == "phase.train" && calls == 2),
        "expected two phase.train calls (ratio + delta): {spans_b:?}"
    );

    rv_obs::disable();
}
