//! What-if engine integration (§7): scenario evaluation over a trained
//! predictor plus the simulator-replay cross-check.

use rv_core::framework::{Framework, FrameworkConfig};
use rv_core::rv_scope::{JobInstance, WorkloadGenerator};
use rv_core::rv_sim::exec::ExecOverrides;
use rv_core::rv_sim::{simulate_job, Cluster, SkuGeneration};
use rv_core::whatif::{Scenario, WhatIfEngine};

use std::sync::OnceLock;

fn framework() -> &'static Framework {
    static FRAMEWORK: OnceLock<Framework> = OnceLock::new();
    FRAMEWORK.get_or_init(|| Framework::run(FrameworkConfig::small()).expect("valid config"))
}

fn scenarios() -> [Scenario; 3] {
    [
        Scenario::DisableSpareTokens,
        Scenario::ShiftSku {
            from: SkuGeneration::Gen3_5,
            to: SkuGeneration::Gen5_2,
        },
        Scenario::PerfectLoadBalance { level: 0.5 },
    ]
}

#[test]
fn transition_matrices_account_for_every_job() {
    let f = framework();
    for pipe in [&f.ratio, &f.delta] {
        let engine = WhatIfEngine::new(&pipe.predictor);
        for scenario in scenarios() {
            let outcome = engine.evaluate(&f.d3.store, scenario);
            assert_eq!(outcome.transitions.total() as usize, f.d3.store.len());
            assert!(outcome.changed_fraction() <= 1.0);
            // Description renders without panicking and names the scenario.
            let text = outcome.describe(&pipe.characterization.catalog, 3);
            assert!(text.contains(&scenario.name()));
        }
    }
}

#[test]
fn scenario_transforms_are_idempotent() {
    // Applying a scenario twice must equal applying it once (they are
    // projections in feature space).
    let f = framework();
    let row = &f.d3.store.rows()[0];
    for scenario in scenarios() {
        let mut once = f.ratio.predictor.features_of(row);
        scenario.apply(&mut once);
        let mut twice = once.clone();
        scenario.apply(&mut twice);
        assert_eq!(once, twice, "{} not idempotent", scenario.name());
    }
}

#[test]
fn replay_disabling_spares_slows_spare_users() {
    // Ground truth from the simulator: for runs that actually used spare
    // tokens, disabling spares cannot speed them up.
    let f = framework();
    let mut generator_config = f.config.generator.clone();
    generator_config.window_days_hint = f.config.campaign.window_days;
    let generator = WorkloadGenerator::new(generator_config);
    let cluster = Cluster::new(f.config.cluster.clone());

    let mut slower = 0;
    let mut total = 0;
    // Search the whole campaign: the 1-day test window alone has too few
    // runs of the (daily) spare-riding groups.
    for r in f.store.rows().iter().filter(|r| r.spare_avg > 1.0).take(80) {
        let template = &generator.templates()[r.template_id as usize];
        let instance = JobInstance {
            template_id: r.template_id,
            seq: r.seq,
            submit_time_s: r.submit_time_s,
            input_gb: r.data_read_gb,
        };
        let with = simulate_job(
            template,
            &instance,
            &cluster,
            &f.config.sim,
            ExecOverrides::default(),
        );
        let without = simulate_job(
            template,
            &instance,
            &cluster,
            &f.config.sim,
            ExecOverrides {
                disable_spare: true,
                ..Default::default()
            },
        );
        total += 1;
        // Paired (common random numbers): the only difference is p_total.
        if without.nominal_s >= with.nominal_s - 1e-9 {
            slower += 1;
        }
        assert_eq!(without.spare_tokens, 0);
    }
    assert!(total >= 20, "not enough spare-using runs ({total})");
    assert!(
        slower as f64 > 0.95 * total as f64,
        "{slower}/{total} runs slowed down"
    );
}

#[test]
fn forced_sku_shift_changes_placement_not_physics() {
    let f = framework();
    let generator = {
        let mut cfg = f.config.generator.clone();
        cfg.window_days_hint = f.config.campaign.window_days;
        WorkloadGenerator::new(cfg)
    };
    let cluster = Cluster::new(f.config.cluster.clone());
    let r = &f.d3.store.rows()[0];
    let template = &generator.templates()[r.template_id as usize];
    let instance = JobInstance {
        template_id: r.template_id,
        seq: r.seq,
        submit_time_s: r.submit_time_s,
        input_gb: r.data_read_gb,
    };
    let mut fractions = [0.0; SkuGeneration::COUNT];
    fractions[SkuGeneration::Gen5_2.index()] = 1.0;
    let run = simulate_job(
        template,
        &instance,
        &cluster,
        &f.config.sim,
        ExecOverrides {
            sku_fractions: Some(fractions),
            ..Default::default()
        },
    );
    assert_eq!(run.sku_usage.fractions, fractions);
    assert!(run.runtime_s > 0.0);
}
