/root/repo/target/release/examples/pipeline_trace-fb5002d57cc6b23a.d: crates/core/../../examples/pipeline_trace.rs

/root/repo/target/release/examples/pipeline_trace-fb5002d57cc6b23a: crates/core/../../examples/pipeline_trace.rs

crates/core/../../examples/pipeline_trace.rs:
