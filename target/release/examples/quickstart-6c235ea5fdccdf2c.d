/root/repo/target/release/examples/quickstart-6c235ea5fdccdf2c.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-6c235ea5fdccdf2c: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
