/root/repo/target/release/deps/experiments-4f390d17ecd9d10b.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-4f390d17ecd9d10b: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
