/root/repo/target/release/deps/runvar-69aaadaef108072e.d: crates/bench/src/bin/runvar.rs

/root/repo/target/release/deps/runvar-69aaadaef108072e: crates/bench/src/bin/runvar.rs

crates/bench/src/bin/runvar.rs:
