/root/repo/target/release/deps/rv_bench-3f239cdef8705328.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

/root/repo/target/release/deps/librv_bench-3f239cdef8705328.rlib: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

/root/repo/target/release/deps/librv_bench-3f239cdef8705328.rmeta: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/exp_characterize.rs:
crates/bench/src/exp_descriptive.rs:
crates/bench/src/exp_explain.rs:
crates/bench/src/exp_predict.rs:
crates/bench/src/exp_whatif.rs:
