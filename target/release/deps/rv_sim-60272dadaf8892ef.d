/root/repo/target/release/deps/rv_sim-60272dadaf8892ef.d: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/config.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/rare.rs crates/sim/src/scheduler.rs crates/sim/src/sku.rs crates/sim/src/tokens.rs

/root/repo/target/release/deps/librv_sim-60272dadaf8892ef.rlib: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/config.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/rare.rs crates/sim/src/scheduler.rs crates/sim/src/sku.rs crates/sim/src/tokens.rs

/root/repo/target/release/deps/librv_sim-60272dadaf8892ef.rmeta: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/config.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/rare.rs crates/sim/src/scheduler.rs crates/sim/src/sku.rs crates/sim/src/tokens.rs

crates/sim/src/lib.rs:
crates/sim/src/cluster.rs:
crates/sim/src/config.rs:
crates/sim/src/exec.rs:
crates/sim/src/machine.rs:
crates/sim/src/rare.rs:
crates/sim/src/scheduler.rs:
crates/sim/src/sku.rs:
crates/sim/src/tokens.rs:
