/root/repo/target/release/deps/rv_shap-d95d6eaaf66baf25.d: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

/root/repo/target/release/deps/librv_shap-d95d6eaaf66baf25.rlib: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

/root/repo/target/release/deps/librv_shap-d95d6eaaf66baf25.rmeta: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

crates/shap/src/lib.rs:
crates/shap/src/exact.rs:
crates/shap/src/shapley.rs:
crates/shap/src/summary.rs:
