/root/repo/target/release/deps/rv_cluster-4d6f9071220c277e.d: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/assign.rs crates/cluster/src/dendrogram.rs crates/cluster/src/elbow.rs crates/cluster/src/kmeans.rs crates/cluster/src/minibatch.rs crates/cluster/src/silhouette.rs

/root/repo/target/release/deps/librv_cluster-4d6f9071220c277e.rlib: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/assign.rs crates/cluster/src/dendrogram.rs crates/cluster/src/elbow.rs crates/cluster/src/kmeans.rs crates/cluster/src/minibatch.rs crates/cluster/src/silhouette.rs

/root/repo/target/release/deps/librv_cluster-4d6f9071220c277e.rmeta: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/assign.rs crates/cluster/src/dendrogram.rs crates/cluster/src/elbow.rs crates/cluster/src/kmeans.rs crates/cluster/src/minibatch.rs crates/cluster/src/silhouette.rs

crates/cluster/src/lib.rs:
crates/cluster/src/agglomerative.rs:
crates/cluster/src/assign.rs:
crates/cluster/src/dendrogram.rs:
crates/cluster/src/elbow.rs:
crates/cluster/src/kmeans.rs:
crates/cluster/src/minibatch.rs:
crates/cluster/src/silhouette.rs:
