/root/repo/target/release/deps/rv_telemetry-55d1fd856cc467d9.d: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

/root/repo/target/release/deps/librv_telemetry-55d1fd856cc467d9.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

/root/repo/target/release/deps/librv_telemetry-55d1fd856cc467d9.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/collect.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/features.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/store.rs:
