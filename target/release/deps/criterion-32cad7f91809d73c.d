/root/repo/target/release/deps/criterion-32cad7f91809d73c.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-32cad7f91809d73c.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-32cad7f91809d73c.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
