/root/repo/target/release/deps/rv_telemetry-02b5ee48c313b4f5.d: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

/root/repo/target/release/deps/librv_telemetry-02b5ee48c313b4f5.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

/root/repo/target/release/deps/librv_telemetry-02b5ee48c313b4f5.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/collect.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/features.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/store.rs:
