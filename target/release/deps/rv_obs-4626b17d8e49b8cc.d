/root/repo/target/release/deps/rv_obs-4626b17d8e49b8cc.d: crates/obs/src/lib.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/sink.rs crates/obs/src/span.rs

/root/repo/target/release/deps/librv_obs-4626b17d8e49b8cc.rlib: crates/obs/src/lib.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/sink.rs crates/obs/src/span.rs

/root/repo/target/release/deps/librv_obs-4626b17d8e49b8cc.rmeta: crates/obs/src/lib.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/sink.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/log.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/sink.rs:
crates/obs/src/span.rs:
