/root/repo/target/release/deps/rand-9e1109693fec6c7f.d: shims/rand/src/lib.rs shims/rand/src/rngs.rs shims/rand/src/seq.rs shims/rand/src/uniform.rs

/root/repo/target/release/deps/librand-9e1109693fec6c7f.rlib: shims/rand/src/lib.rs shims/rand/src/rngs.rs shims/rand/src/seq.rs shims/rand/src/uniform.rs

/root/repo/target/release/deps/librand-9e1109693fec6c7f.rmeta: shims/rand/src/lib.rs shims/rand/src/rngs.rs shims/rand/src/seq.rs shims/rand/src/uniform.rs

shims/rand/src/lib.rs:
shims/rand/src/rngs.rs:
shims/rand/src/seq.rs:
shims/rand/src/uniform.rs:
