/root/repo/target/release/deps/rv_scope-ac0bb68ab88686f7.d: crates/scope/src/lib.rs crates/scope/src/archetype.rs crates/scope/src/explain_plan.rs crates/scope/src/generator.rs crates/scope/src/group.rs crates/scope/src/job.rs crates/scope/src/operator.rs crates/scope/src/optimizer.rs crates/scope/src/plan.rs crates/scope/src/signature.rs

/root/repo/target/release/deps/librv_scope-ac0bb68ab88686f7.rlib: crates/scope/src/lib.rs crates/scope/src/archetype.rs crates/scope/src/explain_plan.rs crates/scope/src/generator.rs crates/scope/src/group.rs crates/scope/src/job.rs crates/scope/src/operator.rs crates/scope/src/optimizer.rs crates/scope/src/plan.rs crates/scope/src/signature.rs

/root/repo/target/release/deps/librv_scope-ac0bb68ab88686f7.rmeta: crates/scope/src/lib.rs crates/scope/src/archetype.rs crates/scope/src/explain_plan.rs crates/scope/src/generator.rs crates/scope/src/group.rs crates/scope/src/job.rs crates/scope/src/operator.rs crates/scope/src/optimizer.rs crates/scope/src/plan.rs crates/scope/src/signature.rs

crates/scope/src/lib.rs:
crates/scope/src/archetype.rs:
crates/scope/src/explain_plan.rs:
crates/scope/src/generator.rs:
crates/scope/src/group.rs:
crates/scope/src/job.rs:
crates/scope/src/operator.rs:
crates/scope/src/optimizer.rs:
crates/scope/src/plan.rs:
crates/scope/src/signature.rs:
