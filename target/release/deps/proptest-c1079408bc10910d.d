/root/repo/target/release/deps/proptest-c1079408bc10910d.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/string.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-c1079408bc10910d.rlib: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/string.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-c1079408bc10910d.rmeta: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/string.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/string.rs:
shims/proptest/src/test_runner.rs:
