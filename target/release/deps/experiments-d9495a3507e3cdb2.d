/root/repo/target/release/deps/experiments-d9495a3507e3cdb2.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-d9495a3507e3cdb2: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
