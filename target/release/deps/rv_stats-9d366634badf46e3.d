/root/repo/target/release/deps/rv_stats-9d366634badf46e3.d: crates/stats/src/lib.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/moments.rs crates/stats/src/normalize.rs crates/stats/src/qq.rs crates/stats/src/quantile.rs crates/stats/src/smooth.rs crates/stats/src/summary.rs

/root/repo/target/release/deps/librv_stats-9d366634badf46e3.rlib: crates/stats/src/lib.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/moments.rs crates/stats/src/normalize.rs crates/stats/src/qq.rs crates/stats/src/quantile.rs crates/stats/src/smooth.rs crates/stats/src/summary.rs

/root/repo/target/release/deps/librv_stats-9d366634badf46e3.rmeta: crates/stats/src/lib.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/moments.rs crates/stats/src/normalize.rs crates/stats/src/qq.rs crates/stats/src/quantile.rs crates/stats/src/smooth.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/distance.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/histogram.rs:
crates/stats/src/moments.rs:
crates/stats/src/normalize.rs:
crates/stats/src/qq.rs:
crates/stats/src/quantile.rs:
crates/stats/src/smooth.rs:
crates/stats/src/summary.rs:
