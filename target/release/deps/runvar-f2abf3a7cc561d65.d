/root/repo/target/release/deps/runvar-f2abf3a7cc561d65.d: crates/bench/src/bin/runvar.rs

/root/repo/target/release/deps/runvar-f2abf3a7cc561d65: crates/bench/src/bin/runvar.rs

crates/bench/src/bin/runvar.rs:
