/root/repo/target/release/deps/rv_shap-849a7d47fb86bbf4.d: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

/root/repo/target/release/deps/librv_shap-849a7d47fb86bbf4.rlib: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

/root/repo/target/release/deps/librv_shap-849a7d47fb86bbf4.rmeta: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

crates/shap/src/lib.rs:
crates/shap/src/exact.rs:
crates/shap/src/shapley.rs:
crates/shap/src/summary.rs:
