/root/repo/target/release/deps/rv_par-e85ddc79ee19e1b0.d: crates/par/src/lib.rs crates/par/src/fault.rs

/root/repo/target/release/deps/librv_par-e85ddc79ee19e1b0.rlib: crates/par/src/lib.rs crates/par/src/fault.rs

/root/repo/target/release/deps/librv_par-e85ddc79ee19e1b0.rmeta: crates/par/src/lib.rs crates/par/src/fault.rs

crates/par/src/lib.rs:
crates/par/src/fault.rs:
