/root/repo/target/release/deps/rv_cluster-7830a59455a5ec9b.d: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/assign.rs crates/cluster/src/dendrogram.rs crates/cluster/src/elbow.rs crates/cluster/src/kmeans.rs crates/cluster/src/minibatch.rs crates/cluster/src/silhouette.rs

/root/repo/target/release/deps/librv_cluster-7830a59455a5ec9b.rlib: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/assign.rs crates/cluster/src/dendrogram.rs crates/cluster/src/elbow.rs crates/cluster/src/kmeans.rs crates/cluster/src/minibatch.rs crates/cluster/src/silhouette.rs

/root/repo/target/release/deps/librv_cluster-7830a59455a5ec9b.rmeta: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/assign.rs crates/cluster/src/dendrogram.rs crates/cluster/src/elbow.rs crates/cluster/src/kmeans.rs crates/cluster/src/minibatch.rs crates/cluster/src/silhouette.rs

crates/cluster/src/lib.rs:
crates/cluster/src/agglomerative.rs:
crates/cluster/src/assign.rs:
crates/cluster/src/dendrogram.rs:
crates/cluster/src/elbow.rs:
crates/cluster/src/kmeans.rs:
crates/cluster/src/minibatch.rs:
crates/cluster/src/silhouette.rs:
