/root/repo/target/release/deps/runvar-ccd266f7a64a2d13.d: crates/bench/src/bin/runvar.rs

/root/repo/target/release/deps/runvar-ccd266f7a64a2d13: crates/bench/src/bin/runvar.rs

crates/bench/src/bin/runvar.rs:
