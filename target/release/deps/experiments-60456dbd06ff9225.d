/root/repo/target/release/deps/experiments-60456dbd06ff9225.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-60456dbd06ff9225: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
