/root/repo/target/debug/deps/obs_integration-d0d8ac1243d82876.d: crates/core/../../tests/obs_integration.rs

/root/repo/target/debug/deps/obs_integration-d0d8ac1243d82876: crates/core/../../tests/obs_integration.rs

crates/core/../../tests/obs_integration.rs:
