/root/repo/target/debug/deps/catalog_robustness-277c993cb5bb4e7a.d: crates/core/tests/catalog_robustness.rs

/root/repo/target/debug/deps/catalog_robustness-277c993cb5bb4e7a: crates/core/tests/catalog_robustness.rs

crates/core/tests/catalog_robustness.rs:
