/root/repo/target/debug/deps/rv_sim-5af494aebcf8584d.d: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/config.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/rare.rs crates/sim/src/scheduler.rs crates/sim/src/sku.rs crates/sim/src/tokens.rs Cargo.toml

/root/repo/target/debug/deps/librv_sim-5af494aebcf8584d.rmeta: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/config.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/rare.rs crates/sim/src/scheduler.rs crates/sim/src/sku.rs crates/sim/src/tokens.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cluster.rs:
crates/sim/src/config.rs:
crates/sim/src/exec.rs:
crates/sim/src/machine.rs:
crates/sim/src/rare.rs:
crates/sim/src/scheduler.rs:
crates/sim/src/sku.rs:
crates/sim/src/tokens.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
