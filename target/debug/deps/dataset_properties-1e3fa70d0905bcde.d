/root/repo/target/debug/deps/dataset_properties-1e3fa70d0905bcde.d: crates/core/../../tests/dataset_properties.rs Cargo.toml

/root/repo/target/debug/deps/libdataset_properties-1e3fa70d0905bcde.rmeta: crates/core/../../tests/dataset_properties.rs Cargo.toml

crates/core/../../tests/dataset_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
