/root/repo/target/debug/deps/end_to_end-dbb46799847badf1.d: crates/core/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-dbb46799847badf1.rmeta: crates/core/../../tests/end_to_end.rs Cargo.toml

crates/core/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
