/root/repo/target/debug/deps/rv_core-2aa0e02e36ba8544.d: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/explain.rs crates/core/src/framework.rs crates/core/src/likelihood.rs crates/core/src/monitor.rs crates/core/src/persist.rs crates/core/src/pipeline/mod.rs crates/core/src/pipeline/artifact.rs crates/core/src/pipeline/cache.rs crates/core/src/pipeline/fault.rs crates/core/src/pipeline/fingerprint.rs crates/core/src/predictor.rs crates/core/src/regression_baseline.rs crates/core/src/report.rs crates/core/src/risk.rs crates/core/src/scalar_metrics.rs crates/core/src/shapes.rs crates/core/src/whatif.rs Cargo.toml

/root/repo/target/debug/deps/librv_core-2aa0e02e36ba8544.rmeta: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/explain.rs crates/core/src/framework.rs crates/core/src/likelihood.rs crates/core/src/monitor.rs crates/core/src/persist.rs crates/core/src/pipeline/mod.rs crates/core/src/pipeline/artifact.rs crates/core/src/pipeline/cache.rs crates/core/src/pipeline/fault.rs crates/core/src/pipeline/fingerprint.rs crates/core/src/predictor.rs crates/core/src/regression_baseline.rs crates/core/src/report.rs crates/core/src/risk.rs crates/core/src/scalar_metrics.rs crates/core/src/shapes.rs crates/core/src/whatif.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/characterize.rs:
crates/core/src/explain.rs:
crates/core/src/framework.rs:
crates/core/src/likelihood.rs:
crates/core/src/monitor.rs:
crates/core/src/persist.rs:
crates/core/src/pipeline/mod.rs:
crates/core/src/pipeline/artifact.rs:
crates/core/src/pipeline/cache.rs:
crates/core/src/pipeline/fault.rs:
crates/core/src/pipeline/fingerprint.rs:
crates/core/src/predictor.rs:
crates/core/src/regression_baseline.rs:
crates/core/src/report.rs:
crates/core/src/risk.rs:
crates/core/src/scalar_metrics.rs:
crates/core/src/shapes.rs:
crates/core/src/whatif.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
