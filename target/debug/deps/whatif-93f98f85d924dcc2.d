/root/repo/target/debug/deps/whatif-93f98f85d924dcc2.d: crates/bench/benches/whatif.rs

/root/repo/target/debug/deps/whatif-93f98f85d924dcc2: crates/bench/benches/whatif.rs

crates/bench/benches/whatif.rs:
