/root/repo/target/debug/deps/proptests-91159648809e3fca.d: crates/learn/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-91159648809e3fca.rmeta: crates/learn/tests/proptests.rs Cargo.toml

crates/learn/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
