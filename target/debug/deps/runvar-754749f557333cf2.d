/root/repo/target/debug/deps/runvar-754749f557333cf2.d: crates/bench/src/bin/runvar.rs

/root/repo/target/debug/deps/runvar-754749f557333cf2: crates/bench/src/bin/runvar.rs

crates/bench/src/bin/runvar.rs:
