/root/repo/target/debug/deps/characterize-98990cf9ac5642cb.d: crates/bench/benches/characterize.rs Cargo.toml

/root/repo/target/debug/deps/libcharacterize-98990cf9ac5642cb.rmeta: crates/bench/benches/characterize.rs Cargo.toml

crates/bench/benches/characterize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
