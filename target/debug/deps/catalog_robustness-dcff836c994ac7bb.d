/root/repo/target/debug/deps/catalog_robustness-dcff836c994ac7bb.d: crates/core/tests/catalog_robustness.rs

/root/repo/target/debug/deps/catalog_robustness-dcff836c994ac7bb: crates/core/tests/catalog_robustness.rs

crates/core/tests/catalog_robustness.rs:
