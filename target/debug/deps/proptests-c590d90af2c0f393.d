/root/repo/target/debug/deps/proptests-c590d90af2c0f393.d: crates/learn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c590d90af2c0f393: crates/learn/tests/proptests.rs

crates/learn/tests/proptests.rs:
