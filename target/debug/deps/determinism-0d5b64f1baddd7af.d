/root/repo/target/debug/deps/determinism-0d5b64f1baddd7af.d: crates/core/../../tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-0d5b64f1baddd7af.rmeta: crates/core/../../tests/determinism.rs Cargo.toml

crates/core/../../tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
