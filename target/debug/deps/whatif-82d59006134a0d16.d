/root/repo/target/debug/deps/whatif-82d59006134a0d16.d: crates/bench/benches/whatif.rs Cargo.toml

/root/repo/target/debug/deps/libwhatif-82d59006134a0d16.rmeta: crates/bench/benches/whatif.rs Cargo.toml

crates/bench/benches/whatif.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
