/root/repo/target/debug/deps/rv_bench-be9c302ea63acbd7.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

/root/repo/target/debug/deps/rv_bench-be9c302ea63acbd7: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/exp_characterize.rs:
crates/bench/src/exp_descriptive.rs:
crates/bench/src/exp_explain.rs:
crates/bench/src/exp_predict.rs:
crates/bench/src/exp_whatif.rs:
