/root/repo/target/debug/deps/runvar-bb3b884977b084a9.d: crates/bench/src/bin/runvar.rs

/root/repo/target/debug/deps/runvar-bb3b884977b084a9: crates/bench/src/bin/runvar.rs

crates/bench/src/bin/runvar.rs:
