/root/repo/target/debug/deps/dataset_properties-c3a91d82f279394d.d: crates/core/../../tests/dataset_properties.rs Cargo.toml

/root/repo/target/debug/deps/libdataset_properties-c3a91d82f279394d.rmeta: crates/core/../../tests/dataset_properties.rs Cargo.toml

crates/core/../../tests/dataset_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
