/root/repo/target/debug/deps/whatif_integration-5441988280195785.d: crates/core/../../tests/whatif_integration.rs

/root/repo/target/debug/deps/whatif_integration-5441988280195785: crates/core/../../tests/whatif_integration.rs

crates/core/../../tests/whatif_integration.rs:
