/root/repo/target/debug/deps/rv_telemetry-6d6b20976221db6b.d: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

/root/repo/target/debug/deps/librv_telemetry-6d6b20976221db6b.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

/root/repo/target/debug/deps/librv_telemetry-6d6b20976221db6b.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/collect.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/features.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/store.rs:
