/root/repo/target/debug/deps/rv_shap-2a4eede29caa6e4f.d: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

/root/repo/target/debug/deps/librv_shap-2a4eede29caa6e4f.rlib: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

/root/repo/target/debug/deps/librv_shap-2a4eede29caa6e4f.rmeta: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

crates/shap/src/lib.rs:
crates/shap/src/exact.rs:
crates/shap/src/shapley.rs:
crates/shap/src/summary.rs:
