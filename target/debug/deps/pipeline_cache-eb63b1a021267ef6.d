/root/repo/target/debug/deps/pipeline_cache-eb63b1a021267ef6.d: crates/core/../../tests/pipeline_cache.rs

/root/repo/target/debug/deps/pipeline_cache-eb63b1a021267ef6: crates/core/../../tests/pipeline_cache.rs

crates/core/../../tests/pipeline_cache.rs:
