/root/repo/target/debug/deps/experiments-9baa7ac5beced01c.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-9baa7ac5beced01c: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
