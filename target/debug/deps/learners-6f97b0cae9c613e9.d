/root/repo/target/debug/deps/learners-6f97b0cae9c613e9.d: crates/bench/benches/learners.rs Cargo.toml

/root/repo/target/debug/deps/liblearners-6f97b0cae9c613e9.rmeta: crates/bench/benches/learners.rs Cargo.toml

crates/bench/benches/learners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
