/root/repo/target/debug/deps/fault_audit-5c5988792de49e05.d: crates/core/../../tests/fault_audit.rs

/root/repo/target/debug/deps/fault_audit-5c5988792de49e05: crates/core/../../tests/fault_audit.rs

crates/core/../../tests/fault_audit.rs:
