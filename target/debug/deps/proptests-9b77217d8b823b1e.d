/root/repo/target/debug/deps/proptests-9b77217d8b823b1e.d: crates/cluster/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9b77217d8b823b1e: crates/cluster/tests/proptests.rs

crates/cluster/tests/proptests.rs:
