/root/repo/target/debug/deps/proptests-c6f514cf324ede1a.d: crates/learn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c6f514cf324ede1a: crates/learn/tests/proptests.rs

crates/learn/tests/proptests.rs:
