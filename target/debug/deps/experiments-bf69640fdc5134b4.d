/root/repo/target/debug/deps/experiments-bf69640fdc5134b4.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-bf69640fdc5134b4: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
