/root/repo/target/debug/deps/runvar-095dd5fd6c27df31.d: crates/bench/src/bin/runvar.rs

/root/repo/target/debug/deps/runvar-095dd5fd6c27df31: crates/bench/src/bin/runvar.rs

crates/bench/src/bin/runvar.rs:
