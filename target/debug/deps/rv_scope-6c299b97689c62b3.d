/root/repo/target/debug/deps/rv_scope-6c299b97689c62b3.d: crates/scope/src/lib.rs crates/scope/src/archetype.rs crates/scope/src/explain_plan.rs crates/scope/src/generator.rs crates/scope/src/group.rs crates/scope/src/job.rs crates/scope/src/operator.rs crates/scope/src/optimizer.rs crates/scope/src/plan.rs crates/scope/src/signature.rs

/root/repo/target/debug/deps/rv_scope-6c299b97689c62b3: crates/scope/src/lib.rs crates/scope/src/archetype.rs crates/scope/src/explain_plan.rs crates/scope/src/generator.rs crates/scope/src/group.rs crates/scope/src/job.rs crates/scope/src/operator.rs crates/scope/src/optimizer.rs crates/scope/src/plan.rs crates/scope/src/signature.rs

crates/scope/src/lib.rs:
crates/scope/src/archetype.rs:
crates/scope/src/explain_plan.rs:
crates/scope/src/generator.rs:
crates/scope/src/group.rs:
crates/scope/src/job.rs:
crates/scope/src/operator.rs:
crates/scope/src/optimizer.rs:
crates/scope/src/plan.rs:
crates/scope/src/signature.rs:
