/root/repo/target/debug/deps/proptests-b22fbb9038dcdcc8.d: crates/cluster/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b22fbb9038dcdcc8: crates/cluster/tests/proptests.rs

crates/cluster/tests/proptests.rs:
