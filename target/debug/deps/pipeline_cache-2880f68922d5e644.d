/root/repo/target/debug/deps/pipeline_cache-2880f68922d5e644.d: crates/core/../../tests/pipeline_cache.rs

/root/repo/target/debug/deps/pipeline_cache-2880f68922d5e644: crates/core/../../tests/pipeline_cache.rs

crates/core/../../tests/pipeline_cache.rs:
