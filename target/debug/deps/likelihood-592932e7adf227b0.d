/root/repo/target/debug/deps/likelihood-592932e7adf227b0.d: crates/bench/benches/likelihood.rs Cargo.toml

/root/repo/target/debug/deps/liblikelihood-592932e7adf227b0.rmeta: crates/bench/benches/likelihood.rs Cargo.toml

crates/bench/benches/likelihood.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
