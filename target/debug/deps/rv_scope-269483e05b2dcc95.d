/root/repo/target/debug/deps/rv_scope-269483e05b2dcc95.d: crates/scope/src/lib.rs crates/scope/src/archetype.rs crates/scope/src/explain_plan.rs crates/scope/src/generator.rs crates/scope/src/group.rs crates/scope/src/job.rs crates/scope/src/operator.rs crates/scope/src/optimizer.rs crates/scope/src/plan.rs crates/scope/src/signature.rs

/root/repo/target/debug/deps/librv_scope-269483e05b2dcc95.rlib: crates/scope/src/lib.rs crates/scope/src/archetype.rs crates/scope/src/explain_plan.rs crates/scope/src/generator.rs crates/scope/src/group.rs crates/scope/src/job.rs crates/scope/src/operator.rs crates/scope/src/optimizer.rs crates/scope/src/plan.rs crates/scope/src/signature.rs

/root/repo/target/debug/deps/librv_scope-269483e05b2dcc95.rmeta: crates/scope/src/lib.rs crates/scope/src/archetype.rs crates/scope/src/explain_plan.rs crates/scope/src/generator.rs crates/scope/src/group.rs crates/scope/src/job.rs crates/scope/src/operator.rs crates/scope/src/optimizer.rs crates/scope/src/plan.rs crates/scope/src/signature.rs

crates/scope/src/lib.rs:
crates/scope/src/archetype.rs:
crates/scope/src/explain_plan.rs:
crates/scope/src/generator.rs:
crates/scope/src/group.rs:
crates/scope/src/job.rs:
crates/scope/src/operator.rs:
crates/scope/src/optimizer.rs:
crates/scope/src/plan.rs:
crates/scope/src/signature.rs:
