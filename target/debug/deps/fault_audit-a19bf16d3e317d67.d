/root/repo/target/debug/deps/fault_audit-a19bf16d3e317d67.d: crates/core/../../tests/fault_audit.rs Cargo.toml

/root/repo/target/debug/deps/libfault_audit-a19bf16d3e317d67.rmeta: crates/core/../../tests/fault_audit.rs Cargo.toml

crates/core/../../tests/fault_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
