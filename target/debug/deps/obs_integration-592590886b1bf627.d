/root/repo/target/debug/deps/obs_integration-592590886b1bf627.d: crates/core/../../tests/obs_integration.rs Cargo.toml

/root/repo/target/debug/deps/libobs_integration-592590886b1bf627.rmeta: crates/core/../../tests/obs_integration.rs Cargo.toml

crates/core/../../tests/obs_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
