/root/repo/target/debug/deps/experiments-ebc3ff72ce8f1dcd.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-ebc3ff72ce8f1dcd: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
