/root/repo/target/debug/deps/shapley-3bd7b44df55bfd0b.d: crates/bench/benches/shapley.rs Cargo.toml

/root/repo/target/debug/deps/libshapley-3bd7b44df55bfd0b.rmeta: crates/bench/benches/shapley.rs Cargo.toml

crates/bench/benches/shapley.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
