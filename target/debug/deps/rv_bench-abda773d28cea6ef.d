/root/repo/target/debug/deps/rv_bench-abda773d28cea6ef.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

/root/repo/target/debug/deps/rv_bench-abda773d28cea6ef: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/exp_characterize.rs:
crates/bench/src/exp_descriptive.rs:
crates/bench/src/exp_explain.rs:
crates/bench/src/exp_predict.rs:
crates/bench/src/exp_whatif.rs:
