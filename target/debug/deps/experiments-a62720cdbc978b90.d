/root/repo/target/debug/deps/experiments-a62720cdbc978b90.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-a62720cdbc978b90: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
