/root/repo/target/debug/deps/likelihood-f1537889852e423e.d: crates/bench/benches/likelihood.rs

/root/repo/target/debug/deps/likelihood-f1537889852e423e: crates/bench/benches/likelihood.rs

crates/bench/benches/likelihood.rs:
