/root/repo/target/debug/deps/whatif_integration-cb7a5e9bb339fff4.d: crates/core/../../tests/whatif_integration.rs

/root/repo/target/debug/deps/whatif_integration-cb7a5e9bb339fff4: crates/core/../../tests/whatif_integration.rs

crates/core/../../tests/whatif_integration.rs:
