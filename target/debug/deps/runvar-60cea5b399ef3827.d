/root/repo/target/debug/deps/runvar-60cea5b399ef3827.d: crates/bench/src/bin/runvar.rs Cargo.toml

/root/repo/target/debug/deps/librunvar-60cea5b399ef3827.rmeta: crates/bench/src/bin/runvar.rs Cargo.toml

crates/bench/src/bin/runvar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
