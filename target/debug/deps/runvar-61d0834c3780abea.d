/root/repo/target/debug/deps/runvar-61d0834c3780abea.d: crates/bench/src/bin/runvar.rs Cargo.toml

/root/repo/target/debug/deps/librunvar-61d0834c3780abea.rmeta: crates/bench/src/bin/runvar.rs Cargo.toml

crates/bench/src/bin/runvar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
