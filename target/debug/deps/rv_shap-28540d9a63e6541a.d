/root/repo/target/debug/deps/rv_shap-28540d9a63e6541a.d: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/librv_shap-28540d9a63e6541a.rmeta: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs Cargo.toml

crates/shap/src/lib.rs:
crates/shap/src/exact.rs:
crates/shap/src/shapley.rs:
crates/shap/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
