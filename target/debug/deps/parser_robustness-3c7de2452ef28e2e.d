/root/repo/target/debug/deps/parser_robustness-3c7de2452ef28e2e.d: crates/telemetry/tests/parser_robustness.rs

/root/repo/target/debug/deps/parser_robustness-3c7de2452ef28e2e: crates/telemetry/tests/parser_robustness.rs

crates/telemetry/tests/parser_robustness.rs:
