/root/repo/target/debug/deps/proptests-23f606c70c14b286.d: crates/scope/tests/proptests.rs

/root/repo/target/debug/deps/proptests-23f606c70c14b286: crates/scope/tests/proptests.rs

crates/scope/tests/proptests.rs:
