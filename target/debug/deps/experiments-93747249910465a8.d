/root/repo/target/debug/deps/experiments-93747249910465a8.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-93747249910465a8: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
