/root/repo/target/debug/deps/characterize-6988b19f6bf73b0b.d: crates/bench/benches/characterize.rs Cargo.toml

/root/repo/target/debug/deps/libcharacterize-6988b19f6bf73b0b.rmeta: crates/bench/benches/characterize.rs Cargo.toml

crates/bench/benches/characterize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
