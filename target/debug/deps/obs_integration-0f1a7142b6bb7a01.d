/root/repo/target/debug/deps/obs_integration-0f1a7142b6bb7a01.d: crates/core/../../tests/obs_integration.rs

/root/repo/target/debug/deps/obs_integration-0f1a7142b6bb7a01: crates/core/../../tests/obs_integration.rs

crates/core/../../tests/obs_integration.rs:
