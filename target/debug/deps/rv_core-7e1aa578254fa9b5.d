/root/repo/target/debug/deps/rv_core-7e1aa578254fa9b5.d: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/explain.rs crates/core/src/framework.rs crates/core/src/likelihood.rs crates/core/src/monitor.rs crates/core/src/persist.rs crates/core/src/pipeline/mod.rs crates/core/src/pipeline/artifact.rs crates/core/src/pipeline/cache.rs crates/core/src/pipeline/fault.rs crates/core/src/pipeline/fingerprint.rs crates/core/src/predictor.rs crates/core/src/regression_baseline.rs crates/core/src/report.rs crates/core/src/risk.rs crates/core/src/scalar_metrics.rs crates/core/src/shapes.rs crates/core/src/whatif.rs

/root/repo/target/debug/deps/rv_core-7e1aa578254fa9b5: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/explain.rs crates/core/src/framework.rs crates/core/src/likelihood.rs crates/core/src/monitor.rs crates/core/src/persist.rs crates/core/src/pipeline/mod.rs crates/core/src/pipeline/artifact.rs crates/core/src/pipeline/cache.rs crates/core/src/pipeline/fault.rs crates/core/src/pipeline/fingerprint.rs crates/core/src/predictor.rs crates/core/src/regression_baseline.rs crates/core/src/report.rs crates/core/src/risk.rs crates/core/src/scalar_metrics.rs crates/core/src/shapes.rs crates/core/src/whatif.rs

crates/core/src/lib.rs:
crates/core/src/characterize.rs:
crates/core/src/explain.rs:
crates/core/src/framework.rs:
crates/core/src/likelihood.rs:
crates/core/src/monitor.rs:
crates/core/src/persist.rs:
crates/core/src/pipeline/mod.rs:
crates/core/src/pipeline/artifact.rs:
crates/core/src/pipeline/cache.rs:
crates/core/src/pipeline/fault.rs:
crates/core/src/pipeline/fingerprint.rs:
crates/core/src/predictor.rs:
crates/core/src/regression_baseline.rs:
crates/core/src/report.rs:
crates/core/src/risk.rs:
crates/core/src/scalar_metrics.rs:
crates/core/src/shapes.rs:
crates/core/src/whatif.rs:
