/root/repo/target/debug/deps/pipeline_cache-50be2e760f8627a6.d: crates/core/../../tests/pipeline_cache.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_cache-50be2e760f8627a6.rmeta: crates/core/../../tests/pipeline_cache.rs Cargo.toml

crates/core/../../tests/pipeline_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
