/root/repo/target/debug/deps/obs_integration-7f318499137229d9.d: crates/core/../../tests/obs_integration.rs Cargo.toml

/root/repo/target/debug/deps/libobs_integration-7f318499137229d9.rmeta: crates/core/../../tests/obs_integration.rs Cargo.toml

crates/core/../../tests/obs_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
