/root/repo/target/debug/deps/rv_stats-bf7e9bd998bdfdaf.d: crates/stats/src/lib.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/moments.rs crates/stats/src/normalize.rs crates/stats/src/qq.rs crates/stats/src/quantile.rs crates/stats/src/smooth.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/librv_stats-bf7e9bd998bdfdaf.rlib: crates/stats/src/lib.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/moments.rs crates/stats/src/normalize.rs crates/stats/src/qq.rs crates/stats/src/quantile.rs crates/stats/src/smooth.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/librv_stats-bf7e9bd998bdfdaf.rmeta: crates/stats/src/lib.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/moments.rs crates/stats/src/normalize.rs crates/stats/src/qq.rs crates/stats/src/quantile.rs crates/stats/src/smooth.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/distance.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/histogram.rs:
crates/stats/src/moments.rs:
crates/stats/src/normalize.rs:
crates/stats/src/qq.rs:
crates/stats/src/quantile.rs:
crates/stats/src/smooth.rs:
crates/stats/src/summary.rs:
