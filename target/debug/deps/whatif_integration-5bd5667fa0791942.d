/root/repo/target/debug/deps/whatif_integration-5bd5667fa0791942.d: crates/core/../../tests/whatif_integration.rs

/root/repo/target/debug/deps/whatif_integration-5bd5667fa0791942: crates/core/../../tests/whatif_integration.rs

crates/core/../../tests/whatif_integration.rs:
