/root/repo/target/debug/deps/rand-bf32ab2726ff08a5.d: shims/rand/src/lib.rs shims/rand/src/rngs.rs shims/rand/src/seq.rs shims/rand/src/uniform.rs

/root/repo/target/debug/deps/rand-bf32ab2726ff08a5: shims/rand/src/lib.rs shims/rand/src/rngs.rs shims/rand/src/seq.rs shims/rand/src/uniform.rs

shims/rand/src/lib.rs:
shims/rand/src/rngs.rs:
shims/rand/src/seq.rs:
shims/rand/src/uniform.rs:
