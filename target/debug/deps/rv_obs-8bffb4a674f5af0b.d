/root/repo/target/debug/deps/rv_obs-8bffb4a674f5af0b.d: crates/obs/src/lib.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/sink.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/librv_obs-8bffb4a674f5af0b.rmeta: crates/obs/src/lib.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/sink.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/log.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/sink.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
