/root/repo/target/debug/deps/end_to_end-d3e029eeb52413c6.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d3e029eeb52413c6: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
