/root/repo/target/debug/deps/pipeline_cache-0ad7820c81975968.d: crates/core/../../tests/pipeline_cache.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_cache-0ad7820c81975968.rmeta: crates/core/../../tests/pipeline_cache.rs Cargo.toml

crates/core/../../tests/pipeline_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
