/root/repo/target/debug/deps/artifact_roundtrip-59e3eaffbcbf295a.d: crates/core/../../tests/artifact_roundtrip.rs

/root/repo/target/debug/deps/artifact_roundtrip-59e3eaffbcbf295a: crates/core/../../tests/artifact_roundtrip.rs

crates/core/../../tests/artifact_roundtrip.rs:
