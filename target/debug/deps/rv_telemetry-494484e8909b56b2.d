/root/repo/target/debug/deps/rv_telemetry-494484e8909b56b2.d: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

/root/repo/target/debug/deps/rv_telemetry-494484e8909b56b2: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/collect.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/features.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/store.rs:
