/root/repo/target/debug/deps/shapley-3e9cc8cc981ac0f9.d: crates/bench/benches/shapley.rs

/root/repo/target/debug/deps/shapley-3e9cc8cc981ac0f9: crates/bench/benches/shapley.rs

crates/bench/benches/shapley.rs:
