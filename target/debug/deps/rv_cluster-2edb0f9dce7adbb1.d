/root/repo/target/debug/deps/rv_cluster-2edb0f9dce7adbb1.d: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/assign.rs crates/cluster/src/dendrogram.rs crates/cluster/src/elbow.rs crates/cluster/src/kmeans.rs crates/cluster/src/minibatch.rs crates/cluster/src/silhouette.rs

/root/repo/target/debug/deps/rv_cluster-2edb0f9dce7adbb1: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/assign.rs crates/cluster/src/dendrogram.rs crates/cluster/src/elbow.rs crates/cluster/src/kmeans.rs crates/cluster/src/minibatch.rs crates/cluster/src/silhouette.rs

crates/cluster/src/lib.rs:
crates/cluster/src/agglomerative.rs:
crates/cluster/src/assign.rs:
crates/cluster/src/dendrogram.rs:
crates/cluster/src/elbow.rs:
crates/cluster/src/kmeans.rs:
crates/cluster/src/minibatch.rs:
crates/cluster/src/silhouette.rs:
