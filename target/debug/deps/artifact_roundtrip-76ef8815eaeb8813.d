/root/repo/target/debug/deps/artifact_roundtrip-76ef8815eaeb8813.d: crates/core/../../tests/artifact_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libartifact_roundtrip-76ef8815eaeb8813.rmeta: crates/core/../../tests/artifact_roundtrip.rs Cargo.toml

crates/core/../../tests/artifact_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
