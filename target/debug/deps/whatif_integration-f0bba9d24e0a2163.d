/root/repo/target/debug/deps/whatif_integration-f0bba9d24e0a2163.d: crates/core/../../tests/whatif_integration.rs

/root/repo/target/debug/deps/whatif_integration-f0bba9d24e0a2163: crates/core/../../tests/whatif_integration.rs

crates/core/../../tests/whatif_integration.rs:
