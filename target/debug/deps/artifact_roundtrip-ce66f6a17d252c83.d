/root/repo/target/debug/deps/artifact_roundtrip-ce66f6a17d252c83.d: crates/core/../../tests/artifact_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libartifact_roundtrip-ce66f6a17d252c83.rmeta: crates/core/../../tests/artifact_roundtrip.rs Cargo.toml

crates/core/../../tests/artifact_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
