/root/repo/target/debug/deps/parser_robustness-5ed6ba348afb7e39.d: crates/telemetry/tests/parser_robustness.rs

/root/repo/target/debug/deps/parser_robustness-5ed6ba348afb7e39: crates/telemetry/tests/parser_robustness.rs

crates/telemetry/tests/parser_robustness.rs:
