/root/repo/target/debug/deps/rv_stats-81157e7e79e38e0c.d: crates/stats/src/lib.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/moments.rs crates/stats/src/normalize.rs crates/stats/src/qq.rs crates/stats/src/quantile.rs crates/stats/src/smooth.rs crates/stats/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/librv_stats-81157e7e79e38e0c.rmeta: crates/stats/src/lib.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/moments.rs crates/stats/src/normalize.rs crates/stats/src/qq.rs crates/stats/src/quantile.rs crates/stats/src/smooth.rs crates/stats/src/summary.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/distance.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/histogram.rs:
crates/stats/src/moments.rs:
crates/stats/src/normalize.rs:
crates/stats/src/qq.rs:
crates/stats/src/quantile.rs:
crates/stats/src/smooth.rs:
crates/stats/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
