/root/repo/target/debug/deps/proptests-819c2fa2801bb0a9.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-819c2fa2801bb0a9: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
