/root/repo/target/debug/deps/whatif_integration-dc7316191f9e394f.d: crates/core/../../tests/whatif_integration.rs Cargo.toml

/root/repo/target/debug/deps/libwhatif_integration-dc7316191f9e394f.rmeta: crates/core/../../tests/whatif_integration.rs Cargo.toml

crates/core/../../tests/whatif_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
