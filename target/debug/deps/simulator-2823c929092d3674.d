/root/repo/target/debug/deps/simulator-2823c929092d3674.d: crates/bench/benches/simulator.rs

/root/repo/target/debug/deps/simulator-2823c929092d3674: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
