/root/repo/target/debug/deps/parser_robustness-1351fe4d4d4e2684.d: crates/telemetry/tests/parser_robustness.rs

/root/repo/target/debug/deps/parser_robustness-1351fe4d4d4e2684: crates/telemetry/tests/parser_robustness.rs

crates/telemetry/tests/parser_robustness.rs:
