/root/repo/target/debug/deps/rv_scope-05820c73e57b596f.d: crates/scope/src/lib.rs crates/scope/src/archetype.rs crates/scope/src/explain_plan.rs crates/scope/src/generator.rs crates/scope/src/group.rs crates/scope/src/job.rs crates/scope/src/operator.rs crates/scope/src/optimizer.rs crates/scope/src/plan.rs crates/scope/src/signature.rs Cargo.toml

/root/repo/target/debug/deps/librv_scope-05820c73e57b596f.rmeta: crates/scope/src/lib.rs crates/scope/src/archetype.rs crates/scope/src/explain_plan.rs crates/scope/src/generator.rs crates/scope/src/group.rs crates/scope/src/job.rs crates/scope/src/operator.rs crates/scope/src/optimizer.rs crates/scope/src/plan.rs crates/scope/src/signature.rs Cargo.toml

crates/scope/src/lib.rs:
crates/scope/src/archetype.rs:
crates/scope/src/explain_plan.rs:
crates/scope/src/generator.rs:
crates/scope/src/group.rs:
crates/scope/src/job.rs:
crates/scope/src/operator.rs:
crates/scope/src/optimizer.rs:
crates/scope/src/plan.rs:
crates/scope/src/signature.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
