/root/repo/target/debug/deps/dataset_properties-a30bd87c60740580.d: crates/core/../../tests/dataset_properties.rs

/root/repo/target/debug/deps/dataset_properties-a30bd87c60740580: crates/core/../../tests/dataset_properties.rs

crates/core/../../tests/dataset_properties.rs:
