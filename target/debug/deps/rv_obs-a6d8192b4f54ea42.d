/root/repo/target/debug/deps/rv_obs-a6d8192b4f54ea42.d: crates/obs/src/lib.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/sink.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/librv_obs-a6d8192b4f54ea42.rlib: crates/obs/src/lib.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/sink.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/librv_obs-a6d8192b4f54ea42.rmeta: crates/obs/src/lib.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/sink.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/log.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/sink.rs:
crates/obs/src/span.rs:
