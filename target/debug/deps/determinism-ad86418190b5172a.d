/root/repo/target/debug/deps/determinism-ad86418190b5172a.d: crates/core/../../tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-ad86418190b5172a.rmeta: crates/core/../../tests/determinism.rs Cargo.toml

crates/core/../../tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
