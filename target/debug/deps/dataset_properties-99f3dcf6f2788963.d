/root/repo/target/debug/deps/dataset_properties-99f3dcf6f2788963.d: crates/core/../../tests/dataset_properties.rs

/root/repo/target/debug/deps/dataset_properties-99f3dcf6f2788963: crates/core/../../tests/dataset_properties.rs

crates/core/../../tests/dataset_properties.rs:
