/root/repo/target/debug/deps/proptests-f38fac0fa5f51004.d: crates/cluster/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f38fac0fa5f51004: crates/cluster/tests/proptests.rs

crates/cluster/tests/proptests.rs:
