/root/repo/target/debug/deps/runvar-b8be83b555fa51d7.d: crates/bench/src/bin/runvar.rs Cargo.toml

/root/repo/target/debug/deps/librunvar-b8be83b555fa51d7.rmeta: crates/bench/src/bin/runvar.rs Cargo.toml

crates/bench/src/bin/runvar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
