/root/repo/target/debug/deps/rv_bench-8da660f87a4c5c83.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

/root/repo/target/debug/deps/librv_bench-8da660f87a4c5c83.rlib: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

/root/repo/target/debug/deps/librv_bench-8da660f87a4c5c83.rmeta: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/exp_characterize.rs:
crates/bench/src/exp_descriptive.rs:
crates/bench/src/exp_explain.rs:
crates/bench/src/exp_predict.rs:
crates/bench/src/exp_whatif.rs:
