/root/repo/target/debug/deps/determinism-cfe5fabdb02e4898.d: crates/core/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-cfe5fabdb02e4898: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
