/root/repo/target/debug/deps/parser_robustness-acc29411c5b91c80.d: crates/telemetry/tests/parser_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libparser_robustness-acc29411c5b91c80.rmeta: crates/telemetry/tests/parser_robustness.rs Cargo.toml

crates/telemetry/tests/parser_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
