/root/repo/target/debug/deps/shapley-4efdee5f14eed7bd.d: crates/bench/benches/shapley.rs Cargo.toml

/root/repo/target/debug/deps/libshapley-4efdee5f14eed7bd.rmeta: crates/bench/benches/shapley.rs Cargo.toml

crates/bench/benches/shapley.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
