/root/repo/target/debug/deps/artifact_roundtrip-92bb63b88137a6ea.d: crates/core/../../tests/artifact_roundtrip.rs

/root/repo/target/debug/deps/artifact_roundtrip-92bb63b88137a6ea: crates/core/../../tests/artifact_roundtrip.rs

crates/core/../../tests/artifact_roundtrip.rs:
