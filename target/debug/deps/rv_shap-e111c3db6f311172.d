/root/repo/target/debug/deps/rv_shap-e111c3db6f311172.d: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

/root/repo/target/debug/deps/rv_shap-e111c3db6f311172: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

crates/shap/src/lib.rs:
crates/shap/src/exact.rs:
crates/shap/src/shapley.rs:
crates/shap/src/summary.rs:
