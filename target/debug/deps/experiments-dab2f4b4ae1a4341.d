/root/repo/target/debug/deps/experiments-dab2f4b4ae1a4341.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-dab2f4b4ae1a4341: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
