/root/repo/target/debug/deps/obs_integration-95b977e47a27325f.d: crates/core/../../tests/obs_integration.rs Cargo.toml

/root/repo/target/debug/deps/libobs_integration-95b977e47a27325f.rmeta: crates/core/../../tests/obs_integration.rs Cargo.toml

crates/core/../../tests/obs_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
