/root/repo/target/debug/deps/rv_learn-7dc01fe1ebc66586.d: crates/learn/src/lib.rs crates/learn/src/data.rs crates/learn/src/ensemble.rs crates/learn/src/feature_select.rs crates/learn/src/forest.rs crates/learn/src/gbdt.rs crates/learn/src/importance.rs crates/learn/src/metrics.rs crates/learn/src/naive_bayes.rs crates/learn/src/serialize.rs crates/learn/src/sweep.rs crates/learn/src/tree.rs crates/learn/src/validation.rs

/root/repo/target/debug/deps/rv_learn-7dc01fe1ebc66586: crates/learn/src/lib.rs crates/learn/src/data.rs crates/learn/src/ensemble.rs crates/learn/src/feature_select.rs crates/learn/src/forest.rs crates/learn/src/gbdt.rs crates/learn/src/importance.rs crates/learn/src/metrics.rs crates/learn/src/naive_bayes.rs crates/learn/src/serialize.rs crates/learn/src/sweep.rs crates/learn/src/tree.rs crates/learn/src/validation.rs

crates/learn/src/lib.rs:
crates/learn/src/data.rs:
crates/learn/src/ensemble.rs:
crates/learn/src/feature_select.rs:
crates/learn/src/forest.rs:
crates/learn/src/gbdt.rs:
crates/learn/src/importance.rs:
crates/learn/src/metrics.rs:
crates/learn/src/naive_bayes.rs:
crates/learn/src/serialize.rs:
crates/learn/src/sweep.rs:
crates/learn/src/tree.rs:
crates/learn/src/validation.rs:
