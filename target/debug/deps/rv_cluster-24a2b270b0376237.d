/root/repo/target/debug/deps/rv_cluster-24a2b270b0376237.d: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/assign.rs crates/cluster/src/dendrogram.rs crates/cluster/src/elbow.rs crates/cluster/src/kmeans.rs crates/cluster/src/minibatch.rs crates/cluster/src/silhouette.rs

/root/repo/target/debug/deps/librv_cluster-24a2b270b0376237.rlib: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/assign.rs crates/cluster/src/dendrogram.rs crates/cluster/src/elbow.rs crates/cluster/src/kmeans.rs crates/cluster/src/minibatch.rs crates/cluster/src/silhouette.rs

/root/repo/target/debug/deps/librv_cluster-24a2b270b0376237.rmeta: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/assign.rs crates/cluster/src/dendrogram.rs crates/cluster/src/elbow.rs crates/cluster/src/kmeans.rs crates/cluster/src/minibatch.rs crates/cluster/src/silhouette.rs

crates/cluster/src/lib.rs:
crates/cluster/src/agglomerative.rs:
crates/cluster/src/assign.rs:
crates/cluster/src/dendrogram.rs:
crates/cluster/src/elbow.rs:
crates/cluster/src/kmeans.rs:
crates/cluster/src/minibatch.rs:
crates/cluster/src/silhouette.rs:
