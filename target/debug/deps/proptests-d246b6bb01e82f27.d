/root/repo/target/debug/deps/proptests-d246b6bb01e82f27.d: crates/scope/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d246b6bb01e82f27.rmeta: crates/scope/tests/proptests.rs Cargo.toml

crates/scope/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
