/root/repo/target/debug/deps/rand-e2d18a35574902a3.d: shims/rand/src/lib.rs shims/rand/src/rngs.rs shims/rand/src/seq.rs shims/rand/src/uniform.rs

/root/repo/target/debug/deps/librand-e2d18a35574902a3.rlib: shims/rand/src/lib.rs shims/rand/src/rngs.rs shims/rand/src/seq.rs shims/rand/src/uniform.rs

/root/repo/target/debug/deps/librand-e2d18a35574902a3.rmeta: shims/rand/src/lib.rs shims/rand/src/rngs.rs shims/rand/src/seq.rs shims/rand/src/uniform.rs

shims/rand/src/lib.rs:
shims/rand/src/rngs.rs:
shims/rand/src/seq.rs:
shims/rand/src/uniform.rs:
