/root/repo/target/debug/deps/rv_bench-e723eb77881215cc.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

/root/repo/target/debug/deps/librv_bench-e723eb77881215cc.rlib: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

/root/repo/target/debug/deps/librv_bench-e723eb77881215cc.rmeta: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/exp_characterize.rs:
crates/bench/src/exp_descriptive.rs:
crates/bench/src/exp_explain.rs:
crates/bench/src/exp_predict.rs:
crates/bench/src/exp_whatif.rs:
