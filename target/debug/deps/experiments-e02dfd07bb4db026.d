/root/repo/target/debug/deps/experiments-e02dfd07bb4db026.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-e02dfd07bb4db026: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
