/root/repo/target/debug/deps/determinism-831651bd9c5d48e4.d: crates/core/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-831651bd9c5d48e4: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
