/root/repo/target/debug/deps/end_to_end-3cc7af986a9640d5.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3cc7af986a9640d5: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
