/root/repo/target/debug/deps/runvar-f49261a6b92bba2b.d: crates/bench/src/bin/runvar.rs

/root/repo/target/debug/deps/runvar-f49261a6b92bba2b: crates/bench/src/bin/runvar.rs

crates/bench/src/bin/runvar.rs:
