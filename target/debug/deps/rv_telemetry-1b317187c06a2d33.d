/root/repo/target/debug/deps/rv_telemetry-1b317187c06a2d33.d: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

/root/repo/target/debug/deps/librv_telemetry-1b317187c06a2d33.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

/root/repo/target/debug/deps/librv_telemetry-1b317187c06a2d33.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/collect.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/features.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/store.rs:
