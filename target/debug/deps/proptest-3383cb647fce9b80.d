/root/repo/target/debug/deps/proptest-3383cb647fce9b80.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/string.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-3383cb647fce9b80: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/string.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/string.rs:
shims/proptest/src/test_runner.rs:
