/root/repo/target/debug/deps/rv_shap-ba017b7f4a8032be.d: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

/root/repo/target/debug/deps/rv_shap-ba017b7f4a8032be: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

crates/shap/src/lib.rs:
crates/shap/src/exact.rs:
crates/shap/src/shapley.rs:
crates/shap/src/summary.rs:
