/root/repo/target/debug/deps/end_to_end-81b4f8ae82b84b15.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-81b4f8ae82b84b15: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
