/root/repo/target/debug/deps/proptests-030b3e6e13844d4d.d: crates/stats/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-030b3e6e13844d4d.rmeta: crates/stats/tests/proptests.rs Cargo.toml

crates/stats/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
