/root/repo/target/debug/deps/likelihood-183792a5789b30a9.d: crates/bench/benches/likelihood.rs Cargo.toml

/root/repo/target/debug/deps/liblikelihood-183792a5789b30a9.rmeta: crates/bench/benches/likelihood.rs Cargo.toml

crates/bench/benches/likelihood.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
