/root/repo/target/debug/deps/likelihood-8c3293710556c82e.d: crates/bench/benches/likelihood.rs Cargo.toml

/root/repo/target/debug/deps/liblikelihood-8c3293710556c82e.rmeta: crates/bench/benches/likelihood.rs Cargo.toml

crates/bench/benches/likelihood.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
