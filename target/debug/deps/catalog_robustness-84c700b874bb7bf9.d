/root/repo/target/debug/deps/catalog_robustness-84c700b874bb7bf9.d: crates/core/tests/catalog_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libcatalog_robustness-84c700b874bb7bf9.rmeta: crates/core/tests/catalog_robustness.rs Cargo.toml

crates/core/tests/catalog_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
