/root/repo/target/debug/deps/runvar-6409f6d9cf760111.d: crates/bench/src/bin/runvar.rs

/root/repo/target/debug/deps/runvar-6409f6d9cf760111: crates/bench/src/bin/runvar.rs

crates/bench/src/bin/runvar.rs:
