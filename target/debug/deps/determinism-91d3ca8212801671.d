/root/repo/target/debug/deps/determinism-91d3ca8212801671.d: crates/core/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-91d3ca8212801671: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
