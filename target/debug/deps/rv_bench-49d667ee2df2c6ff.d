/root/repo/target/debug/deps/rv_bench-49d667ee2df2c6ff.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

/root/repo/target/debug/deps/librv_bench-49d667ee2df2c6ff.rlib: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

/root/repo/target/debug/deps/librv_bench-49d667ee2df2c6ff.rmeta: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/exp_characterize.rs:
crates/bench/src/exp_descriptive.rs:
crates/bench/src/exp_explain.rs:
crates/bench/src/exp_predict.rs:
crates/bench/src/exp_whatif.rs:
