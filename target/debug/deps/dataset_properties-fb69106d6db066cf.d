/root/repo/target/debug/deps/dataset_properties-fb69106d6db066cf.d: crates/core/../../tests/dataset_properties.rs

/root/repo/target/debug/deps/dataset_properties-fb69106d6db066cf: crates/core/../../tests/dataset_properties.rs

crates/core/../../tests/dataset_properties.rs:
