/root/repo/target/debug/deps/characterize-206aec2a5cefdb15.d: crates/bench/benches/characterize.rs

/root/repo/target/debug/deps/characterize-206aec2a5cefdb15: crates/bench/benches/characterize.rs

crates/bench/benches/characterize.rs:
