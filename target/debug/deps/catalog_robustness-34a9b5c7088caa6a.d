/root/repo/target/debug/deps/catalog_robustness-34a9b5c7088caa6a.d: crates/core/tests/catalog_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libcatalog_robustness-34a9b5c7088caa6a.rmeta: crates/core/tests/catalog_robustness.rs Cargo.toml

crates/core/tests/catalog_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
