/root/repo/target/debug/deps/characterize-c9878f178bdda86e.d: crates/bench/benches/characterize.rs Cargo.toml

/root/repo/target/debug/deps/libcharacterize-c9878f178bdda86e.rmeta: crates/bench/benches/characterize.rs Cargo.toml

crates/bench/benches/characterize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
