/root/repo/target/debug/deps/proptests-0dedc556d96c5950.d: crates/learn/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-0dedc556d96c5950.rmeta: crates/learn/tests/proptests.rs Cargo.toml

crates/learn/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
