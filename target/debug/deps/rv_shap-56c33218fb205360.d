/root/repo/target/debug/deps/rv_shap-56c33218fb205360.d: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

/root/repo/target/debug/deps/rv_shap-56c33218fb205360: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

crates/shap/src/lib.rs:
crates/shap/src/exact.rs:
crates/shap/src/shapley.rs:
crates/shap/src/summary.rs:
