/root/repo/target/debug/deps/runvar-e76b6aaaf77f1d6b.d: crates/bench/src/bin/runvar.rs Cargo.toml

/root/repo/target/debug/deps/librunvar-e76b6aaaf77f1d6b.rmeta: crates/bench/src/bin/runvar.rs Cargo.toml

crates/bench/src/bin/runvar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
