/root/repo/target/debug/deps/proptests-aadf66da04517fa0.d: crates/learn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-aadf66da04517fa0: crates/learn/tests/proptests.rs

crates/learn/tests/proptests.rs:
