/root/repo/target/debug/deps/proptest-1fdb54c94a6811d9.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/string.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-1fdb54c94a6811d9.rlib: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/string.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-1fdb54c94a6811d9.rmeta: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/string.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/string.rs:
shims/proptest/src/test_runner.rs:
