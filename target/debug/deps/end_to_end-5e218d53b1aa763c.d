/root/repo/target/debug/deps/end_to_end-5e218d53b1aa763c.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-5e218d53b1aa763c: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
