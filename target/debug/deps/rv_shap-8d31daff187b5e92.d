/root/repo/target/debug/deps/rv_shap-8d31daff187b5e92.d: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

/root/repo/target/debug/deps/librv_shap-8d31daff187b5e92.rlib: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

/root/repo/target/debug/deps/librv_shap-8d31daff187b5e92.rmeta: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

crates/shap/src/lib.rs:
crates/shap/src/exact.rs:
crates/shap/src/shapley.rs:
crates/shap/src/summary.rs:
