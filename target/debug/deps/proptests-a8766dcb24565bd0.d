/root/repo/target/debug/deps/proptests-a8766dcb24565bd0.d: crates/stats/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a8766dcb24565bd0: crates/stats/tests/proptests.rs

crates/stats/tests/proptests.rs:
