/root/repo/target/debug/deps/rv_learn-b15cba7315c95e1c.d: crates/learn/src/lib.rs crates/learn/src/data.rs crates/learn/src/ensemble.rs crates/learn/src/feature_select.rs crates/learn/src/forest.rs crates/learn/src/gbdt.rs crates/learn/src/importance.rs crates/learn/src/metrics.rs crates/learn/src/naive_bayes.rs crates/learn/src/serialize.rs crates/learn/src/sweep.rs crates/learn/src/tree.rs crates/learn/src/validation.rs Cargo.toml

/root/repo/target/debug/deps/librv_learn-b15cba7315c95e1c.rmeta: crates/learn/src/lib.rs crates/learn/src/data.rs crates/learn/src/ensemble.rs crates/learn/src/feature_select.rs crates/learn/src/forest.rs crates/learn/src/gbdt.rs crates/learn/src/importance.rs crates/learn/src/metrics.rs crates/learn/src/naive_bayes.rs crates/learn/src/serialize.rs crates/learn/src/sweep.rs crates/learn/src/tree.rs crates/learn/src/validation.rs Cargo.toml

crates/learn/src/lib.rs:
crates/learn/src/data.rs:
crates/learn/src/ensemble.rs:
crates/learn/src/feature_select.rs:
crates/learn/src/forest.rs:
crates/learn/src/gbdt.rs:
crates/learn/src/importance.rs:
crates/learn/src/metrics.rs:
crates/learn/src/naive_bayes.rs:
crates/learn/src/serialize.rs:
crates/learn/src/sweep.rs:
crates/learn/src/tree.rs:
crates/learn/src/validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
