/root/repo/target/debug/deps/learners-bfd78e21a96a8845.d: crates/bench/benches/learners.rs Cargo.toml

/root/repo/target/debug/deps/liblearners-bfd78e21a96a8845.rmeta: crates/bench/benches/learners.rs Cargo.toml

crates/bench/benches/learners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
