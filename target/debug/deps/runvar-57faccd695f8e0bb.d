/root/repo/target/debug/deps/runvar-57faccd695f8e0bb.d: crates/bench/src/bin/runvar.rs

/root/repo/target/debug/deps/runvar-57faccd695f8e0bb: crates/bench/src/bin/runvar.rs

crates/bench/src/bin/runvar.rs:
