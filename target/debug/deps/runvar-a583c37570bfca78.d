/root/repo/target/debug/deps/runvar-a583c37570bfca78.d: crates/bench/src/bin/runvar.rs

/root/repo/target/debug/deps/runvar-a583c37570bfca78: crates/bench/src/bin/runvar.rs

crates/bench/src/bin/runvar.rs:
