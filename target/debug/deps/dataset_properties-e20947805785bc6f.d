/root/repo/target/debug/deps/dataset_properties-e20947805785bc6f.d: crates/core/../../tests/dataset_properties.rs Cargo.toml

/root/repo/target/debug/deps/libdataset_properties-e20947805785bc6f.rmeta: crates/core/../../tests/dataset_properties.rs Cargo.toml

crates/core/../../tests/dataset_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
