/root/repo/target/debug/deps/catalog_robustness-8a51edf98c524b53.d: crates/core/tests/catalog_robustness.rs

/root/repo/target/debug/deps/catalog_robustness-8a51edf98c524b53: crates/core/tests/catalog_robustness.rs

crates/core/tests/catalog_robustness.rs:
