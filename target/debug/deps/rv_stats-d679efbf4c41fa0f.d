/root/repo/target/debug/deps/rv_stats-d679efbf4c41fa0f.d: crates/stats/src/lib.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/moments.rs crates/stats/src/normalize.rs crates/stats/src/qq.rs crates/stats/src/quantile.rs crates/stats/src/smooth.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/rv_stats-d679efbf4c41fa0f: crates/stats/src/lib.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/moments.rs crates/stats/src/normalize.rs crates/stats/src/qq.rs crates/stats/src/quantile.rs crates/stats/src/smooth.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/distance.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/histogram.rs:
crates/stats/src/moments.rs:
crates/stats/src/normalize.rs:
crates/stats/src/qq.rs:
crates/stats/src/quantile.rs:
crates/stats/src/smooth.rs:
crates/stats/src/summary.rs:
