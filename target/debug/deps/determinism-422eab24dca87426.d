/root/repo/target/debug/deps/determinism-422eab24dca87426.d: crates/core/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-422eab24dca87426: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
