/root/repo/target/debug/deps/rv_par-6d553359c730d003.d: crates/par/src/lib.rs crates/par/src/fault.rs Cargo.toml

/root/repo/target/debug/deps/librv_par-6d553359c730d003.rmeta: crates/par/src/lib.rs crates/par/src/fault.rs Cargo.toml

crates/par/src/lib.rs:
crates/par/src/fault.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
