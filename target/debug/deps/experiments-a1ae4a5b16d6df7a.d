/root/repo/target/debug/deps/experiments-a1ae4a5b16d6df7a.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-a1ae4a5b16d6df7a: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
