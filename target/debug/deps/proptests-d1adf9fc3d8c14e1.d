/root/repo/target/debug/deps/proptests-d1adf9fc3d8c14e1.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d1adf9fc3d8c14e1: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
