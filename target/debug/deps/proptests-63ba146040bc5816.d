/root/repo/target/debug/deps/proptests-63ba146040bc5816.d: crates/cluster/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-63ba146040bc5816.rmeta: crates/cluster/tests/proptests.rs Cargo.toml

crates/cluster/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
