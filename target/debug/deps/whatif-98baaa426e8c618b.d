/root/repo/target/debug/deps/whatif-98baaa426e8c618b.d: crates/bench/benches/whatif.rs Cargo.toml

/root/repo/target/debug/deps/libwhatif-98baaa426e8c618b.rmeta: crates/bench/benches/whatif.rs Cargo.toml

crates/bench/benches/whatif.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
