/root/repo/target/debug/deps/rv_obs-7be431f8121d49ee.d: crates/obs/src/lib.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/sink.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/rv_obs-7be431f8121d49ee: crates/obs/src/lib.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/sink.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/log.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/sink.rs:
crates/obs/src/span.rs:
