/root/repo/target/debug/deps/rv_telemetry-eb1d326a58d8daf7.d: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

/root/repo/target/debug/deps/librv_telemetry-eb1d326a58d8daf7.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

/root/repo/target/debug/deps/librv_telemetry-eb1d326a58d8daf7.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/collect.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/features.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/store.rs:
