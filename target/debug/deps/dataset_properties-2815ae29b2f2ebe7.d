/root/repo/target/debug/deps/dataset_properties-2815ae29b2f2ebe7.d: crates/core/../../tests/dataset_properties.rs

/root/repo/target/debug/deps/dataset_properties-2815ae29b2f2ebe7: crates/core/../../tests/dataset_properties.rs

crates/core/../../tests/dataset_properties.rs:
