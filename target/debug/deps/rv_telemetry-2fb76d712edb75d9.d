/root/repo/target/debug/deps/rv_telemetry-2fb76d712edb75d9.d: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs Cargo.toml

/root/repo/target/debug/deps/librv_telemetry-2fb76d712edb75d9.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/collect.rs crates/telemetry/src/dataset.rs crates/telemetry/src/export.rs crates/telemetry/src/features.rs crates/telemetry/src/record.rs crates/telemetry/src/store.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/collect.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/features.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
