/root/repo/target/debug/deps/rv_par-f29cbbbb9edcab11.d: crates/par/src/lib.rs crates/par/src/fault.rs

/root/repo/target/debug/deps/rv_par-f29cbbbb9edcab11: crates/par/src/lib.rs crates/par/src/fault.rs

crates/par/src/lib.rs:
crates/par/src/fault.rs:
