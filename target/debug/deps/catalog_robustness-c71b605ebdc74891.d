/root/repo/target/debug/deps/catalog_robustness-c71b605ebdc74891.d: crates/core/tests/catalog_robustness.rs

/root/repo/target/debug/deps/catalog_robustness-c71b605ebdc74891: crates/core/tests/catalog_robustness.rs

crates/core/tests/catalog_robustness.rs:
