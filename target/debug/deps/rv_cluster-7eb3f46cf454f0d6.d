/root/repo/target/debug/deps/rv_cluster-7eb3f46cf454f0d6.d: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/assign.rs crates/cluster/src/dendrogram.rs crates/cluster/src/elbow.rs crates/cluster/src/kmeans.rs crates/cluster/src/minibatch.rs crates/cluster/src/silhouette.rs Cargo.toml

/root/repo/target/debug/deps/librv_cluster-7eb3f46cf454f0d6.rmeta: crates/cluster/src/lib.rs crates/cluster/src/agglomerative.rs crates/cluster/src/assign.rs crates/cluster/src/dendrogram.rs crates/cluster/src/elbow.rs crates/cluster/src/kmeans.rs crates/cluster/src/minibatch.rs crates/cluster/src/silhouette.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/agglomerative.rs:
crates/cluster/src/assign.rs:
crates/cluster/src/dendrogram.rs:
crates/cluster/src/elbow.rs:
crates/cluster/src/kmeans.rs:
crates/cluster/src/minibatch.rs:
crates/cluster/src/silhouette.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
