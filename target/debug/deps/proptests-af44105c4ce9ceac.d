/root/repo/target/debug/deps/proptests-af44105c4ce9ceac.d: crates/cluster/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-af44105c4ce9ceac.rmeta: crates/cluster/tests/proptests.rs Cargo.toml

crates/cluster/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
