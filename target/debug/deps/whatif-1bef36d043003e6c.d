/root/repo/target/debug/deps/whatif-1bef36d043003e6c.d: crates/bench/benches/whatif.rs Cargo.toml

/root/repo/target/debug/deps/libwhatif-1bef36d043003e6c.rmeta: crates/bench/benches/whatif.rs Cargo.toml

crates/bench/benches/whatif.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
