/root/repo/target/debug/deps/rv_par-f1e8413b27902c9f.d: crates/par/src/lib.rs crates/par/src/fault.rs

/root/repo/target/debug/deps/librv_par-f1e8413b27902c9f.rlib: crates/par/src/lib.rs crates/par/src/fault.rs

/root/repo/target/debug/deps/librv_par-f1e8413b27902c9f.rmeta: crates/par/src/lib.rs crates/par/src/fault.rs

crates/par/src/lib.rs:
crates/par/src/fault.rs:
