/root/repo/target/debug/deps/learners-ad8fa01ee1e993ba.d: crates/bench/benches/learners.rs

/root/repo/target/debug/deps/learners-ad8fa01ee1e993ba: crates/bench/benches/learners.rs

crates/bench/benches/learners.rs:
