/root/repo/target/debug/deps/rv_bench-12b5ef502b706972.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs Cargo.toml

/root/repo/target/debug/deps/librv_bench-12b5ef502b706972.rmeta: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/exp_characterize.rs:
crates/bench/src/exp_descriptive.rs:
crates/bench/src/exp_explain.rs:
crates/bench/src/exp_predict.rs:
crates/bench/src/exp_whatif.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
