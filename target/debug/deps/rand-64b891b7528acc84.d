/root/repo/target/debug/deps/rand-64b891b7528acc84.d: shims/rand/src/lib.rs shims/rand/src/rngs.rs shims/rand/src/seq.rs shims/rand/src/uniform.rs Cargo.toml

/root/repo/target/debug/deps/librand-64b891b7528acc84.rmeta: shims/rand/src/lib.rs shims/rand/src/rngs.rs shims/rand/src/seq.rs shims/rand/src/uniform.rs Cargo.toml

shims/rand/src/lib.rs:
shims/rand/src/rngs.rs:
shims/rand/src/seq.rs:
shims/rand/src/uniform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
