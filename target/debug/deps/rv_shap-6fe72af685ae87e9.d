/root/repo/target/debug/deps/rv_shap-6fe72af685ae87e9.d: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

/root/repo/target/debug/deps/librv_shap-6fe72af685ae87e9.rlib: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

/root/repo/target/debug/deps/librv_shap-6fe72af685ae87e9.rmeta: crates/shap/src/lib.rs crates/shap/src/exact.rs crates/shap/src/shapley.rs crates/shap/src/summary.rs

crates/shap/src/lib.rs:
crates/shap/src/exact.rs:
crates/shap/src/shapley.rs:
crates/shap/src/summary.rs:
