/root/repo/target/debug/deps/learners-55f66479ffa4c7be.d: crates/bench/benches/learners.rs Cargo.toml

/root/repo/target/debug/deps/liblearners-55f66479ffa4c7be.rmeta: crates/bench/benches/learners.rs Cargo.toml

crates/bench/benches/learners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
