/root/repo/target/debug/deps/rv_sim-30185d4c46316aaa.d: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/config.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/rare.rs crates/sim/src/scheduler.rs crates/sim/src/sku.rs crates/sim/src/tokens.rs

/root/repo/target/debug/deps/rv_sim-30185d4c46316aaa: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/config.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/rare.rs crates/sim/src/scheduler.rs crates/sim/src/sku.rs crates/sim/src/tokens.rs

crates/sim/src/lib.rs:
crates/sim/src/cluster.rs:
crates/sim/src/config.rs:
crates/sim/src/exec.rs:
crates/sim/src/machine.rs:
crates/sim/src/rare.rs:
crates/sim/src/scheduler.rs:
crates/sim/src/sku.rs:
crates/sim/src/tokens.rs:
