/root/repo/target/debug/deps/rv_obs-f27add2ce93c60ff.d: crates/obs/src/lib.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/sink.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/librv_obs-f27add2ce93c60ff.rmeta: crates/obs/src/lib.rs crates/obs/src/log.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/sink.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/log.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/sink.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
