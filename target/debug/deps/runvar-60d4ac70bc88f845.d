/root/repo/target/debug/deps/runvar-60d4ac70bc88f845.d: crates/bench/src/bin/runvar.rs

/root/repo/target/debug/deps/runvar-60d4ac70bc88f845: crates/bench/src/bin/runvar.rs

crates/bench/src/bin/runvar.rs:
