/root/repo/target/debug/deps/obs_integration-ec9d425ca3b508eb.d: crates/core/../../tests/obs_integration.rs

/root/repo/target/debug/deps/obs_integration-ec9d425ca3b508eb: crates/core/../../tests/obs_integration.rs

crates/core/../../tests/obs_integration.rs:
