/root/repo/target/debug/deps/rv_bench-d617a39a22134398.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

/root/repo/target/debug/deps/rv_bench-d617a39a22134398: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/exp_characterize.rs crates/bench/src/exp_descriptive.rs crates/bench/src/exp_explain.rs crates/bench/src/exp_predict.rs crates/bench/src/exp_whatif.rs

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/exp_characterize.rs:
crates/bench/src/exp_descriptive.rs:
crates/bench/src/exp_explain.rs:
crates/bench/src/exp_predict.rs:
crates/bench/src/exp_whatif.rs:
