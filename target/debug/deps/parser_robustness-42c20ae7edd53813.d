/root/repo/target/debug/deps/parser_robustness-42c20ae7edd53813.d: crates/telemetry/tests/parser_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libparser_robustness-42c20ae7edd53813.rmeta: crates/telemetry/tests/parser_robustness.rs Cargo.toml

crates/telemetry/tests/parser_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
