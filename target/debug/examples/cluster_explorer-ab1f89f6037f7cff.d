/root/repo/target/debug/examples/cluster_explorer-ab1f89f6037f7cff.d: crates/core/../../examples/cluster_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libcluster_explorer-ab1f89f6037f7cff.rmeta: crates/core/../../examples/cluster_explorer.rs Cargo.toml

crates/core/../../examples/cluster_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
