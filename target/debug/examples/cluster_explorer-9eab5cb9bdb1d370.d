/root/repo/target/debug/examples/cluster_explorer-9eab5cb9bdb1d370.d: crates/core/../../examples/cluster_explorer.rs

/root/repo/target/debug/examples/cluster_explorer-9eab5cb9bdb1d370: crates/core/../../examples/cluster_explorer.rs

crates/core/../../examples/cluster_explorer.rs:
