/root/repo/target/debug/examples/cluster_explorer-29bc258683d82777.d: crates/core/../../examples/cluster_explorer.rs

/root/repo/target/debug/examples/cluster_explorer-29bc258683d82777: crates/core/../../examples/cluster_explorer.rs

crates/core/../../examples/cluster_explorer.rs:
