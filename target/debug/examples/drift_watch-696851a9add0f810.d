/root/repo/target/debug/examples/drift_watch-696851a9add0f810.d: crates/core/../../examples/drift_watch.rs

/root/repo/target/debug/examples/drift_watch-696851a9add0f810: crates/core/../../examples/drift_watch.rs

crates/core/../../examples/drift_watch.rs:
