/root/repo/target/debug/examples/whatif_planner-5f241f5c272bdcdc.d: crates/core/../../examples/whatif_planner.rs Cargo.toml

/root/repo/target/debug/examples/libwhatif_planner-5f241f5c272bdcdc.rmeta: crates/core/../../examples/whatif_planner.rs Cargo.toml

crates/core/../../examples/whatif_planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
