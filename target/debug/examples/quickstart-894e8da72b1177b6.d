/root/repo/target/debug/examples/quickstart-894e8da72b1177b6.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-894e8da72b1177b6.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
