/root/repo/target/debug/examples/drift_watch-bfd879058b9a5778.d: crates/core/../../examples/drift_watch.rs

/root/repo/target/debug/examples/drift_watch-bfd879058b9a5778: crates/core/../../examples/drift_watch.rs

crates/core/../../examples/drift_watch.rs:
