/root/repo/target/debug/examples/scheduler_advisor-fb7bb8926fdc6e56.d: crates/core/../../examples/scheduler_advisor.rs Cargo.toml

/root/repo/target/debug/examples/libscheduler_advisor-fb7bb8926fdc6e56.rmeta: crates/core/../../examples/scheduler_advisor.rs Cargo.toml

crates/core/../../examples/scheduler_advisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
