/root/repo/target/debug/examples/drift_watch-9ac999c8319f473b.d: crates/core/../../examples/drift_watch.rs Cargo.toml

/root/repo/target/debug/examples/libdrift_watch-9ac999c8319f473b.rmeta: crates/core/../../examples/drift_watch.rs Cargo.toml

crates/core/../../examples/drift_watch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
