/root/repo/target/debug/examples/sla_monitor-df2beb2eb2d17bcd.d: crates/core/../../examples/sla_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libsla_monitor-df2beb2eb2d17bcd.rmeta: crates/core/../../examples/sla_monitor.rs Cargo.toml

crates/core/../../examples/sla_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
