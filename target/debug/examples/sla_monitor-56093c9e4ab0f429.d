/root/repo/target/debug/examples/sla_monitor-56093c9e4ab0f429.d: crates/core/../../examples/sla_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libsla_monitor-56093c9e4ab0f429.rmeta: crates/core/../../examples/sla_monitor.rs Cargo.toml

crates/core/../../examples/sla_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
