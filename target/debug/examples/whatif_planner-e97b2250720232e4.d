/root/repo/target/debug/examples/whatif_planner-e97b2250720232e4.d: crates/core/../../examples/whatif_planner.rs Cargo.toml

/root/repo/target/debug/examples/libwhatif_planner-e97b2250720232e4.rmeta: crates/core/../../examples/whatif_planner.rs Cargo.toml

crates/core/../../examples/whatif_planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
