/root/repo/target/debug/examples/pipeline_trace-93152265724b2658.d: crates/core/../../examples/pipeline_trace.rs

/root/repo/target/debug/examples/pipeline_trace-93152265724b2658: crates/core/../../examples/pipeline_trace.rs

crates/core/../../examples/pipeline_trace.rs:
