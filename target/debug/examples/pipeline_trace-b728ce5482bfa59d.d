/root/repo/target/debug/examples/pipeline_trace-b728ce5482bfa59d.d: crates/core/../../examples/pipeline_trace.rs Cargo.toml

/root/repo/target/debug/examples/libpipeline_trace-b728ce5482bfa59d.rmeta: crates/core/../../examples/pipeline_trace.rs Cargo.toml

crates/core/../../examples/pipeline_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
