/root/repo/target/debug/examples/sla_monitor-fe022a54477ff5ec.d: crates/core/../../examples/sla_monitor.rs

/root/repo/target/debug/examples/sla_monitor-fe022a54477ff5ec: crates/core/../../examples/sla_monitor.rs

crates/core/../../examples/sla_monitor.rs:
