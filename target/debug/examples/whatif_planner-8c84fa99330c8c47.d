/root/repo/target/debug/examples/whatif_planner-8c84fa99330c8c47.d: crates/core/../../examples/whatif_planner.rs

/root/repo/target/debug/examples/whatif_planner-8c84fa99330c8c47: crates/core/../../examples/whatif_planner.rs

crates/core/../../examples/whatif_planner.rs:
