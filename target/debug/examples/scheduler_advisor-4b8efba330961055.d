/root/repo/target/debug/examples/scheduler_advisor-4b8efba330961055.d: crates/core/../../examples/scheduler_advisor.rs

/root/repo/target/debug/examples/scheduler_advisor-4b8efba330961055: crates/core/../../examples/scheduler_advisor.rs

crates/core/../../examples/scheduler_advisor.rs:
