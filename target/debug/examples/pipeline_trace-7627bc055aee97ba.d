/root/repo/target/debug/examples/pipeline_trace-7627bc055aee97ba.d: crates/core/../../examples/pipeline_trace.rs

/root/repo/target/debug/examples/pipeline_trace-7627bc055aee97ba: crates/core/../../examples/pipeline_trace.rs

crates/core/../../examples/pipeline_trace.rs:
