/root/repo/target/debug/examples/drift_watch-b1d94646d57681ec.d: crates/core/../../examples/drift_watch.rs

/root/repo/target/debug/examples/drift_watch-b1d94646d57681ec: crates/core/../../examples/drift_watch.rs

crates/core/../../examples/drift_watch.rs:
