/root/repo/target/debug/examples/pipeline_trace-1db2ca88a3da41c2.d: crates/core/../../examples/pipeline_trace.rs

/root/repo/target/debug/examples/pipeline_trace-1db2ca88a3da41c2: crates/core/../../examples/pipeline_trace.rs

crates/core/../../examples/pipeline_trace.rs:
