/root/repo/target/debug/examples/scheduler_advisor-ac7c7574f1eceee9.d: crates/core/../../examples/scheduler_advisor.rs Cargo.toml

/root/repo/target/debug/examples/libscheduler_advisor-ac7c7574f1eceee9.rmeta: crates/core/../../examples/scheduler_advisor.rs Cargo.toml

crates/core/../../examples/scheduler_advisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
