/root/repo/target/debug/examples/quickstart-0257f8be5c12c4b7.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0257f8be5c12c4b7: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
