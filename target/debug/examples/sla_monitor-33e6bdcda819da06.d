/root/repo/target/debug/examples/sla_monitor-33e6bdcda819da06.d: crates/core/../../examples/sla_monitor.rs

/root/repo/target/debug/examples/sla_monitor-33e6bdcda819da06: crates/core/../../examples/sla_monitor.rs

crates/core/../../examples/sla_monitor.rs:
