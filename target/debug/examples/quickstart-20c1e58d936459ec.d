/root/repo/target/debug/examples/quickstart-20c1e58d936459ec.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-20c1e58d936459ec: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
