/root/repo/target/debug/examples/quickstart-bbd063cd43483594.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bbd063cd43483594: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
