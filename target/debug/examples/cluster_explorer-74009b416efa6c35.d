/root/repo/target/debug/examples/cluster_explorer-74009b416efa6c35.d: crates/core/../../examples/cluster_explorer.rs

/root/repo/target/debug/examples/cluster_explorer-74009b416efa6c35: crates/core/../../examples/cluster_explorer.rs

crates/core/../../examples/cluster_explorer.rs:
