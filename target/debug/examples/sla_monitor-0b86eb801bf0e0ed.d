/root/repo/target/debug/examples/sla_monitor-0b86eb801bf0e0ed.d: crates/core/../../examples/sla_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libsla_monitor-0b86eb801bf0e0ed.rmeta: crates/core/../../examples/sla_monitor.rs Cargo.toml

crates/core/../../examples/sla_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
