/root/repo/target/debug/examples/whatif_planner-95ae00c4b1a9cab9.d: crates/core/../../examples/whatif_planner.rs

/root/repo/target/debug/examples/whatif_planner-95ae00c4b1a9cab9: crates/core/../../examples/whatif_planner.rs

crates/core/../../examples/whatif_planner.rs:
