/root/repo/target/debug/examples/whatif_planner-cd7260d7e2f5c2d0.d: crates/core/../../examples/whatif_planner.rs

/root/repo/target/debug/examples/whatif_planner-cd7260d7e2f5c2d0: crates/core/../../examples/whatif_planner.rs

crates/core/../../examples/whatif_planner.rs:
