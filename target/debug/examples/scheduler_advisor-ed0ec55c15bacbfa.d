/root/repo/target/debug/examples/scheduler_advisor-ed0ec55c15bacbfa.d: crates/core/../../examples/scheduler_advisor.rs

/root/repo/target/debug/examples/scheduler_advisor-ed0ec55c15bacbfa: crates/core/../../examples/scheduler_advisor.rs

crates/core/../../examples/scheduler_advisor.rs:
