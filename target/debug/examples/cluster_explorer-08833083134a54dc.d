/root/repo/target/debug/examples/cluster_explorer-08833083134a54dc.d: crates/core/../../examples/cluster_explorer.rs

/root/repo/target/debug/examples/cluster_explorer-08833083134a54dc: crates/core/../../examples/cluster_explorer.rs

crates/core/../../examples/cluster_explorer.rs:
