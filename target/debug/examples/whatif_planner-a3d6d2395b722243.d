/root/repo/target/debug/examples/whatif_planner-a3d6d2395b722243.d: crates/core/../../examples/whatif_planner.rs

/root/repo/target/debug/examples/whatif_planner-a3d6d2395b722243: crates/core/../../examples/whatif_planner.rs

crates/core/../../examples/whatif_planner.rs:
