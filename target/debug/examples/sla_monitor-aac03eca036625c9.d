/root/repo/target/debug/examples/sla_monitor-aac03eca036625c9.d: crates/core/../../examples/sla_monitor.rs

/root/repo/target/debug/examples/sla_monitor-aac03eca036625c9: crates/core/../../examples/sla_monitor.rs

crates/core/../../examples/sla_monitor.rs:
