/root/repo/target/debug/examples/drift_watch-bf63dc9ae8408b63.d: crates/core/../../examples/drift_watch.rs Cargo.toml

/root/repo/target/debug/examples/libdrift_watch-bf63dc9ae8408b63.rmeta: crates/core/../../examples/drift_watch.rs Cargo.toml

crates/core/../../examples/drift_watch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
