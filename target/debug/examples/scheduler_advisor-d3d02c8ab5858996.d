/root/repo/target/debug/examples/scheduler_advisor-d3d02c8ab5858996.d: crates/core/../../examples/scheduler_advisor.rs

/root/repo/target/debug/examples/scheduler_advisor-d3d02c8ab5858996: crates/core/../../examples/scheduler_advisor.rs

crates/core/../../examples/scheduler_advisor.rs:
