/root/repo/target/debug/examples/scheduler_advisor-d83af483c1eea5db.d: crates/core/../../examples/scheduler_advisor.rs

/root/repo/target/debug/examples/scheduler_advisor-d83af483c1eea5db: crates/core/../../examples/scheduler_advisor.rs

crates/core/../../examples/scheduler_advisor.rs:
