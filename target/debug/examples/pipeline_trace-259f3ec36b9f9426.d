/root/repo/target/debug/examples/pipeline_trace-259f3ec36b9f9426.d: crates/core/../../examples/pipeline_trace.rs Cargo.toml

/root/repo/target/debug/examples/libpipeline_trace-259f3ec36b9f9426.rmeta: crates/core/../../examples/pipeline_trace.rs Cargo.toml

crates/core/../../examples/pipeline_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
