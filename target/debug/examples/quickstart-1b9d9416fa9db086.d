/root/repo/target/debug/examples/quickstart-1b9d9416fa9db086.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-1b9d9416fa9db086.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
