/root/repo/target/debug/examples/drift_watch-9cc3c74a8f2497e8.d: crates/core/../../examples/drift_watch.rs

/root/repo/target/debug/examples/drift_watch-9cc3c74a8f2497e8: crates/core/../../examples/drift_watch.rs

crates/core/../../examples/drift_watch.rs:
