/root/repo/target/debug/examples/quickstart-d96edb94ddcdef7b.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d96edb94ddcdef7b: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
