/root/repo/target/debug/examples/cluster_explorer-7cd820104f49469b.d: crates/core/../../examples/cluster_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libcluster_explorer-7cd820104f49469b.rmeta: crates/core/../../examples/cluster_explorer.rs Cargo.toml

crates/core/../../examples/cluster_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
