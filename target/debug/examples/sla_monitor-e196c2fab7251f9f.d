/root/repo/target/debug/examples/sla_monitor-e196c2fab7251f9f.d: crates/core/../../examples/sla_monitor.rs

/root/repo/target/debug/examples/sla_monitor-e196c2fab7251f9f: crates/core/../../examples/sla_monitor.rs

crates/core/../../examples/sla_monitor.rs:
