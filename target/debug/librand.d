/root/repo/target/debug/librand.rlib: /root/repo/shims/rand/src/lib.rs /root/repo/shims/rand/src/rngs.rs /root/repo/shims/rand/src/seq.rs /root/repo/shims/rand/src/uniform.rs
