#!/usr/bin/env bash
# Repository gate: formatting, lints, and the tier-1 build/test suite.
#
# Usage: scripts/check.sh
#
# Runs, in order:
#   1. cargo fmt --check                        (no formatting drift)
#   2. cargo clippy --workspace -D warnings     (lint-clean, all targets)
#   3. cargo build --release && cargo test -q   (tier-1, serial + 4 threads)
#
# The test suite runs twice — RUNVAR_THREADS=1 and RUNVAR_THREADS=4 — so a
# result that depends on worker-pool width fails the gate.
#
# Fails fast on the first broken gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: RUNVAR_THREADS=1 cargo test -q"
RUNVAR_THREADS=1 cargo test -q

echo "==> tier-1: RUNVAR_THREADS=4 cargo test -q"
RUNVAR_THREADS=4 cargo test -q

echo "All checks passed."
