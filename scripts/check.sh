#!/usr/bin/env bash
# Repository gate: formatting, lints, and the tier-1 build/test suite.
#
# Usage: scripts/check.sh
#
# Runs, in order:
#   1. cargo fmt --check                        (no formatting drift)
#   2. cargo clippy --workspace -D warnings     (lint-clean, all targets)
#   3. cargo build --release && cargo test -q   (tier-1, serial + 4 threads)
#   4. cold-then-warm `runvar run` against a fresh artifact cache: the warm
#      run must be byte-identical on stdout and must actually hit the cache
#      (cold hits == 0, warm hits > 0). Wall-clock for both runs is appended
#      to target/bench/trajectory.json.
#   5. fault audit: `runvar audit` replays the small run under 3 seeded
#      fault schedules (torn writes, corrupted loads, panicking tasks) and
#      must converge to artifacts byte-identical to a fault-free baseline.
#
# The test suite runs twice — RUNVAR_THREADS=1 and RUNVAR_THREADS=4 — so a
# result that depends on worker-pool width fails the gate.
#
# Fails fast on the first broken gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: RUNVAR_THREADS=1 cargo test -q"
RUNVAR_THREADS=1 cargo test -q

echo "==> tier-1: RUNVAR_THREADS=4 cargo test -q"
RUNVAR_THREADS=4 cargo test -q

echo "==> cache gate: cold-then-warm runvar run --scale small"
cache_dir="$(mktemp -d)"
cold_out="$(mktemp)" warm_out="$(mktemp)"
cold_err="$(mktemp)" warm_err="$(mktemp)"
trap 'rm -rf "$cache_dir" "$cold_out" "$warm_out" "$cold_err" "$warm_err"' EXIT

cold_start="$(date +%s.%N)"
target/release/runvar run --scale small --cache-dir "$cache_dir" \
    >"$cold_out" 2>"$cold_err"
cold_end="$(date +%s.%N)"
target/release/runvar run --scale small --cache-dir "$cache_dir" \
    >"$warm_out" 2>"$warm_err"
warm_end="$(date +%s.%N)"

if ! diff -q "$cold_out" "$warm_out" >/dev/null; then
    echo "FAIL: warm cached run diverged from the cold run" >&2
    diff "$cold_out" "$warm_out" | head -20 >&2 || true
    exit 1
fi
cold_hits="$(sed -n 's/^cache: \([0-9][0-9]*\) hits.*/\1/p' "$cold_err")"
warm_hits="$(sed -n 's/^cache: \([0-9][0-9]*\) hits.*/\1/p' "$warm_err")"
if [ -z "$cold_hits" ] || [ -z "$warm_hits" ]; then
    echo "FAIL: missing 'cache: N hits, M misses' line on stderr" >&2
    exit 1
fi
if [ "$cold_hits" -ne 0 ]; then
    echo "FAIL: cold run reported $cold_hits cache hits (expected 0)" >&2
    exit 1
fi
if [ "$warm_hits" -eq 0 ]; then
    echo "FAIL: warm run reported zero cache hits" >&2
    exit 1
fi

mkdir -p target/bench
cold_s="$(awk -v a="$cold_start" -v b="$cold_end" 'BEGIN{printf "%.3f", b - a}')"
warm_s="$(awk -v a="$cold_end" -v b="$warm_end" 'BEGIN{printf "%.3f", b - a}')"
printf '{"ts":%s,"gate":"cache-cold-warm","scale":"small","cold_s":%s,"warm_s":%s,"warm_hits":%s}\n' \
    "$(date +%s)" "$cold_s" "$warm_s" "$warm_hits" >> target/bench/trajectory.json
echo "cache gate: cold ${cold_s}s, warm ${warm_s}s, ${warm_hits} warm hits"

echo "==> fault audit gate: runvar audit --scale small --fault-schedules 3"
audit_dir="$(mktemp -d)"
trap 'rm -rf "$cache_dir" "$cold_out" "$warm_out" "$cold_err" "$warm_err" "$audit_dir"' EXIT
target/release/runvar audit --scale small --fault-schedules 3 --work-dir "$audit_dir"

echo "All checks passed."
