//! Offline stand-in for the Criterion benchmarking API this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small wall-clock benchmark harness that is source-compatible with the
//! Criterion constructs its benches rely on: `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], and [`black_box`].
//!
//! Measurement model: each benchmark is warmed up for ~0.5 s, then timed
//! over adaptively-sized batches for ~2 s; the report prints the mean,
//! min and max per-iteration time plus optional throughput. Passing
//! `--test` (as `cargo test --benches` does) runs each body once.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self {
            test_mode: args.iter().any(|a| a == "--test")
                || std::env::var_os("CRITERION_TEST_MODE").is_some(),
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) CLI configuration, for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Override the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Override the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Accepts (and ignores) a sample-size hint, for API compatibility.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, None, &id.into().0, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with per-iteration work.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepts (and ignores) a sample-size hint, for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Override the group's measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Benchmarks `f` under `id` within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion, self.throughput, &label, &mut f);
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion, self.throughput, &label, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Benchmark identifier (`name/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

/// Work performed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing handle passed to benchmark bodies.
pub struct Bencher {
    mode: BencherMode,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

enum BencherMode {
    /// Run the body once, untimed (`--test`).
    Test,
    /// Calibrate iterations-per-sample against a time budget.
    Calibrate(Duration),
    /// Collect timed samples for the measurement window.
    Measure(Duration),
}

impl Bencher {
    /// Times repeated executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            BencherMode::Test => {
                black_box(f());
            }
            BencherMode::Calibrate(budget) => {
                // Double the batch size until one batch costs >= budget/8;
                // that batch size is reused for every measured sample.
                let mut iters = 1u64;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= budget / 8 || iters >= 1 << 40 {
                        self.iters_per_sample = iters;
                        break;
                    }
                    iters *= 2;
                }
            }
            BencherMode::Measure(budget) => {
                let deadline = Instant::now() + budget;
                loop {
                    let start = Instant::now();
                    for _ in 0..self.iters_per_sample {
                        black_box(f());
                    }
                    self.samples.push(start.elapsed());
                    if Instant::now() >= deadline {
                        break;
                    }
                }
            }
        }
    }
}

fn run_one(
    criterion: &Criterion,
    throughput: Option<Throughput>,
    label: &str,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if criterion.test_mode {
        let mut b = Bencher {
            mode: BencherMode::Test,
            samples: Vec::new(),
            iters_per_sample: 1,
        };
        f(&mut b);
        println!("test {label} ... ok (bench smoke run)");
        return;
    }

    let mut calibrate = Bencher {
        mode: BencherMode::Calibrate(criterion.warm_up),
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut calibrate);

    let mut measure = Bencher {
        mode: BencherMode::Measure(criterion.measurement),
        samples: Vec::new(),
        iters_per_sample: calibrate.iters_per_sample,
    };
    f(&mut measure);

    let iters = measure.iters_per_sample.max(1);
    let per_iter: Vec<f64> = measure
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters as f64)
        .collect();
    if per_iter.is_empty() {
        println!("{label:<50} (no samples — body never called iter)");
        return;
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12}/s", format_count(n as f64 / mean))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10}/s", format_bytes(n as f64 / mean))
        }
        None => String::new(),
    };
    println!(
        "{label:<50} time: [{} {} {}]{extra}  ({} samples x {iters} iters)",
        format_time(min),
        format_time(mean),
        format_time(max),
        per_iter.len(),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

fn format_count(per_s: f64) -> String {
    if per_s >= 1e9 {
        format!("{:.2} Gelem", per_s / 1e9)
    } else if per_s >= 1e6 {
        format!("{:.2} Melem", per_s / 1e6)
    } else if per_s >= 1e3 {
        format!("{:.2} Kelem", per_s / 1e3)
    } else {
        format!("{per_s:.1} elem")
    }
}

fn format_bytes(per_s: f64) -> String {
    if per_s >= 1e9 {
        format!("{:.2} GB", per_s / 1e9)
    } else if per_s >= 1e6 {
        format!("{:.2} MB", per_s / 1e6)
    } else {
        format!("{:.2} KB", per_s / 1e3)
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
