//! Offline stand-in for the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of `rand` it depends on: [`rngs::SmallRng`] (the
//! xoshiro256++ generator, seeded via SplitMix64 exactly like
//! `rand_xoshiro`), the [`Rng`] extension trait with `gen`, `gen_range`
//! and `gen_bool`, [`SeedableRng`], and [`seq::SliceRandom`]. The sampling
//! algorithms mirror rand 0.8.5 (Lemire widening-multiply rejection for
//! integers, the `[1, 2)` mantissa trick for floats) so seeded streams have
//! the same statistical character the rest of the workspace was tuned
//! against.

pub mod rngs;
pub mod seq;

mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// Core generator interface (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Derives a full seed from a `u64` (PCG32-based, like `rand_core`).
    ///
    /// Generators that document their own derivation (e.g. xoshiro's
    /// SplitMix64) override this.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for i32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// User-facing random-value methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        if p == 1.0 {
            return true;
        }
        // rand 0.8's Bernoulli: compare 64 fresh bits against p scaled to
        // the full u64 range.
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn float_ranges_are_bounded_and_spread() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_uniformly() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
        // Inclusive ranges hit both endpoints.
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1_000 {
            match rng.gen_range(1..=3usize) {
                1 => lo = true,
                3 => hi = true,
                2 => {}
                _ => unreachable!("out of range"),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
