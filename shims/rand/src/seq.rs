//! Slice helpers (mirror of `rand::seq::SliceRandom`).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle (identical draw sequence to rand 0.8).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}

/// Uniform index below `ubound`, sampling 32-bit when possible (matches
/// rand 0.8's stream consumption).
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_permutes_deterministically() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        a.shuffle(&mut SmallRng::seed_from_u64(5));
        b.shuffle(&mut SmallRng::seed_from_u64(5));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(a, sorted, "20 elements should not stay sorted");
    }

    #[test]
    fn choose_covers_all_elements() {
        let xs = [1, 2, 3, 4];
        let mut rng = SmallRng::seed_from_u64(8);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*xs.choose(&mut rng).expect("non-empty") - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
