//! Uniform range sampling, mirroring rand 0.8.5's algorithms:
//! widening-multiply rejection (Lemire) for integers and the `[1, 2)`
//! mantissa trick for floats.

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range types accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::sample_single_inclusive(low, high, rng)
    }
}

/// Widening multiply helpers: `(hi, lo)` halves of the double-width product.
trait WideningMul: Copy {
    fn wmul(self, other: Self) -> (Self, Self);
}

impl WideningMul for u32 {
    #[inline]
    fn wmul(self, other: Self) -> (Self, Self) {
        let wide = self as u64 * other as u64;
        ((wide >> 32) as u32, wide as u32)
    }
}

impl WideningMul for u64 {
    #[inline]
    fn wmul(self, other: Self) -> (Self, Self) {
        let wide = self as u128 * other as u128;
        ((wide >> 64) as u64, wide as u64)
    }
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $next:ident) => {
        impl SampleUniform for $ty {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: low >= high");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let range = (high as $unsigned)
                    .wrapping_sub(low as $unsigned)
                    .wrapping_add(1) as $u_large;
                if range == 0 {
                    // The full integer domain: every draw is acceptable.
                    return rng.$next() as $ty;
                }
                // Lemire rejection zone, computed per-call like rand 0.8's
                // `sample_single_inclusive`.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $u_large = rng.$next() as $u_large;
                    let (hi, lo) = v.wmul(range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl! { u8, u8, u32, next_u32 }
uniform_int_impl! { i8, u8, u32, next_u32 }
uniform_int_impl! { u16, u16, u32, next_u32 }
uniform_int_impl! { i16, u16, u32, next_u32 }
uniform_int_impl! { u32, u32, u32, next_u32 }
uniform_int_impl! { i32, u32, u32, next_u32 }
uniform_int_impl! { u64, u64, u64, next_u64 }
uniform_int_impl! { i64, u64, u64, next_u64 }
uniform_int_impl! { usize, usize, u64, next_u64 }
uniform_int_impl! { isize, usize, u64, next_u64 }

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $exponent_bits:expr, $next:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                debug_assert!(
                    low.is_finite() && high.is_finite(),
                    "gen_range: non-finite bound"
                );
                let scale = high - low;
                loop {
                    // Uniform in [1, 2): random mantissa, fixed exponent.
                    let value1_2 =
                        <$ty>::from_bits((rng.$next() >> $bits_to_discard) | $exponent_bits);
                    let res = (value1_2 - 1.0) * scale + low;
                    if res < high {
                        return res;
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                let scale = high - low;
                loop {
                    let value1_2 =
                        <$ty>::from_bits((rng.$next() >> $bits_to_discard) | $exponent_bits);
                    let res = (value1_2 - 1.0) * scale + low;
                    if res <= high {
                        return res;
                    }
                }
            }
        }
    };
}

uniform_float_impl! { f64, u64, 11, 1023u64 << 52, next_u64 }
uniform_float_impl! { f32, u32, 9, 127u32 << 23, next_u32 }
