//! Generator implementations. Only [`SmallRng`] is provided: on 64-bit
//! targets rand 0.8's `SmallRng` is xoshiro256++, reproduced here.

use crate::{RngCore, SeedableRng};

/// Xoshiro256++ — the algorithm behind rand 0.8's 64-bit `SmallRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s.iter().all(|&w| w == 0) {
            // The all-zero state is a fixed point; re-derive like
            // rand_xoshiro does.
            return Self::seed_from_u64(0);
        }
        Self { s }
    }

    /// SplitMix64 seed expansion — the xoshiro authors' (and
    /// `rand_xoshiro`'s) recommended derivation.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}
