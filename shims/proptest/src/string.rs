//! Regex-lite string generation.
//!
//! Supports the pattern shapes this workspace's tests use:
//!
//! * `[chars]{m,n}` — a character class (with `a-z` ranges) repeated;
//! * `\PC{m,n}` — "any printable char" repeated (sampled from ASCII plus a
//!   few multi-byte code points so UTF-8 handling gets exercised);
//! * anything else — emitted literally.

use crate::TestRng;

/// Printable non-ASCII code points mixed into `\PC` draws.
const EXOTIC: &[char] = &['é', 'ß', 'Ж', '中', '日', '→', '√', '🦀', '¤', 'ø'];

/// Generates one string for `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .expect("unterminated character class");
                let class = expand_class(&chars[i + 1..close]);
                let (lo, hi, next) = parse_repeat(&chars, close + 1);
                emit(&class, lo, hi, rng, &mut out);
                i = next;
            }
            '\\' if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') => {
                let mut class: Vec<char> = (' '..='~').collect();
                class.extend_from_slice(EXOTIC);
                let (lo, hi, next) = parse_repeat(&chars, i + 3);
                emit(&class, lo, hi, rng, &mut out);
                i = next;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Expands `a-z0-9_` style class bodies into the concrete character set.
fn expand_class(body: &[char]) -> Vec<char> {
    let mut class = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            let (lo, hi) = (body[j], body[j + 2]);
            for c in lo..=hi {
                class.push(c);
            }
            j += 3;
        } else {
            class.push(body[j]);
            j += 1;
        }
    }
    assert!(!class.is_empty(), "empty character class");
    class
}

/// Parses a trailing `{m,n}` (or `{n}`) starting at `at`; defaults to one
/// repetition when absent. Returns `(lo, hi, next_index)`.
fn parse_repeat(chars: &[char], at: usize) -> (usize, usize, usize) {
    if chars.get(at) != Some(&'{') {
        return (1, 1, at);
    }
    let close = chars[at..]
        .iter()
        .position(|&c| c == '}')
        .map(|p| at + p)
        .expect("unterminated repetition");
    let body: String = chars[at + 1..close].iter().collect();
    let (lo, hi) = match body.split_once(',') {
        Some((a, b)) => (
            a.trim().parse().expect("bad repetition lower bound"),
            b.trim().parse().expect("bad repetition upper bound"),
        ),
        None => {
            let n = body.trim().parse().expect("bad repetition count");
            (n, n)
        }
    };
    (lo, hi, close + 1)
}

fn emit(class: &[char], lo: usize, hi: usize, rng: &mut TestRng, out: &mut String) {
    let len = rng.uniform_usize_inclusive(lo, hi);
    for _ in 0..len {
        out.push(class[rng.uniform_u64(0, class.len() as u64) as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::for_test("class");
        for _ in 0..200 {
            let s = generate("[A-Za-z0-9_ @#./-]{1,40}", &mut rng);
            let n = s.chars().count();
            assert!((1..=40).contains(&n), "len {n}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_ @#./-".contains(c)));
        }
    }

    #[test]
    fn printable_any() {
        let mut rng = TestRng::for_test("pc");
        let mut max_len = 0;
        for _ in 0..200 {
            let s = generate("\\PC{0,400}", &mut rng);
            let n = s.chars().count();
            assert!(n <= 400);
            max_len = max_len.max(n);
            assert!(s.chars().all(|c| !c.is_control()));
        }
        assert!(max_len > 100, "repetitions should spread, max {max_len}");
    }

    #[test]
    fn literal_passthrough() {
        let mut rng = TestRng::for_test("lit");
        assert_eq!(generate("abc", &mut rng), "abc");
    }
}
