//! Test-run configuration (mirror of `proptest::test_runner`).

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Alias matching proptest's non-prelude name.
pub type Config = ProptestConfig;
