//! The [`Strategy`] trait plus combinators (`prop_map`, `vec`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Length specification accepted by [`vec`] (a half-open range, inclusive
/// range, or fixed size).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: r.end().saturating_add(1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// `prop::collection::vec`: a vector whose length is drawn from `size` and
/// whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let hi = self.size.hi.max(self.size.lo + 1);
        let len = rng.uniform_u64(self.size.lo as u64, hi as u64) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
