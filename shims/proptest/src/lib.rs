//! Offline stand-in for the `proptest` API surface this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small property-testing harness that is source-compatible with the
//! constructs its tests rely on: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), [`prop_assert!`] /
//! [`prop_assert_eq!`], range and collection strategies, tuple strategies,
//! `prop_map`, and regex-lite string strategies (`"[abc]{1,40}"`,
//! `"\\PC{0,400}"`).
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed per test (derived from the test name), and failing
//! inputs are reported but **not shrunk**.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::Strategy;

/// `proptest::prelude` equivalent.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// `proptest::prop` namespace equivalent.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Error type carried by `prop_assert!` failures.
pub type TestCaseError = String;

/// One generated test case's verdict.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Deterministic per-test stream: seeded from the test's name so runs
    /// are reproducible without any global state.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    /// Uniform `f64` in `[low, high)`.
    pub fn uniform_f64(&mut self, low: f64, high: f64) -> f64 {
        if low >= high {
            return low;
        }
        self.inner.gen_range(low..high)
    }

    /// Uniform `u64` in `[low, high)`.
    pub fn uniform_u64(&mut self, low: u64, high: u64) -> u64 {
        if low >= high {
            return low;
        }
        self.inner.gen_range(low..high)
    }

    /// Uniform `usize` in `[low, high]`.
    pub fn uniform_usize_inclusive(&mut self, low: usize, high: usize) -> usize {
        if low >= high {
            return low;
        }
        self.inner.gen_range(low..=high)
    }
}

macro_rules! range_strategy {
    ($ty:ty, $via:ident) => {
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.$via(self.start as _, self.end as _) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                if lo >= hi {
                    return lo;
                }
                rng.uniform_usize_inclusive(lo as usize, hi as usize) as $ty
            }
        }
    };
}

range_strategy!(u8, uniform_u64);
range_strategy!(u16, uniform_u64);
range_strategy!(u32, uniform_u64);
range_strategy!(u64, uniform_u64);
range_strategy!(usize, uniform_u64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.uniform_f64(self.start, self.end)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn new_value(&self, rng: &mut TestRng) -> i32 {
        (rng.uniform_u64(0, (self.end - self.start) as u64) as i64 + self.start as i64) as i32
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn new_value(&self, rng: &mut TestRng) -> i64 {
        rng.uniform_u64(0, (self.end - self.start) as u64) as i64 + self.start
    }
}

/// String literals are regex-lite string strategies.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Constant strategy (`Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `proptest!` macro: a deterministic generate-and-check loop.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr;
     $( #[test] fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    let __values = ( $( $crate::Strategy::new_value(&$strat, &mut rng), )+ );
                    // Render inputs up front: the body may consume them.
                    let inputs = format!(
                        concat!(stringify!(($($arg),+)), " = {:?}"),
                        __values,
                    );
                    #[allow(unused_parens, irrefutable_let_patterns)]
                    let ( $( $arg, )+ ) = __values;
                    let verdict: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    if let Err(message) = verdict {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, cfg.cases, message, inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Property assertion: fails the current case (with a message) instead of
/// panicking, mirroring proptest's control flow.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {:?} == {:?}", lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs != rhs, "assertion failed: {:?} != {:?}", lhs, rhs);
    }};
}
