//! Human-readable end-of-run summary rendering.

use crate::metrics::{MetricValue, MetricsRegistry};
use crate::span::SpanRegistry;

/// Renders the end-of-run report: phase wall times from span aggregates,
/// then counters, gauges, and histogram summaries.
pub fn render(spans: &SpanRegistry, metrics: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str("==== run summary ====\n");

    let span_snap = spans.snapshot();
    if !span_snap.is_empty() {
        let total: f64 = span_snap
            .iter()
            .filter(|(name, _)| name.starts_with("phase."))
            .map(|(_, s)| s.total_s)
            .sum();
        out.push_str("\n-- phases (wall time) --\n");
        for (name, stat) in &span_snap {
            let share = if total > 0.0 && name.starts_with("phase.") {
                format!("{:5.1}%", 100.0 * stat.total_s / total)
            } else {
                "     -".to_string()
            };
            out.push_str(&format!(
                "{name:<32} {:>9} {share}  ({} call{}, max {})\n",
                format_secs(stat.total_s),
                stat.calls,
                if stat.calls == 1 { "" } else { "s" },
                format_secs(stat.max_s),
            ));
        }
    }

    let snapshot = metrics.snapshot();
    let counters: Vec<_> = snapshot
        .iter()
        .filter_map(|(n, v)| match v {
            MetricValue::Counter(c) => Some((n.as_str(), *c)),
            _ => None,
        })
        .collect();
    if !counters.is_empty() {
        out.push_str("\n-- counters --\n");
        for (name, value) in counters {
            out.push_str(&format!("{name:<40} {value:>12}\n"));
        }
    }

    let gauges: Vec<_> = snapshot
        .iter()
        .filter_map(|(n, v)| match v {
            MetricValue::Gauge(g) => Some((n.as_str(), *g)),
            _ => None,
        })
        .collect();
    if !gauges.is_empty() {
        out.push_str("\n-- gauges --\n");
        for (name, value) in gauges {
            out.push_str(&format!("{name:<40} {value:>12.4}\n"));
        }
    }

    let histograms: Vec<_> = snapshot
        .iter()
        .filter_map(|(n, v)| match v {
            MetricValue::Histogram {
                count,
                mean,
                p50,
                p95,
                p99,
            } => Some((n.as_str(), *count, *mean, *p50, *p95, *p99)),
            _ => None,
        })
        .collect();
    if !histograms.is_empty() {
        out.push_str("\n-- histograms (log-binned; quantiles approximate) --\n");
        out.push_str(&format!(
            "{:<40} {:>10} {:>11} {:>11} {:>11} {:>11}\n",
            "name", "count", "mean", "p50", "p95", "p99"
        ));
        for (name, count, mean, p50, p95, p99) in histograms {
            out.push_str(&format!(
                "{name:<40} {count:>10} {mean:>11.4} {p50:>11.4} {p95:>11.4} {p99:>11.4}\n"
            ));
        }
    }

    out
}

fn format_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.0} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_sections_render() {
        let spans = SpanRegistry::default();
        spans.record("phase.simulate", 1.25);
        spans.record("phase.train", 0.75);
        let metrics = MetricsRegistry::default();
        metrics.counter("sim.jobs").add(100);
        metrics.gauge("model.accuracy").set(0.97);
        metrics.histogram("sim.queue_wait_s").record(2.0);

        let report = render(&spans, &metrics);
        assert!(report.contains("phase.simulate"));
        assert!(report.contains("62.5%"), "{report}");
        assert!(report.contains("sim.jobs"));
        assert!(report.contains("model.accuracy"));
        assert!(report.contains("sim.queue_wait_s"));
    }
}
