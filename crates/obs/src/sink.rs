//! Trace events and sinks.
//!
//! A sink receives [`Event`]s — small typed key/value records. The
//! [`JsonlSink`] serializes one JSON object per line (std-only writer, no
//! serde); the no-op case is handled upstream by never building the event
//! at all when tracing is off.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// One field value inside an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (serialized as `null` when non-finite).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

macro_rules! field_from {
    ($ty:ty, $variant:ident $(, $cast:ty)?) => {
        impl From<$ty> for FieldValue {
            fn from(v: $ty) -> Self {
                FieldValue::$variant(v $(as $cast)?)
            }
        }
    };
}

field_from!(u64, U64);
field_from!(u32, U64, u64);
field_from!(usize, U64, u64);
field_from!(i64, I64);
field_from!(i32, I64, i64);
field_from!(f64, F64);
field_from!(bool, Bool);
field_from!(String, Str);

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

/// A structured trace record: a type tag, a timestamp, and fields.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event type tag (e.g. `"span"`, `"sim.summary"`).
    pub kind: &'static str,
    /// Milliseconds since trace start (wall clock — *never* sim time; sim
    /// quantities travel as explicit fields).
    pub ts_ms: u64,
    /// Key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 24);
        out.push_str("{\"type\":");
        write_json_str(&mut out, self.kind);
        let _ = write!(out, ",\"ts_ms\":{}", self.ts_ms);
        for (key, value) in &self.fields {
            out.push(',');
            write_json_str(&mut out, key);
            out.push(':');
            match value {
                FieldValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(v) if v.is_finite() => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(_) => out.push_str("null"),
                FieldValue::Bool(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::Str(s) => write_json_str(&mut out, s),
            }
        }
        out.push('}');
        out
    }
}

/// Writes `s` as a JSON string literal (with escaping) onto `out`.
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON-lines file sink.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    /// Appends one event as a JSON line.
    pub fn write(&self, event: &Event) {
        let mut w = self.writer.lock().expect("trace writer poisoned");
        let _ = writeln!(w, "{}", event.to_json());
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&self) {
        let _ = self.writer.lock().expect("trace writer poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_serialization_escapes_and_types() {
        let e = Event {
            kind: "log",
            ts_ms: 12,
            fields: vec![
                ("msg", FieldValue::from("a \"b\"\n\tc\\")),
                ("n", FieldValue::from(3u64)),
                ("neg", FieldValue::from(-4i64)),
                ("x", FieldValue::from(1.5)),
                ("bad", FieldValue::F64(f64::NAN)),
                ("ok", FieldValue::from(true)),
            ],
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"log\",\"ts_ms\":12,\"msg\":\"a \\\"b\\\"\\n\\tc\\\\\",\
             \"n\":3,\"neg\":-4,\"x\":1.5,\"bad\":null,\"ok\":true}"
        );
    }

    #[test]
    fn control_chars_are_escaped() {
        let mut s = String::new();
        write_json_str(&mut s, "a\u{1}b");
        assert_eq!(s, "\"a\\u0001b\"");
    }
}
