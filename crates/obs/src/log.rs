//! Leveled structured logging, filtered by the `RUNVAR_LOG` env var
//! (`error` / `warn` / `info` / `debug`, default `info`).
//!
//! Messages go to stderr; when a trace sink is active each message is also
//! mirrored into the trace as a `log` event.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or surprising failures.
    Error = 0,
    /// Suspicious conditions the run survives.
    Warn = 1,
    /// Progress milestones (default).
    Info = 2,
    /// High-volume diagnostic detail.
    Debug = 3,
}

impl Level {
    /// Display tag.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    /// Parses `error|warn|info|debug` (case-insensitive); also accepts
    /// `off`/`none` as "errors only".
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "off" | "none" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// 255 = "not yet resolved from the environment".
static MAX_LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);

fn resolve_level() -> u8 {
    let level = std::env::var("RUNVAR_LOG")
        .ok()
        .and_then(|s| Level::parse(&s))
        .unwrap_or(Level::Info) as u8;
    MAX_LEVEL.store(level, Ordering::Relaxed);
    level
}

/// The current maximum level that will be printed.
pub fn max_level() -> Level {
    let raw = MAX_LEVEL.load(Ordering::Relaxed);
    let raw = if raw == u8::MAX { resolve_level() } else { raw };
    match raw {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Overrides the level filter (e.g. from a CLI flag).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether `level` currently passes the filter.
pub fn level_enabled(level: Level) -> bool {
    level <= max_level()
}

/// Logs a message (used via the [`crate::error!`] / [`crate::warn!`] /
/// [`crate::info!`] / [`crate::debug!`] macros).
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if !level_enabled(level) {
        return;
    }
    let message = args.to_string();
    eprintln!("[{:<5} {target}] {message}", level.as_str());
    crate::mirror_log_to_trace(level, target, &message);
}

/// Logs at error level.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Error, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at warn level.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Warn, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at info level.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Info, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at debug level.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Debug, module_path!(), format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn set_level_filters() {
        set_max_level(Level::Warn);
        assert!(level_enabled(Level::Error));
        assert!(level_enabled(Level::Warn));
        assert!(!level_enabled(Level::Info));
        set_max_level(Level::Debug);
        assert!(level_enabled(Level::Debug));
    }
}
