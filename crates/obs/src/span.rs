//! RAII span timers with nesting.
//!
//! A [`SpanGuard`] measures monotonic wall-clock time from construction to
//! drop and folds the duration into per-span aggregate stats; when a trace
//! sink is active it also emits a `span` event on close. Nesting is tracked
//! per thread: each guard knows its depth and its parent's name.
//!
//! Span durations are *wall-clock observations about the pipeline* — they
//! are never fed back into simulated results, so instrumented runs stay
//! bit-identical to uninstrumented ones.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Number of completed spans.
    pub calls: u64,
    /// Total time across calls, seconds.
    pub total_s: f64,
    /// Longest single call, seconds.
    pub max_s: f64,
}

/// Aggregated span timings, keyed by span name.
#[derive(Default)]
pub struct SpanRegistry {
    stats: Mutex<BTreeMap<&'static str, SpanStat>>,
}

impl SpanRegistry {
    /// Folds one completed span into the aggregate.
    pub fn record(&self, name: &'static str, seconds: f64) {
        let mut map = self.stats.lock().expect("span registry poisoned");
        let stat = map.entry(name).or_default();
        stat.calls += 1;
        stat.total_s += seconds;
        stat.max_s = stat.max_s.max(seconds);
    }

    /// Snapshot of all spans in name order.
    pub fn snapshot(&self) -> Vec<(&'static str, SpanStat)> {
        self.stats
            .lock()
            .expect("span registry poisoned")
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Clears all aggregates.
    pub fn reset(&self) {
        self.stats.lock().expect("span registry poisoned").clear();
    }
}

/// Where a completed span reports to.
pub(crate) type SpanCloseHook =
    fn(name: &'static str, parent: Option<&'static str>, depth: usize, seconds: f64);

/// An open span; closing (dropping) it records the elapsed time.
pub struct SpanGuard {
    name: &'static str,
    parent: Option<&'static str>,
    depth: usize,
    start: Instant,
    on_close: SpanCloseHook,
}

impl SpanGuard {
    /// Opens a span named `name`; `on_close` receives the measurement.
    pub(crate) fn open(name: &'static str, on_close: SpanCloseHook) -> Self {
        let (parent, depth) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            let depth = stack.len();
            stack.push(name);
            (parent, depth)
        });
        Self {
            name,
            parent,
            depth,
            start: Instant::now(),
            on_close,
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The enclosing span's name, if nested.
    pub fn parent(&self) -> Option<&'static str> {
        self.parent
    }

    /// Nesting depth (0 = top level) at open time.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let seconds = self.start.elapsed().as_secs_f64();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards normally drop LIFO; tolerate out-of-order drops by
            // removing this span's deepest occurrence.
            if let Some(pos) = stack.iter().rposition(|&n| n == self.name) {
                stack.remove(pos);
            }
        });
        (self.on_close)(self.name, self.parent, self.depth, seconds);
    }
}

/// Current nesting depth on this thread (0 outside all spans).
pub fn current_depth() -> usize {
    SPAN_STACK.with(|stack| stack.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop_hook(_: &'static str, _: Option<&'static str>, _: usize, _: f64) {}

    #[test]
    fn nesting_tracks_depth_and_parent() {
        assert_eq!(current_depth(), 0);
        let outer = SpanGuard::open("outer", noop_hook);
        assert_eq!(outer.depth(), 0);
        assert_eq!(outer.parent(), None);
        {
            let inner = SpanGuard::open("inner", noop_hook);
            assert_eq!(inner.depth(), 1);
            assert_eq!(inner.parent(), Some("outer"));
            assert_eq!(current_depth(), 2);
            let innermost = SpanGuard::open("innermost", noop_hook);
            assert_eq!(innermost.parent(), Some("inner"));
            assert_eq!(innermost.depth(), 2);
        }
        assert_eq!(current_depth(), 1);
        drop(outer);
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn registry_aggregates_calls() {
        let reg = SpanRegistry::default();
        reg.record("phase", 0.5);
        reg.record("phase", 1.5);
        reg.record("other", 0.25);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        let phase = snap.iter().find(|(n, _)| *n == "phase").expect("phase");
        assert_eq!(phase.1.calls, 2);
        assert!((phase.1.total_s - 2.0).abs() < 1e-12);
        assert!((phase.1.max_s - 1.5).abs() < 1e-12);
        reg.reset();
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn sibling_spans_reuse_depth() {
        let _outer = SpanGuard::open("a", noop_hook);
        {
            let first = SpanGuard::open("b", noop_hook);
            assert_eq!(first.depth(), 1);
        }
        {
            let second = SpanGuard::open("c", noop_hook);
            assert_eq!(second.depth(), 1);
            assert_eq!(second.parent(), Some("a"));
        }
    }
}
