//! # rv-obs — observability for the runtime-variation stack
//!
//! Std-only (no external dependencies) tracing, metrics, and reporting:
//!
//! * **Spans** ([`span`]): RAII wall-clock timers with per-thread nesting,
//!   aggregated per name and (optionally) emitted as trace events;
//! * **Metrics** ([`metrics`]): counters, gauges, and log-binned histograms
//!   behind a global registry with lock-free atomic cells;
//! * **Sinks** ([`sink`]): a JSON-lines trace file, or nothing — when
//!   observability is disabled every instrumentation call is a single
//!   relaxed atomic load;
//! * **Logging** ([`log`]): leveled stderr logging filtered by the
//!   `RUNVAR_LOG` env var, mirrored into the trace when one is active.
//!
//! ## Determinism contract
//!
//! Instrumentation *observes* the pipeline and never feeds back into it:
//! simulator metrics record **virtual sim-time** quantities (queue waits,
//! grants, preemptions) taken from simulation results, while span timings
//! are wall-clock and live only in the observability layer. Two same-seed
//! runs therefore produce bit-identical simulated results *and* identical
//! counter values, instrumented or not.
//!
//! ## Usage
//!
//! ```
//! rv_obs::init(rv_obs::ObsConfig::default()).expect("obs init");
//! {
//!     let _guard = rv_obs::span("phase.demo");
//!     rv_obs::counter("demo.events").inc();
//!     rv_obs::histogram("demo.latency_s").record(0.25);
//! }
//! let report = rv_obs::render_summary();
//! assert!(report.contains("phase.demo"));
//! rv_obs::disable();
//! ```

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod log;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod span;

pub use crate::log::{level_enabled, log, max_level, set_max_level, Level};
pub use crate::metrics::{Counter, Gauge, Histogram, MetricValue, MetricsRegistry};
pub use crate::sink::{Event, FieldValue, JsonlSink};
pub use crate::span::{current_depth, SpanGuard, SpanStat};

/// Configuration for [`init`].
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Write a JSON-lines trace to this path.
    pub trace_path: Option<PathBuf>,
    /// Override the `RUNVAR_LOG` level filter.
    pub log_level: Option<Level>,
}

struct Hub {
    enabled: AtomicBool,
    trace_on: AtomicBool,
    trace: Mutex<Option<JsonlSink>>,
    epoch: Mutex<Option<Instant>>,
    metrics: MetricsRegistry,
    spans: span::SpanRegistry,
}

fn hub() -> &'static Hub {
    static HUB: OnceLock<Hub> = OnceLock::new();
    HUB.get_or_init(|| Hub {
        enabled: AtomicBool::new(false),
        trace_on: AtomicBool::new(false),
        trace: Mutex::new(None),
        epoch: Mutex::new(None),
        metrics: MetricsRegistry::default(),
        spans: span::SpanRegistry::default(),
    })
}

/// Enables observability: metrics + span aggregation, and (optionally) a
/// JSON-lines trace sink. Idempotent; re-initializing replaces the sink.
pub fn init(config: ObsConfig) -> std::io::Result<()> {
    let h = hub();
    if let Some(level) = config.log_level {
        set_max_level(level);
    }
    let sink = match &config.trace_path {
        Some(path) => Some(JsonlSink::create(path)?),
        None => None,
    };
    {
        let mut epoch = h.epoch.lock().expect("obs epoch poisoned");
        if epoch.is_none() {
            *epoch = Some(Instant::now());
        }
    }
    let trace_on = sink.is_some();
    *h.trace.lock().expect("obs trace poisoned") = sink;
    h.trace_on.store(trace_on, Ordering::Relaxed);
    h.enabled.store(true, Ordering::Release);
    if trace_on {
        emit("trace.start", &[("version", FieldValue::from(1u64))]);
    }
    Ok(())
}

/// Disables all instrumentation (flushes and closes any trace sink).
/// Metric values are retained until [`reset_metrics`].
pub fn disable() {
    let h = hub();
    h.enabled.store(false, Ordering::Release);
    h.trace_on.store(false, Ordering::Relaxed);
    *h.trace.lock().expect("obs trace poisoned") = None;
}

/// Whether instrumentation is active. Instrumented hot paths gate on this:
/// when false, the call site costs one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    hub().enabled.load(Ordering::Acquire)
}

/// Whether a trace sink is attached (events will actually be written).
#[inline]
pub fn trace_enabled() -> bool {
    let h = hub();
    h.enabled.load(Ordering::Acquire) && h.trace_on.load(Ordering::Relaxed)
}

/// Milliseconds of wall clock since observability was first initialized.
fn ts_ms() -> u64 {
    hub()
        .epoch
        .lock()
        .expect("obs epoch poisoned")
        .map(|e| e.elapsed().as_millis() as u64)
        .unwrap_or(0)
}

/// Global counter handle (created on first use).
pub fn counter(name: &str) -> Counter {
    hub().metrics.counter(name)
}

/// Global gauge handle (created on first use).
pub fn gauge(name: &str) -> Gauge {
    hub().metrics.gauge(name)
}

/// Global histogram handle (created on first use).
pub fn histogram(name: &str) -> Histogram {
    hub().metrics.histogram(name)
}

/// Zeroes every global metric and span aggregate in place.
pub fn reset_metrics() {
    let h = hub();
    h.metrics.reset();
    h.spans.reset();
}

/// Sorted snapshot of every global metric.
pub fn metrics_snapshot() -> Vec<(String, MetricValue)> {
    hub().metrics.snapshot()
}

/// Sorted `(name, value)` snapshot of every global counter whose name
/// starts with `prefix`. The fault-injection layer uses this to report
/// `fault.*` and `retry.*` activity without enumerating counter names.
pub fn counters_with_prefix(prefix: &str) -> Vec<(String, u64)> {
    metrics_snapshot()
        .into_iter()
        .filter_map(|(name, value)| match value {
            MetricValue::Counter(c) if name.starts_with(prefix) => Some((name, c)),
            _ => None,
        })
        .collect()
}

/// Snapshot of aggregated span timings.
pub fn span_snapshot() -> Vec<(&'static str, SpanStat)> {
    hub().spans.snapshot()
}

/// Renders the human-readable end-of-run summary.
pub fn render_summary() -> String {
    let h = hub();
    report::render(&h.spans, &h.metrics)
}

fn span_close_hook(name: &'static str, parent: Option<&'static str>, depth: usize, seconds: f64) {
    if !enabled() {
        return;
    }
    let h = hub();
    h.spans.record(name, seconds);
    if trace_enabled() {
        let mut fields = vec![
            ("name", FieldValue::from(name)),
            ("depth", FieldValue::from(depth)),
            ("dur_ms", FieldValue::from(seconds * 1e3)),
        ];
        if let Some(p) = parent {
            fields.push(("parent", FieldValue::from(p)));
        }
        emit("span", &fields);
    }
}

/// Opens a named RAII span; dropping the guard records its duration.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::open(name, span_close_hook)
}

/// Folds a manually measured duration into the span aggregates, for
/// timings that do not wrap a lexical scope (worker-pool busy/idle times,
/// durations reconstructed after a join). No trace event is emitted.
pub fn record_span_seconds(name: &'static str, seconds: f64) {
    if !enabled() {
        return;
    }
    hub().spans.record(name, seconds);
}

/// Emits a trace event (no-op without an attached sink).
pub fn emit(kind: &'static str, fields: &[(&'static str, FieldValue)]) {
    if !trace_enabled() {
        return;
    }
    let event = Event {
        kind,
        ts_ms: ts_ms(),
        fields: fields.to_vec(),
    };
    if let Some(sink) = &*hub().trace.lock().expect("obs trace poisoned") {
        sink.write(&event);
    }
}

/// Flushes the trace sink (if any) to disk.
pub fn flush() {
    if let Some(sink) = &*hub().trace.lock().expect("obs trace poisoned") {
        sink.flush();
    }
}

pub(crate) fn mirror_log_to_trace(level: Level, target: &str, message: &str) {
    if !trace_enabled() {
        return;
    }
    emit(
        "log",
        &[
            ("level", FieldValue::from(level.as_str())),
            ("target", FieldValue::from(target)),
            ("message", FieldValue::from(message)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global hub is process-wide shared state; the tests below touch
    // disjoint metric names and tolerate concurrent enable/disable by other
    // tests in this binary.

    #[test]
    fn disabled_by_default_costs_nothing() {
        // Never initialized in this test: counters still work as plain
        // cells, spans record only when enabled.
        let c = counter("lib.test.disabled");
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn record_span_seconds_folds_into_aggregates() {
        init(ObsConfig::default()).expect("init");
        record_span_seconds("phase.manual_record", 0.25);
        let snap = span_snapshot();
        let stat = snap
            .iter()
            .find(|(name, _)| *name == "phase.manual_record")
            .map(|(_, stat)| stat)
            .expect("manually recorded span present");
        assert!(stat.calls >= 1);
        assert!(stat.total_s >= 0.25);
    }

    #[test]
    fn counters_with_prefix_filters_and_sorts() {
        counter("prefixtest.a").add(2);
        counter("prefixtest.b").inc();
        counter("otherprefix.c").inc();
        let got = counters_with_prefix("prefixtest.");
        let names: Vec<&str> = got.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["prefixtest.a", "prefixtest.b"]);
        assert!(got[0].1 >= 2);
    }

    #[test]
    fn init_enables_and_summary_renders() {
        init(ObsConfig::default()).expect("init");
        assert!(enabled());
        {
            let _g = span("phase.lib_test");
            counter("lib.test.init").inc();
        }
        let report = render_summary();
        assert!(report.contains("lib.test.init"), "{report}");
        assert!(report.contains("phase.lib_test"), "{report}");
    }
}
