//! Metrics: counters, gauges, and log-binned histograms behind a registry.
//!
//! All metric cells are lock-free atomics shared via `Arc`, so handles can
//! be cached by instrumented code while `reset` zeroes values in place
//! (handles never dangle across resets — important for same-seed
//! determinism tests that compare two instrumented runs).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic event counter.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins instantaneous value.
#[derive(Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// Geometry of a [`Histogram`]: logarithmic bins with `SUB_BINS` bins per
/// octave (factor-of-two range) spanning `2^MIN_EXP ..= 2^MAX_EXP`.
///
/// Values at or below zero land in a dedicated underflow bin; values beyond
/// the top edge land in an overflow bin — `record` never drops a sample.
pub mod geometry {
    /// Smallest resolvable exponent: values below `2^MIN_EXP` underflow.
    pub const MIN_EXP: i32 = -20;
    /// Largest resolvable exponent: values at or above `2^MAX_EXP` overflow.
    pub const MAX_EXP: i32 = 40;
    /// Log-bins per octave.
    pub const SUB_BINS: usize = 4;
    /// Number of regular (non-under/overflow) bins.
    pub const N_BINS: usize = ((MAX_EXP - MIN_EXP) as usize) * SUB_BINS;

    /// Regular-bin index for a strictly positive, in-range value.
    ///
    /// Returns `None` for values that belong in the underflow or overflow
    /// bins (non-positive, non-finite, or out of range).
    pub fn bin_index(v: f64) -> Option<usize> {
        if !(v.is_finite() && v > 0.0) {
            return None;
        }
        let pos = (v.log2() - MIN_EXP as f64) * SUB_BINS as f64;
        if pos < 0.0 {
            return None;
        }
        let idx = pos.floor() as usize;
        // log2 rounding can land exactly on the upper edge; clamp inward so
        // `bin_lower(idx) <= v < bin_upper(idx)` holds for in-range values.
        let idx = idx.min(N_BINS.saturating_sub(1));
        if v >= bin_upper(idx) {
            return if idx + 1 < N_BINS {
                Some(idx + 1)
            } else {
                None
            };
        }
        if v < bin_lower(idx) {
            return Some(idx.saturating_sub(1));
        }
        Some(idx)
    }

    /// Inclusive lower edge of regular bin `idx`.
    pub fn bin_lower(idx: usize) -> f64 {
        2f64.powf(MIN_EXP as f64 + idx as f64 / SUB_BINS as f64)
    }

    /// Exclusive upper edge of regular bin `idx`.
    pub fn bin_upper(idx: usize) -> f64 {
        bin_lower(idx + 1)
    }

    /// Representative value of a bin (geometric midpoint).
    pub fn bin_mid(idx: usize) -> f64 {
        (bin_lower(idx) * bin_upper(idx)).sqrt()
    }
}

/// Lock-free log-binned histogram of positive values.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramCells>,
}

/// Fixed-point resolution of the histogram running sum: values are
/// accumulated in units of `2^-20` (~1e-6).
const SUM_FP_SCALE: f64 = (1u64 << 20) as f64;

/// A sample in fixed-point sum units. Non-finite samples contribute 0 to
/// the sum (they are still counted, in the under/overflow bins); huge
/// finite samples saturate the cast, which is fine for a diagnostic mean.
fn sum_fp_units(v: f64) -> i64 {
    if v.is_finite() {
        (v * SUM_FP_SCALE).round() as i64
    } else {
        0
    }
}

struct HistogramCells {
    bins: Vec<AtomicU64>,
    underflow: AtomicU64,
    overflow: AtomicU64,
    count: AtomicU64,
    /// Running sum in fixed-point units of `2^-20`, stored as a
    /// two's-complement `i64` in a `u64` cell. Wrapping integer adds
    /// commute exactly, so concurrent recorders (e.g. rv-par workers)
    /// produce bit-identical totals under any interleaving — float
    /// accumulation would depend on arrival order.
    sum_fp: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            inner: Arc::new(HistogramCells {
                bins: (0..geometry::N_BINS).map(|_| AtomicU64::new(0)).collect(),
                underflow: AtomicU64::new(0),
                overflow: AtomicU64::new(0),
                count: AtomicU64::new(0),
                sum_fp: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: f64) {
        let cells = &*self.inner;
        match geometry::bin_index(v) {
            Some(idx) => cells.bins[idx].fetch_add(1, Ordering::Relaxed),
            None if v > 0.0 && v >= geometry::bin_lower(geometry::N_BINS) => {
                cells.overflow.fetch_add(1, Ordering::Relaxed)
            }
            None => cells.underflow.fetch_add(1, Ordering::Relaxed),
        };
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells
            .sum_fp
            .fetch_add(sum_fp_units(v) as u64, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            let sum_fp = self.inner.sum_fp.load(Ordering::Relaxed) as i64;
            sum_fp as f64 / SUM_FP_SCALE / n as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]` from the bin structure
    /// (geometric bin midpoints; 0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        let cells = &*self.inner;
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = cells.underflow.load(Ordering::Relaxed);
        if seen >= target {
            return 0.0;
        }
        for (idx, bin) in cells.bins.iter().enumerate() {
            seen += bin.load(Ordering::Relaxed);
            if seen >= target {
                return geometry::bin_mid(idx);
            }
        }
        geometry::bin_lower(geometry::N_BINS)
    }

    /// Non-empty `(bin_lower, bin_upper, count)` triples, in order.
    pub fn nonzero_bins(&self) -> Vec<(f64, f64, u64)> {
        let mut out = Vec::new();
        let cells = &*self.inner;
        let under = cells.underflow.load(Ordering::Relaxed);
        if under > 0 {
            out.push((0.0, geometry::bin_lower(0), under));
        }
        for (idx, bin) in cells.bins.iter().enumerate() {
            let c = bin.load(Ordering::Relaxed);
            if c > 0 {
                out.push((geometry::bin_lower(idx), geometry::bin_upper(idx), c));
            }
        }
        let over = cells.overflow.load(Ordering::Relaxed);
        if over > 0 {
            out.push((geometry::bin_lower(geometry::N_BINS), f64::INFINITY, over));
        }
        out
    }

    fn reset(&self) {
        let cells = &*self.inner;
        for bin in &cells.bins {
            bin.store(0, Ordering::Relaxed);
        }
        cells.underflow.store(0, Ordering::Relaxed);
        cells.overflow.store(0, Ordering::Relaxed);
        cells.count.store(0, Ordering::Relaxed);
        cells.sum_fp.store(0, Ordering::Relaxed);
    }
}

/// A named collection of metrics.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// Point-in-time value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary: `(count, mean, p50, p95, p99)`.
    Histogram {
        /// Observation count.
        count: u64,
        /// Arithmetic mean.
        mean: f64,
        /// Median (approximate, from bins).
        p50: f64,
        /// 95th percentile (approximate).
        p95: f64,
        /// 99th percentile (approximate).
        p99: f64,
    },
}

impl MetricsRegistry {
    /// Returns (creating on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        map.insert(name.to_string(), c.clone());
        c
    }

    /// Returns (creating on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        if let Some(g) = map.get(name) {
            return g.clone();
        }
        let g = Gauge::default();
        map.insert(name.to_string(), g.clone());
        g
    }

    /// Returns (creating on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Histogram::default();
        map.insert(name.to_string(), h.clone());
        h
    }

    /// Zeroes every metric in place (existing handles stay valid).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .values()
        {
            c.reset();
        }
        for g in self
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .values()
        {
            g.reset();
        }
        for h in self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .values()
        {
            h.reset();
        }
    }

    /// Sorted `(name, value)` snapshot of every registered metric.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let mut out = Vec::new();
        for (name, c) in self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
        {
            out.push((name.clone(), MetricValue::Counter(c.get())));
        }
        for (name, g) in self.gauges.lock().expect("gauge registry poisoned").iter() {
            out.push((name.clone(), MetricValue::Gauge(g.get())));
        }
        for (name, h) in self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
        {
            out.push((
                name.clone(),
                MetricValue::Histogram {
                    count: h.count(),
                    mean: h.mean(),
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    p99: h.quantile(0.99),
                },
            ));
        }
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        out
    }

    /// Histogram handles by name (for report rendering).
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        self.histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = MetricsRegistry::default();
        let c = reg.counter("a");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("a").get(), 5);
        let g = reg.gauge("b");
        g.set(2.5);
        assert_eq!(reg.gauge("b").get(), 2.5);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn bin_edges_are_contiguous_and_monotone() {
        for idx in 0..geometry::N_BINS {
            let lo = geometry::bin_lower(idx);
            let hi = geometry::bin_upper(idx);
            assert!(lo < hi, "bin {idx}: {lo} >= {hi}");
            assert!(
                (hi / lo - 2f64.powf(1.0 / geometry::SUB_BINS as f64)).abs() < 1e-9,
                "bin {idx} ratio off"
            );
            if idx + 1 < geometry::N_BINS {
                assert_eq!(hi.to_bits(), geometry::bin_lower(idx + 1).to_bits());
            }
        }
    }

    #[test]
    fn bin_index_brackets_its_value() {
        // Sweep many magnitudes; every in-range value must land in a bin
        // whose edges bracket it.
        let mut v = 1.1e-6;
        while v < 9e11 {
            let idx = geometry::bin_index(v).unwrap_or_else(|| panic!("{v} out of range"));
            assert!(
                geometry::bin_lower(idx) <= v && v < geometry::bin_upper(idx),
                "v {v} not in bin {idx} [{}, {})",
                geometry::bin_lower(idx),
                geometry::bin_upper(idx)
            );
            v *= 1.37;
        }
    }

    #[test]
    fn bin_index_rejects_out_of_domain() {
        assert_eq!(geometry::bin_index(0.0), None);
        assert_eq!(geometry::bin_index(-1.0), None);
        assert_eq!(geometry::bin_index(f64::NAN), None);
        assert_eq!(geometry::bin_index(f64::INFINITY), None);
        assert_eq!(
            geometry::bin_index(2f64.powi(geometry::MIN_EXP) / 2.0),
            None
        );
        assert_eq!(
            geometry::bin_index(2f64.powi(geometry::MAX_EXP) * 2.0),
            None
        );
    }

    #[test]
    fn histogram_conserves_count_and_tracks_quantiles() {
        let h = Histogram::default();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let mean = h.mean();
        assert!((400.0..600.0).contains(&mean), "mean {mean}");
        h.record(0.0); // underflow
        h.record(1e13); // overflow
        assert_eq!(h.count(), 1002);
        let total: u64 = h.nonzero_bins().iter().map(|&(_, _, c)| c).sum();
        assert_eq!(total, 1002);
        let p50 = h.quantile(0.5);
        assert!((400.0..700.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 > p50);
    }

    #[test]
    fn histogram_sum_handles_negative_and_non_finite() {
        let h = Histogram::default();
        for v in [1.5, -2.25, f64::NAN, f64::INFINITY] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        // Negative values subtract from the sum; non-finite ones contribute 0.
        let expected = (1.5 - 2.25) / 4.0;
        assert!((h.mean() - expected).abs() < 1e-5, "mean {}", h.mean());
    }

    #[test]
    fn histogram_mean_is_bit_identical_across_recording_orders() {
        let serial = Histogram::default();
        for i in 1..=1000u32 {
            serial.record(f64::from(i) * 0.1);
        }
        // Same multiset of samples recorded concurrently, interleaved by the
        // scheduler: the fixed-point sum must still land on the same bits.
        let threaded = Histogram::default();
        std::thread::scope(|scope| {
            for t in 1..=4u32 {
                let h = threaded.clone();
                scope.spawn(move || {
                    let mut i = t;
                    while i <= 1000 {
                        h.record(f64::from(i) * 0.1);
                        i += 4;
                    }
                });
            }
        });
        assert_eq!(serial.count(), threaded.count());
        assert_eq!(serial.mean().to_bits(), threaded.mean().to_bits());
    }

    #[test]
    fn histogram_reset_keeps_handles_valid() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("x");
        h.record(3.0);
        reg.reset();
        assert_eq!(h.count(), 0);
        h.record(5.0);
        assert_eq!(reg.histogram("x").count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::default();
        reg.counter("z").inc();
        reg.counter("a").inc();
        reg.histogram("m").record(1.0);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }
}
