//! Property-based tests for the statistics substrate.

use proptest::prelude::*;

use rv_stats::{
    ks_distance, normalize, quantile, smooth_pmf, BinSpec, Histogram, Normalization,
    SmoothingKernel, Summary,
};

fn finite_samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, 1..max_len)
}

proptest! {
    #[test]
    fn histogram_conserves_count(samples in finite_samples(300)) {
        let spec = BinSpec::new(-1e6, 1e6, 64);
        let h = Histogram::from_samples(spec, samples.iter().copied());
        prop_assert_eq!(h.total(), samples.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), samples.len() as u64);
    }

    #[test]
    fn pmf_is_a_distribution(samples in finite_samples(300)) {
        let spec = BinSpec::new(-1e6, 1e6, 64);
        let pmf = Histogram::from_samples(spec, samples.iter().copied()).to_pmf();
        let total: f64 = pmf.probs().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(pmf.probs().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn bin_index_is_monotone(a in -1e6..1e6f64, b in -1e6..1e6f64) {
        let spec = BinSpec::ratio();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(spec.bin_index(lo) <= spec.bin_index(hi));
    }

    #[test]
    fn smoothing_conserves_mass(
        samples in finite_samples(200),
        sigma in 0.5..4.0f64,
    ) {
        let spec = BinSpec::new(-1e6, 1e6, 64);
        let pmf = Histogram::from_samples(spec, samples.iter().copied()).to_pmf();
        let s = smooth_pmf(&pmf, SmoothingKernel::Gaussian { sigma_bins: sigma });
        let total: f64 = s.probs().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(samples in finite_samples(200)) {
        let q25 = quantile(&samples, 0.25).unwrap();
        let q50 = quantile(&samples, 0.50).unwrap();
        let q95 = quantile(&samples, 0.95).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q95);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q25 >= min && q95 <= max);
    }

    #[test]
    fn ks_is_a_bounded_symmetric_distance(
        a in finite_samples(100),
        b in finite_samples(100),
    ) {
        let d_ab = ks_distance(&a, &b).unwrap();
        let d_ba = ks_distance(&b, &a).unwrap();
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert!(ks_distance(&a, &a).unwrap() < 1e-12);
    }

    #[test]
    fn normalization_round_trips(runtime in 0.001..1e5f64, median in 0.001..1e5f64) {
        let r = normalize(Normalization::Ratio, runtime, median);
        prop_assert!((r * median - runtime).abs() < 1e-6 * runtime.max(1.0));
        let d = normalize(Normalization::Delta, runtime, median);
        prop_assert!((d + median - runtime).abs() < 1e-9 * runtime.max(1.0));
    }

    #[test]
    fn summary_orders_its_quantiles(samples in finite_samples(200)) {
        let s = Summary::compute(&samples).unwrap();
        prop_assert!(s.min <= s.p25);
        prop_assert!(s.p25 <= s.median && s.median <= s.p75 && s.p75 <= s.p95);
        prop_assert!(s.p95 <= s.max);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
    }
}
