//! Fixed-bin histograms and empirical probability mass functions (PMFs).
//!
//! The paper (§4.2) represents every job group's normalized-runtime
//! distribution as a histogram with a fixed bin specification shared across
//! all groups, so that histograms are directly comparable as vectors:
//!
//! * the *interior* range is divided into `n_bins` equal-width bins;
//! * values below the lower edge are absorbed into the first bin and values
//!   above the upper edge into the last bin (footnote 3: outliers are merged
//!   into one bin "based on being ≤ or ≥ some thresholds").
//!
//! The paper uses 200 bins, range `\[0, 10\]` for Ratio-normalization and
//! `[-900, 900]` seconds for Delta-normalization.

/// Bin layout shared by all histograms that should be comparable as vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinSpec {
    /// Lower edge of the interior range (values `< lo` fall into bin 0).
    pub lo: f64,
    /// Upper edge of the interior range (values `>= hi` fall into the last bin).
    pub hi: f64,
    /// Number of bins covering `[lo, hi)`; must be at least 2.
    pub n_bins: usize,
}

impl BinSpec {
    /// Creates a new bin specification.
    ///
    /// # Panics
    /// Panics if `lo >= hi`, if `n_bins < 2`, or if either edge is not finite.
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bin edges must be finite");
        assert!(lo < hi, "lower edge must be below upper edge");
        assert!(n_bins >= 2, "need at least 2 bins");
        Self { lo, hi, n_bins }
    }

    /// The paper's Ratio-normalization spec: 200 bins over `\[0, 10\]`,
    /// with ≥10× jobs merged into the top (outlier) bin.
    pub fn ratio() -> Self {
        Self::new(0.0, 10.0, 200)
    }

    /// The paper's Delta-normalization spec: 200 bins over `[-900, 900]`
    /// seconds, with jobs ≥900 s slower than median merged into the top bin.
    pub fn delta() -> Self {
        Self::new(-900.0, 900.0, 200)
    }

    /// Width of one interior bin.
    #[inline]
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.n_bins as f64
    }

    /// Maps a value to its bin index, clamping out-of-range values into the
    /// edge (outlier) bins. This is the `h(x_n)` function of §5.2.
    ///
    /// Non-finite values (NaN, ±inf) are clamped to the nearest edge bin;
    /// NaN goes to the top bin since it most often arises from runaway
    /// ratios.
    #[inline]
    pub fn bin_index(&self, value: f64) -> usize {
        if value.is_nan() {
            return self.n_bins - 1;
        }
        if value < self.lo {
            return 0;
        }
        if value >= self.hi {
            return self.n_bins - 1;
        }
        let idx = ((value - self.lo) / self.bin_width()) as usize;
        idx.min(self.n_bins - 1)
    }

    /// Midpoint of bin `idx`, used for reconstructing representative values
    /// when sampling from a PMF.
    #[inline]
    pub fn bin_center(&self, idx: usize) -> f64 {
        self.lo + (idx as f64 + 0.5) * self.bin_width()
    }

    /// Lower edge of bin `idx`.
    #[inline]
    pub fn bin_lo(&self, idx: usize) -> f64 {
        self.lo + idx as f64 * self.bin_width()
    }
}

/// A histogram of counts over a [`BinSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    spec: BinSpec,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram over `spec`.
    pub fn new(spec: BinSpec) -> Self {
        Self {
            counts: vec![0; spec.n_bins],
            spec,
            total: 0,
        }
    }

    /// Builds a histogram from an iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(spec: BinSpec, samples: I) -> Self {
        let mut h = Self::new(spec);
        for s in samples {
            h.add(s);
        }
        h
    }

    /// Adds one observation.
    #[inline]
    pub fn add(&mut self, value: f64) {
        self.counts[self.spec.bin_index(value)] += 1;
        self.total += 1;
    }

    /// The bin specification.
    pub fn spec(&self) -> BinSpec {
        self.spec
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in the top (≥ threshold) outlier bin.
    pub fn upper_outlier_count(&self) -> u64 {
        *self.counts.last().expect("histogram has at least 2 bins")
    }

    /// Converts to an empirical PMF. An empty histogram yields the uniform
    /// PMF (a non-informative default, matching the paper's non-informative
    /// prior assumption).
    pub fn to_pmf(&self) -> Pmf {
        let n = self.counts.len();
        let probs = if self.total == 0 {
            vec![1.0 / n as f64; n]
        } else {
            self.counts
                .iter()
                .map(|&c| c as f64 / self.total as f64)
                .collect()
        };
        Pmf {
            spec: self.spec,
            probs,
        }
    }
}

/// A probability mass function over a [`BinSpec`]; probabilities sum to 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Pmf {
    spec: BinSpec,
    probs: Vec<f64>,
}

impl Pmf {
    /// Creates a PMF from raw weights, normalizing them to sum to 1.
    ///
    /// # Panics
    /// Panics if `weights.len() != spec.n_bins`, if any weight is negative or
    /// non-finite, or if all weights are zero.
    pub fn from_weights(spec: BinSpec, weights: &[f64]) -> Self {
        assert_eq!(weights.len(), spec.n_bins, "weight/bin count mismatch");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let sum: f64 = weights.iter().sum();
        assert!(sum > 0.0, "weights must not all be zero");
        Self {
            spec,
            probs: weights.iter().map(|w| w / sum).collect(),
        }
    }

    /// Creates a PMF from probabilities that are already normalized, storing
    /// them bit-for-bit (no renormalization). This is the deserialization
    /// counterpart of [`Pmf::probs`]: persisting the probabilities and
    /// reading them back through here round-trips the PMF exactly, which
    /// [`Pmf::from_weights`] cannot guarantee (its `w / sum` division can
    /// perturb the last bit when the stored sum is not exactly 1).
    ///
    /// # Panics
    /// Panics if `probs.len() != spec.n_bins`, if any probability is negative
    /// or non-finite, or if the total mass is not within `1e-6` of 1.
    pub fn from_probs(spec: BinSpec, probs: Vec<f64>) -> Self {
        assert_eq!(probs.len(), spec.n_bins, "prob/bin count mismatch");
        assert!(
            probs.iter().all(|p| p.is_finite() && *p >= 0.0),
            "probabilities must be finite and non-negative"
        );
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "probabilities must sum to 1");
        Self { spec, probs }
    }

    /// The bin specification.
    pub fn spec(&self) -> BinSpec {
        self.spec
    }

    /// Per-bin probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Probability of the bin containing `value`.
    #[inline]
    pub fn prob_of(&self, value: f64) -> f64 {
        self.probs[self.spec.bin_index(value)]
    }

    /// Probability mass in the top outlier bin (e.g. ≥10× slower than the
    /// median for Ratio-normalization) — the paper's "outlier probability".
    pub fn upper_outlier_prob(&self) -> f64 {
        *self.probs.last().expect("pmf has at least 2 bins")
    }

    /// Probability mass in the bottom edge bin.
    pub fn lower_edge_prob(&self) -> f64 {
        self.probs[0]
    }

    /// Approximate quantile `q ∈ \[0, 1\]` of the distribution, computed from
    /// the cumulative mass and reported at bin centers.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let mut cum = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            cum += p;
            if cum >= q - 1e-12 {
                return self.spec.bin_center(i);
            }
        }
        self.spec.bin_center(self.spec.n_bins - 1)
    }

    /// Mean of the distribution using bin centers.
    pub fn mean(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| p * self.spec.bin_center(i))
            .sum()
    }

    /// Standard deviation of the distribution using bin centers.
    pub fn std_dev(&self) -> f64 {
        let m = self.mean();
        let var: f64 = self
            .probs
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let d = self.spec.bin_center(i) - m;
                p * d * d
            })
            .sum();
        var.sqrt()
    }

    /// Log-probabilities with an `epsilon` floor so that empty bins do not
    /// produce `-inf` (used by the posterior-likelihood assignment, Eq. 9).
    pub fn log_probs(&self, epsilon: f64) -> Vec<f64> {
        assert!(epsilon > 0.0, "epsilon must be positive");
        self.probs.iter().map(|&p| p.max(epsilon).ln()).collect()
    }

    /// Elementwise mixture of two PMFs over the same spec:
    /// `(1 - w) * self + w * other`.
    ///
    /// # Panics
    /// Panics if the specs differ or `w` is outside `\[0, 1\]`.
    pub fn mix(&self, other: &Pmf, w: f64) -> Pmf {
        assert_eq!(self.spec, other.spec, "PMF specs must match");
        assert!((0.0..=1.0).contains(&w), "mixture weight must be in [0, 1]");
        let probs = self
            .probs
            .iter()
            .zip(&other.probs)
            .map(|(&a, &b)| (1.0 - w) * a + w * b)
            .collect();
        Pmf {
            spec: self.spec,
            probs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_index_interior() {
        let spec = BinSpec::new(0.0, 10.0, 10);
        assert_eq!(spec.bin_index(0.0), 0);
        assert_eq!(spec.bin_index(0.99), 0);
        assert_eq!(spec.bin_index(1.0), 1);
        assert_eq!(spec.bin_index(9.99), 9);
    }

    #[test]
    fn bin_index_outliers_clamped() {
        let spec = BinSpec::new(0.0, 10.0, 10);
        assert_eq!(spec.bin_index(-5.0), 0);
        assert_eq!(spec.bin_index(10.0), 9);
        assert_eq!(spec.bin_index(1e9), 9);
        assert_eq!(spec.bin_index(f64::INFINITY), 9);
        assert_eq!(spec.bin_index(f64::NEG_INFINITY), 0);
        assert_eq!(spec.bin_index(f64::NAN), 9);
    }

    #[test]
    fn paper_specs() {
        let r = BinSpec::ratio();
        assert_eq!(r.n_bins, 200);
        assert_eq!(r.lo, 0.0);
        assert_eq!(r.hi, 10.0);
        let d = BinSpec::delta();
        assert_eq!(d.n_bins, 200);
        assert_eq!(d.lo, -900.0);
        assert_eq!(d.hi, 900.0);
        // A job exactly at the median lands mid-range for Delta.
        assert_eq!(d.bin_index(0.0), 100);
    }

    #[test]
    fn bin_center_round_trips() {
        let spec = BinSpec::new(-900.0, 900.0, 200);
        for i in 0..200 {
            assert_eq!(spec.bin_index(spec.bin_center(i)), i);
        }
    }

    #[test]
    fn histogram_counts_and_total() {
        let spec = BinSpec::new(0.0, 10.0, 10);
        let h = Histogram::from_samples(spec, vec![0.5, 0.6, 5.5, 42.0]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.upper_outlier_count(), 1);
    }

    #[test]
    fn pmf_sums_to_one() {
        let spec = BinSpec::new(0.0, 10.0, 10);
        let h = Histogram::from_samples(spec, (0..100).map(|i| i as f64 / 10.0));
        let pmf = h.to_pmf();
        let sum: f64 = pmf.probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_yields_uniform_pmf() {
        let spec = BinSpec::new(0.0, 10.0, 4);
        let pmf = Histogram::new(spec).to_pmf();
        for &p in pmf.probs() {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_quantile_monotone() {
        let spec = BinSpec::new(0.0, 10.0, 100);
        let h = Histogram::from_samples(spec, (0..1000).map(|i| i as f64 / 100.0));
        let pmf = h.to_pmf();
        let q25 = pmf.quantile(0.25);
        let q50 = pmf.quantile(0.5);
        let q95 = pmf.quantile(0.95);
        assert!(q25 <= q50 && q50 <= q95);
        assert!((q50 - 5.0).abs() < 0.2);
    }

    #[test]
    fn pmf_mean_std_of_point_mass() {
        let spec = BinSpec::new(0.0, 10.0, 10);
        let h = Histogram::from_samples(spec, vec![5.2; 50]);
        let pmf = h.to_pmf();
        assert!((pmf.mean() - 5.5).abs() < 1e-9); // bin center of bin 5
        assert!(pmf.std_dev() < 1e-9);
    }

    #[test]
    fn log_probs_floored() {
        let spec = BinSpec::new(0.0, 10.0, 4);
        let pmf = Pmf::from_weights(spec, &[1.0, 0.0, 0.0, 1.0]);
        let lp = pmf.log_probs(1e-9);
        assert!(lp.iter().all(|v| v.is_finite()));
        assert!((lp[0] - (0.5f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn mix_is_convex_combination() {
        let spec = BinSpec::new(0.0, 10.0, 2);
        let a = Pmf::from_weights(spec, &[1.0, 0.0]);
        let b = Pmf::from_weights(spec, &[0.0, 1.0]);
        let m = a.mix(&b, 0.25);
        assert!((m.probs()[0] - 0.75).abs() < 1e-12);
        assert!((m.probs()[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lower edge must be below upper edge")]
    fn bad_spec_panics() {
        BinSpec::new(1.0, 1.0, 10);
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn zero_weights_panic() {
        Pmf::from_weights(BinSpec::new(0.0, 1.0, 2), &[0.0, 0.0]);
    }

    #[test]
    fn outlier_prob_reported() {
        let spec = BinSpec::ratio();
        // 2 of 100 samples are ≥10x the median.
        let mut vals = vec![1.0; 98];
        vals.push(12.0);
        vals.push(30.0);
        let pmf = Histogram::from_samples(spec, vals).to_pmf();
        assert!((pmf.upper_outlier_prob() - 0.02).abs() < 1e-12);
    }
}
