//! Higher distribution moments: skewness and excess kurtosis.
//!
//! Runtime distributions are right-skewed and heavy-tailed (§4.1); skewness
//! and kurtosis quantify exactly those properties and extend the Table 2
//! shape statistics beyond the quantile summaries.

use crate::summary::{mean, std_dev};

/// Sample skewness (adjusted Fisher–Pearson, the same estimator as pandas):
/// `g1 * sqrt(n(n-1)) / (n-2)`. Returns `None` for fewer than 3 samples or
/// zero variance.
pub fn skewness(samples: &[f64]) -> Option<f64> {
    let n = samples.len();
    if n < 3 {
        return None;
    }
    let m = mean(samples);
    let s = std_dev(samples);
    if s == 0.0 {
        return None;
    }
    let nf = n as f64;
    let m3 = samples.iter().map(|&x| (x - m).powi(3)).sum::<f64>() / nf;
    // std_dev is Bessel-corrected; convert to the population std for g1.
    let pop_var = samples.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / nf;
    let g1 = m3 / pop_var.powf(1.5);
    Some(g1 * (nf * (nf - 1.0)).sqrt() / (nf - 2.0))
}

/// Sample excess kurtosis (`g2 = m4 / m2² - 3`, population form). Returns
/// `None` for fewer than 4 samples or zero variance.
pub fn excess_kurtosis(samples: &[f64]) -> Option<f64> {
    let n = samples.len();
    if n < 4 {
        return None;
    }
    let m = mean(samples);
    let nf = n as f64;
    let m2 = samples.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / nf;
    if m2 == 0.0 {
        return None;
    }
    let m4 = samples.iter().map(|&x| (x - m).powi(4)).sum::<f64>() / nf;
    Some(m4 / (m2 * m2) - 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_data_has_zero_skew() {
        let v: Vec<f64> = (-50..=50).map(|i| i as f64).collect();
        assert!(skewness(&v).expect("enough samples").abs() < 1e-9);
    }

    #[test]
    fn right_tail_is_positive_skew() {
        let mut v = vec![1.0; 95];
        v.extend(vec![100.0; 5]);
        assert!(skewness(&v).expect("enough samples") > 1.0);
    }

    #[test]
    fn left_tail_is_negative_skew() {
        let mut v = vec![100.0; 95];
        v.extend(vec![1.0; 5]);
        assert!(skewness(&v).expect("enough samples") < -1.0);
    }

    #[test]
    fn uniform_kurtosis_is_negative() {
        // Continuous uniform has excess kurtosis -1.2.
        let v: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let k = excess_kurtosis(&v).expect("enough samples");
        assert!((k + 1.2).abs() < 0.05, "kurtosis {k}");
    }

    #[test]
    fn heavy_tail_kurtosis_is_large() {
        let mut v = vec![0.0; 999];
        v.push(1000.0);
        assert!(excess_kurtosis(&v).expect("enough samples") > 100.0);
    }

    #[test]
    fn degenerate_cases() {
        assert!(skewness(&[1.0, 2.0]).is_none());
        assert!(skewness(&[5.0; 10]).is_none());
        assert!(excess_kurtosis(&[1.0, 2.0, 3.0]).is_none());
        assert!(excess_kurtosis(&[5.0; 10]).is_none());
    }
}
