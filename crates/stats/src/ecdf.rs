//! Empirical cumulative distribution functions.
//!
//! Complements the PMF machinery: exact tail probabilities
//! (`P(runtime > SLO)`) and the first-Wasserstein ("earth mover's")
//! distance between two runtime samples, an alternative distribution
//! distance to the Kolmogorov–Smirnov statistic of Fig 8.

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF, ignoring non-finite samples. Returns `None` when no
    /// finite samples remain.
    pub fn new(samples: &[f64]) -> Option<Self> {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.total_cmp(b));
        Some(Self { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF holds no samples (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x) = P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Exceedance probability `P(X > x)` — the SLO-breach risk.
    pub fn exceedance(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// `q`-quantile via the inverse CDF (lower value of the step).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }
}

/// First Wasserstein (earth mover's) distance between two samples: the area
/// between their quantile functions, computed exactly on the merged grid.
///
/// Returns `None` if either side has no finite samples.
pub fn wasserstein_distance(a: &[f64], b: &[f64]) -> Option<f64> {
    let ea = Ecdf::new(a)?;
    let eb = Ecdf::new(b)?;
    // Merge all sample points; between consecutive points both CDFs are
    // constant, so the integral is a sum of |Fa - Fb| * width terms.
    let mut grid: Vec<f64> = ea.samples().iter().chain(eb.samples()).copied().collect();
    grid.sort_by(|x, y| x.total_cmp(y));
    grid.dedup();
    let mut total = 0.0;
    for w in grid.windows(2) {
        let width = w[1] - w[0];
        total += (ea.cdf(w[0]) - eb.cdf(w[0])).abs() * width;
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_steps_correctly() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).expect("non-empty");
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(100.0), 1.0);
    }

    #[test]
    fn exceedance_complements_cdf() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0]).expect("non-empty");
        assert!((e.exceedance(15.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.exceedance(30.0), 0.0);
    }

    #[test]
    fn quantiles_hit_order_statistics() {
        let e = Ecdf::new(&[5.0, 1.0, 3.0]).expect("non-empty");
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.34), 3.0);
        assert_eq!(e.quantile(1.0), 5.0);
    }

    #[test]
    fn rejects_empty() {
        assert!(Ecdf::new(&[]).is_none());
        assert!(Ecdf::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn wasserstein_of_identical_is_zero() {
        let a = [1.0, 2.0, 3.0];
        assert!(wasserstein_distance(&a, &a).expect("finite") < 1e-12);
    }

    #[test]
    fn wasserstein_of_shift_equals_shift() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 7.5).collect();
        let d = wasserstein_distance(&a, &b).expect("finite");
        assert!((d - 7.5).abs() < 1e-9, "distance {d}");
    }

    #[test]
    fn wasserstein_is_symmetric() {
        let a = [1.0, 5.0, 9.0];
        let b = [2.0, 2.5, 30.0];
        let d1 = wasserstein_distance(&a, &b).expect("finite");
        let d2 = wasserstein_distance(&b, &a).expect("finite");
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn wasserstein_sees_tails_ks_compresses() {
        // Same 5% of mass moved, but much farther: KS is identical while
        // Wasserstein grows — the reason it complements KS for tail work.
        let base: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut near = base.clone();
        let mut far = base.clone();
        for v in near.iter_mut().skip(95) {
            *v += 50.0;
        }
        for v in far.iter_mut().skip(95) {
            *v += 5000.0;
        }
        let d_near = wasserstein_distance(&base, &near).expect("finite");
        let d_far = wasserstein_distance(&base, &far).expect("finite");
        assert!(d_far > 10.0 * d_near);
    }
}
