//! Empirical quantiles over raw samples.
//!
//! Uses the common linear-interpolation definition (type 7 in the Hyndman–Fan
//! taxonomy, the default of R and NumPy): for `n` sorted samples the quantile
//! `q` sits at rank `q * (n - 1)` with linear interpolation between the two
//! neighbouring order statistics.

/// Returns the `q`-quantile (`q ∈ \[0, 1\]`) of `samples`.
///
/// Non-finite samples are ignored. Returns `None` when no finite samples
/// remain.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
    let mut v: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    Some(quantile_sorted(&v, q))
}

/// Quantile of already-sorted, finite samples. `O(1)`.
///
/// # Panics
/// Panics if `samples` is empty.
pub fn quantile_sorted(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "need at least one sample");
    assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
    let n = samples.len();
    if n == 1 {
        return samples[0];
    }
    let rank = q * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    samples[lo] + (samples[hi] - samples[lo]) * frac
}

/// Returns several quantiles in one sort.
pub fn quantiles(samples: &[f64], qs: &[f64]) -> Option<Vec<f64>> {
    let mut v: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    Some(qs.iter().map(|&q| quantile_sorted(&v, q)).collect())
}

/// Median (0.5-quantile) of `samples`; `None` if no finite samples.
pub fn median(samples: &[f64]) -> Option<f64> {
    quantile(samples, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn extremes() {
        let v = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
    }

    #[test]
    fn interpolation() {
        let v = [0.0, 10.0];
        assert_eq!(quantile(&v, 0.25), Some(2.5));
        assert_eq!(quantile(&v, 0.75), Some(7.5));
    }

    #[test]
    fn ignores_non_finite() {
        let v = [f64::NAN, 1.0, f64::INFINITY, 3.0];
        assert_eq!(median(&v), Some(2.0));
        assert_eq!(median(&[f64::NAN]), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn multi_quantiles_consistent() {
        let v: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let qs = quantiles(&v, &[0.25, 0.5, 0.95]).unwrap();
        assert_eq!(qs, vec![25.0, 50.0, 95.0]);
    }

    #[test]
    fn single_sample() {
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "q must be in [0, 1]")]
    fn out_of_range_q() {
        quantile(&[1.0], 1.5);
    }
}
