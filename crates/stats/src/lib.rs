//! # rv-stats — statistics toolkit for runtime-variation analysis
//!
//! Foundational, dependency-free statistics used throughout the `runvar`
//! workspace:
//!
//! * [`histogram`] — fixed-bin histograms / empirical PMFs with
//!   outlier-absorbing edge bins, exactly as specified in §4.2 of the paper
//!   (200 interior bins; Ratio range `\[0, 10\]`; Delta range `[-900 s, 900 s]`).
//! * [`mod@normalize`] — the paper's two runtime normalizations
//!   (Definition 4.1): *Ratio* (`runtime / historic median`) and *Delta*
//!   (`runtime - historic median`).
//! * [`smooth`] — kernel smoothing of PMFs so that adjacent-bin correlation
//!   is respected by vector-space clustering (§4.2, "Smoothing histograms").
//! * [`mod@quantile`] — empirical quantiles over unsorted samples.
//! * [`summary`] — mean / variance / standard deviation / median /
//!   coefficient of variation (COV).
//! * [`distance`] — L2 / dot-product affinities, Kolmogorov–Smirnov distance,
//!   mean absolute error.
//! * [`qq`] — quantile–quantile comparison of two samples (Fig 8).
//! * [`ecdf`] — empirical CDFs, exceedance probabilities, and the
//!   Wasserstein distance (a tail-sensitive complement to KS).
//! * [`moments`] — skewness and excess kurtosis for tail/asymmetry
//!   characterization beyond Table 2's quantile statistics.
//!
//! All routines are deterministic and operate on `f64` slices; none of them
//! allocate beyond their output buffers.

pub mod distance;
pub mod ecdf;
pub mod histogram;
pub mod moments;
pub mod normalize;
pub mod qq;
pub mod quantile;
pub mod smooth;
pub mod summary;

pub use distance::{dot, ks_distance, l2_distance, mae};
pub use ecdf::{wasserstein_distance, Ecdf};
pub use histogram::{BinSpec, Histogram, Pmf};
pub use moments::{excess_kurtosis, skewness};
pub use normalize::{normalize, normalize_all, Normalization};
pub use qq::{qq_mae, qq_points, qq_tail_mae};
pub use quantile::{median, quantile, quantiles};
pub use smooth::{smooth_pmf, SmoothingKernel};
pub use summary::{coefficient_of_variation, mean, std_dev, Summary};
