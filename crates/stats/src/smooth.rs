//! PMF smoothing (§4.2, "Smoothing histograms").
//!
//! Standard clustering treats each histogram bin as an independent dimension,
//! but adjacent bins of a runtime PMF are correlated: a distribution peaking
//! in bin 4 and one peaking in bin 5 are *similar*, yet their dot product is
//! zero. The paper inserts a smoothing step after deriving the PMFs so that
//! such neighbouring vectors gain affinity. We implement this as discrete
//! kernel convolution with renormalization (mass is conserved; edge bins use
//! truncated, renormalized kernels so no probability leaks off the ends).

use crate::histogram::Pmf;

/// Smoothing kernels for PMF convolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SmoothingKernel {
    /// No smoothing — identity transform (the ablation baseline).
    None,
    /// Moving average over `2 * radius + 1` bins.
    Box {
        /// Number of neighbour bins on each side to average over.
        radius: usize,
    },
    /// Discrete Gaussian with the given standard deviation measured in bins,
    /// truncated at `ceil(3 * sigma_bins)`.
    Gaussian {
        /// Kernel standard deviation in units of bins. Must be positive.
        sigma_bins: f64,
    },
}

impl SmoothingKernel {
    /// Kernel weights, centred, summing to 1. `None` yields `[1.0]`.
    fn weights(self) -> Vec<f64> {
        match self {
            SmoothingKernel::None => vec![1.0],
            SmoothingKernel::Box { radius } => {
                let n = 2 * radius + 1;
                vec![1.0 / n as f64; n]
            }
            SmoothingKernel::Gaussian { sigma_bins } => {
                assert!(
                    sigma_bins > 0.0 && sigma_bins.is_finite(),
                    "sigma_bins must be positive and finite"
                );
                let radius = (3.0 * sigma_bins).ceil() as i64;
                let mut w: Vec<f64> = (-radius..=radius)
                    .map(|k| (-0.5 * (k as f64 / sigma_bins).powi(2)).exp())
                    .collect();
                let sum: f64 = w.iter().sum();
                for v in &mut w {
                    *v /= sum;
                }
                w
            }
        }
    }
}

/// Convolves `pmf` with `kernel`, truncating and renormalizing at the edges
/// so the result is again a valid PMF over the same [`crate::BinSpec`].
pub fn smooth_pmf(pmf: &Pmf, kernel: SmoothingKernel) -> Pmf {
    let w = kernel.weights();
    if w.len() == 1 {
        return pmf.clone();
    }
    let radius = (w.len() - 1) / 2;
    let probs = pmf.probs();
    let n = probs.len();
    let mut out = vec![0.0; n];
    // Distribute each bin's mass over its neighbourhood; weights falling off
    // either end are folded back by renormalizing the in-range portion, which
    // keeps total mass exactly 1 and avoids biasing edge bins downwards.
    for (i, &p) in probs.iter().enumerate() {
        if p == 0.0 {
            continue;
        }
        let lo = i.saturating_sub(radius);
        let hi = (i + radius).min(n - 1);
        let in_range: f64 = (lo..=hi).map(|j| w[j + radius - i]).sum();
        for j in lo..=hi {
            out[j] += p * w[j + radius - i] / in_range;
        }
    }
    Pmf::from_weights(pmf.spec(), &out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::{BinSpec, Histogram};

    fn point_mass(bin: usize) -> Pmf {
        let spec = BinSpec::new(0.0, 10.0, 10);
        let mut w = vec![0.0; 10];
        w[bin] = 1.0;
        Pmf::from_weights(spec, &w)
    }

    #[test]
    fn none_is_identity() {
        let pmf = point_mass(3);
        let s = smooth_pmf(&pmf, SmoothingKernel::None);
        assert_eq!(s, pmf);
    }

    #[test]
    fn box_spreads_mass() {
        let s = smooth_pmf(&point_mass(5), SmoothingKernel::Box { radius: 1 });
        assert!((s.probs()[4] - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.probs()[5] - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.probs()[6] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mass_conserved_at_edges() {
        for kernel in [
            SmoothingKernel::Box { radius: 2 },
            SmoothingKernel::Gaussian { sigma_bins: 1.5 },
        ] {
            for bin in [0, 1, 8, 9] {
                let s = smooth_pmf(&point_mass(bin), kernel);
                let sum: f64 = s.probs().iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "mass lost at bin {bin}");
            }
        }
    }

    #[test]
    fn gaussian_is_symmetric_and_peaked() {
        let s = smooth_pmf(
            &point_mass(5),
            SmoothingKernel::Gaussian { sigma_bins: 1.0 },
        );
        assert!((s.probs()[4] - s.probs()[6]).abs() < 1e-12);
        assert!(s.probs()[5] > s.probs()[4]);
        assert!(s.probs()[4] > s.probs()[3]);
    }

    #[test]
    fn smoothing_raises_neighbor_affinity() {
        // The motivating example from the paper: point masses in adjacent
        // bins have zero dot product before smoothing, positive after.
        let a = point_mass(4);
        let b = point_mass(5);
        let raw: f64 = a.probs().iter().zip(b.probs()).map(|(x, y)| x * y).sum();
        assert_eq!(raw, 0.0);
        let k = SmoothingKernel::Gaussian { sigma_bins: 1.0 };
        let sa = smooth_pmf(&a, k);
        let sb = smooth_pmf(&b, k);
        let sm: f64 = sa.probs().iter().zip(sb.probs()).map(|(x, y)| x * y).sum();
        assert!(sm > 0.0);
    }

    #[test]
    fn smooth_real_histogram() {
        let spec = BinSpec::ratio();
        let h = Histogram::from_samples(spec, (0..500).map(|i| 0.8 + (i % 40) as f64 * 0.01));
        let pmf = h.to_pmf();
        let s = smooth_pmf(&pmf, SmoothingKernel::Gaussian { sigma_bins: 2.0 });
        let sum: f64 = s.probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Smoothing should not move the bulk of the mass.
        assert!((s.mean() - pmf.mean()).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "sigma_bins must be positive")]
    fn bad_sigma_panics() {
        smooth_pmf(
            &point_mass(0),
            SmoothingKernel::Gaussian { sigma_bins: 0.0 },
        );
    }
}
