//! Scalar summary statistics, including the Coefficient of Variation (COV)
//! whose shortcomings §4.1 of the paper demonstrates.

use crate::quantile::quantile_sorted;

/// Mean of `samples`; 0.0 for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Sample standard deviation (Bessel-corrected, `n - 1` denominator);
/// 0.0 for fewer than two samples.
pub fn std_dev(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(samples);
    let ss: f64 = samples.iter().map(|&x| (x - m) * (x - m)).sum();
    (ss / (n - 1) as f64).sqrt()
}

/// Coefficient of Variation: `std_dev / mean` (unitless).
///
/// Returns `None` when the mean is zero (COV undefined). Note the paper's
/// critique (§4.1): COV is biased for short-running jobs, unstable under
/// outliers, and too coarse to describe distribution shape — it is provided
/// here as the *baseline* scalar metric.
pub fn coefficient_of_variation(samples: &[f64]) -> Option<f64> {
    let m = mean(samples);
    if m == 0.0 {
        None
    } else {
        Some(std_dev(samples) / m)
    }
}

/// A one-pass-friendly bundle of summary statistics over a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of finite samples summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (p50).
    pub median: f64,
    /// 25th percentile.
    pub p25: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Computes a summary over `samples`, ignoring non-finite values.
    /// Returns `None` if no finite samples remain.
    pub fn compute(samples: &[f64]) -> Option<Summary> {
        let mut v: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.total_cmp(b));
        Some(Summary {
            count: v.len(),
            mean: mean(&v),
            std_dev: std_dev(&v),
            min: v[0],
            max: *v.last().expect("non-empty"),
            median: quantile_sorted(&v, 0.5),
            p25: quantile_sorted(&v, 0.25),
            p75: quantile_sorted(&v, 0.75),
            p95: quantile_sorted(&v, 0.95),
        })
    }

    /// Interquartile range `p75 - p25` — the paper's primary dispersion
    /// measure for ranking clusters in Table 2.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }

    /// COV of the summarized samples, `None` if the mean is zero.
    pub fn cov(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.std_dev / self.mean)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_known_values() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        // Sample std with n-1: sqrt(32/7)
        assert!((std_dev(&v) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cov_undefined_for_zero_mean() {
        assert_eq!(coefficient_of_variation(&[-1.0, 1.0]), None);
        assert!(coefficient_of_variation(&[1.0, 3.0]).is_some());
    }

    #[test]
    fn cov_bias_for_short_jobs() {
        // The paper's bias argument: the same ±1 s jitter yields a much
        // larger COV for a 5 s job than for a 500 s job.
        let short = [4.0, 5.0, 6.0];
        let long = [499.0, 500.0, 501.0];
        let c_short = coefficient_of_variation(&short).unwrap();
        let c_long = coefficient_of_variation(&long).unwrap();
        assert!(c_short > 50.0 * c_long);
    }

    #[test]
    fn cov_instability_under_outliers() {
        // Adding one outlier swings the COV dramatically (§4.1 instability).
        let base: Vec<f64> = vec![100.0; 50];
        let mut with_outlier = base.clone();
        with_outlier.push(5000.0);
        let c0 = coefficient_of_variation(&base).unwrap();
        let c1 = coefficient_of_variation(&with_outlier).unwrap();
        assert!(c0 < 1e-9);
        assert!(c1 > 1.0);
    }

    #[test]
    fn summary_fields() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::compute(&v).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.median - 50.5).abs() < 1e-9);
        assert!((s.p25 - 25.75).abs() < 1e-9);
        assert!((s.p75 - 75.25).abs() < 1e-9);
        assert!((s.iqr() - 49.5).abs() < 1e-9);
        assert!(s.p95 > s.p75);
    }

    #[test]
    fn summary_empty_and_nan() {
        assert!(Summary::compute(&[]).is_none());
        assert!(Summary::compute(&[f64::NAN]).is_none());
        let s = Summary::compute(&[f64::NAN, 2.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn nan_samples_do_not_poison_summary() {
        let clean = Summary::compute(&[1.0, 4.0, 2.0, 3.0]).unwrap();
        let noisy = Summary::compute(&[
            f64::NAN,
            1.0,
            4.0,
            f64::INFINITY,
            2.0,
            f64::NEG_INFINITY,
            3.0,
            f64::NAN,
        ])
        .unwrap();
        assert_eq!(clean, noisy, "non-finite samples must be invisible");
        assert!(noisy.iqr().is_finite());
    }

    #[test]
    fn empty_mean_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }
}
