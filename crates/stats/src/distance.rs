//! Distances and affinities between vectors and samples.
//!
//! Includes the Kolmogorov–Smirnov distance that Fig 8 of the paper uses to
//! compare predicted and actual runtime distributions, plus the vector
//! distances that back the clustering analysis.

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean (L2) distance between two equal-length vectors.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Squared Euclidean distance (avoids the sqrt in hot clustering loops).
#[inline]
pub fn l2_distance_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Mean absolute error between paired values.
///
/// # Panics
/// Panics if the lengths differ or are zero.
pub fn mae(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    assert!(!a.is_empty(), "need at least one pair");
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Two-sample Kolmogorov–Smirnov distance: the supremum of the absolute
/// difference between the two empirical CDFs.
///
/// Non-finite samples are ignored. Returns `None` if either side has no
/// finite samples.
pub fn ks_distance(a: &[f64], b: &[f64]) -> Option<f64> {
    let mut xa: Vec<f64> = a.iter().copied().filter(|v| v.is_finite()).collect();
    let mut xb: Vec<f64> = b.iter().copied().filter(|v| v.is_finite()).collect();
    if xa.is_empty() || xb.is_empty() {
        return None;
    }
    xa.sort_by(|x, y| x.total_cmp(y));
    xb.sort_by(|x, y| x.total_cmp(y));
    let (na, nb) = (xa.len() as f64, xb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < xa.len() && j < xb.len() {
        let x = xa[i].min(xb[j]);
        while i < xa.len() && xa[i] <= x {
            i += 1;
        }
        while j < xb.len() && xb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    Some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_l2() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert!((l2_distance(&a, &b) - 27.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(l2_distance_sq(&a, &b), 27.0);
    }

    #[test]
    fn mae_known() {
        assert!((mae(&[1.0, 2.0], &[2.0, 0.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ks_identical_is_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!(ks_distance(&a, &a).unwrap() < 1e-12);
    }

    #[test]
    fn ks_disjoint_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        assert!((ks_distance(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_known_value() {
        // a: mass at {0,1}; b: mass at {0.5, 1}. CDF gap is 0.5 on [0, 0.5).
        let a = [0.0, 1.0];
        let b = [0.5, 1.0];
        assert!((ks_distance(&a, &b).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_symmetry() {
        let a = [1.0, 5.0, 9.0, 2.0];
        let b = [3.0, 3.5, 8.0];
        let d1 = ks_distance(&a, &b).unwrap();
        let d2 = ks_distance(&b, &a).unwrap();
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn ks_empty_sides() {
        assert_eq!(ks_distance(&[], &[1.0]), None);
        assert_eq!(ks_distance(&[1.0], &[f64::NAN]), None);
    }

    #[test]
    fn ks_shift_detects_tail() {
        // Same bulk, one sample has a heavy tail: KS sees a moderate gap.
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut b = a.clone();
        for v in b.iter_mut().skip(90) {
            *v *= 10.0;
        }
        let d = ks_distance(&a, &b).unwrap();
        assert!(d > 0.05 && d < 0.2);
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn mismatched_lengths_panic() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn ks_ignores_non_finite_samples() {
        let clean = [1.0, 2.0, 3.0, 4.0];
        let noisy = [
            1.0,
            f64::NAN,
            2.0,
            3.0,
            f64::INFINITY,
            4.0,
            f64::NEG_INFINITY,
        ];
        let d = ks_distance(&clean, &noisy).expect("finite values remain");
        assert!(d.abs() < 1e-12, "identical finite parts, got {d}");
        assert!(ks_distance(&[f64::NAN], &clean).is_none());
    }
}
