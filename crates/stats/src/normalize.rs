//! Runtime normalization (Definition 4.1 of the paper).
//!
//! Runtimes of a recurring job are normalized against the job group's
//! *historic median* so that distributions of different job groups become
//! comparable:
//!
//! * **Ratio-normalization** — `runtime / median`: relative change, unitless.
//!   Good for lumping together comparable shapes across runtime ranges, but
//!   exaggerates variation for very short jobs and compresses it for very
//!   long jobs.
//! * **Delta-normalization** — `runtime - median`: absolute deviation in
//!   seconds. Complements Ratio by capturing variation in absolute terms.
//!
//! The paper uses *both*, producing two parallel shape catalogs.

/// The two normalization policies of Definition 4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Normalization {
    /// `runtime / historic median` (unitless).
    Ratio,
    /// `runtime - historic median` (seconds).
    Delta,
}

impl Normalization {
    /// All policies, in the order the paper presents them.
    pub const ALL: [Normalization; 2] = [Normalization::Ratio, Normalization::Delta];

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Normalization::Ratio => "Ratio",
            Normalization::Delta => "Delta",
        }
    }
}

impl std::fmt::Display for Normalization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Normalizes a single runtime against a historic median.
///
/// For [`Normalization::Ratio`] a non-positive median (which cannot occur for
/// real runtimes but may appear in degenerate synthetic data) yields ratio 1.0
/// for zero runtime and `+inf` handling is delegated to the histogram's
/// outlier bin.
#[inline]
pub fn normalize(policy: Normalization, runtime: f64, historic_median: f64) -> f64 {
    match policy {
        Normalization::Ratio => {
            if historic_median <= 0.0 {
                if runtime <= 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                runtime / historic_median
            }
        }
        Normalization::Delta => runtime - historic_median,
    }
}

/// Normalizes a batch of runtimes against one historic median.
pub fn normalize_all(policy: Normalization, runtimes: &[f64], historic_median: f64) -> Vec<f64> {
    runtimes
        .iter()
        .map(|&r| normalize(policy, r, historic_median))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_basic() {
        assert!((normalize(Normalization::Ratio, 120.0, 60.0) - 2.0).abs() < 1e-12);
        assert!((normalize(Normalization::Ratio, 60.0, 60.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delta_basic() {
        assert!((normalize(Normalization::Delta, 120.0, 60.0) - 60.0).abs() < 1e-12);
        assert!((normalize(Normalization::Delta, 30.0, 60.0) + 30.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_degenerate_median() {
        assert_eq!(normalize(Normalization::Ratio, 0.0, 0.0), 1.0);
        assert_eq!(normalize(Normalization::Ratio, 5.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn batch_matches_scalar() {
        let rts = [10.0, 20.0, 30.0];
        let out = normalize_all(Normalization::Delta, &rts, 20.0);
        assert_eq!(out, vec![-10.0, 0.0, 10.0]);
    }

    #[test]
    fn names() {
        assert_eq!(Normalization::Ratio.to_string(), "Ratio");
        assert_eq!(Normalization::Delta.to_string(), "Delta");
        assert_eq!(Normalization::ALL.len(), 2);
    }
}
