//! Quantile–quantile comparison of two samples (Fig 8 of the paper).
//!
//! The paper compares the *predicted* distribution of all job runtimes
//! against the *actual* distribution with a Q–Q plot and summarizes the gap
//! as the mean absolute error (MAE) between paired quantiles; identical
//! distributions align on the diagonal with MAE = 0.

use crate::distance::mae;
use crate::quantile::quantile_sorted;

/// Paired quantiles `(actual_q, predicted_q)` at `n_points` evenly spaced
/// probabilities in `(0, 1)`.
///
/// Returns `None` if either sample has no finite values.
pub fn qq_points(actual: &[f64], predicted: &[f64], n_points: usize) -> Option<Vec<(f64, f64)>> {
    assert!(n_points >= 2, "need at least 2 points");
    let mut a: Vec<f64> = actual.iter().copied().filter(|v| v.is_finite()).collect();
    let mut p: Vec<f64> = predicted
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    if a.is_empty() || p.is_empty() {
        return None;
    }
    a.sort_by(|x, y| x.total_cmp(y));
    p.sort_by(|x, y| x.total_cmp(y));
    Some(
        (0..n_points)
            .map(|i| {
                let q = (i as f64 + 0.5) / n_points as f64;
                (quantile_sorted(&a, q), quantile_sorted(&p, q))
            })
            .collect(),
    )
}

/// MAE between paired quantiles over the full probability range.
pub fn qq_mae(actual: &[f64], predicted: &[f64], n_points: usize) -> Option<f64> {
    let pts = qq_points(actual, predicted, n_points)?;
    let (a, p): (Vec<f64>, Vec<f64>) = pts.into_iter().unzip();
    Some(mae(&a, &p))
}

/// MAE between paired quantiles restricted to the upper tail
/// (`q >= tail_from`). This is where the paper's classification approach
/// beats the regression baseline: outliers live in the high percentiles.
pub fn qq_tail_mae(
    actual: &[f64],
    predicted: &[f64],
    n_points: usize,
    tail_from: f64,
) -> Option<f64> {
    assert!(
        (0.0..1.0).contains(&tail_from),
        "tail_from must be in [0, 1)"
    );
    let pts = qq_points(actual, predicted, n_points)?;
    let tail: Vec<(f64, f64)> = pts
        .into_iter()
        .enumerate()
        .filter(|(i, _)| (*i as f64 + 0.5) / n_points as f64 >= tail_from)
        .map(|(_, p)| p)
        .collect();
    if tail.is_empty() {
        return None;
    }
    let (a, p): (Vec<f64>, Vec<f64>) = tail.into_iter().unzip();
    Some(mae(&a, &p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_zero_mae() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(qq_mae(&v, &v, 50).unwrap() < 1e-12);
    }

    #[test]
    fn shifted_samples_mae_equals_shift() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let p: Vec<f64> = a.iter().map(|x| x + 3.0).collect();
        assert!((qq_mae(&a, &p, 50).unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn tail_mae_catches_missing_outliers() {
        // Predicted misses the heavy tail: overall MAE small, tail MAE large.
        let mut actual: Vec<f64> = vec![10.0; 95];
        actual.extend(vec![1000.0; 5]);
        let predicted = vec![10.0; 100];
        let overall = qq_mae(&actual, &predicted, 100).unwrap();
        let tail = qq_tail_mae(&actual, &predicted, 100, 0.9).unwrap();
        assert!(tail > 5.0 * overall);
    }

    #[test]
    fn points_are_monotone() {
        let a: Vec<f64> = (0..50).map(|i| (i * i) as f64).collect();
        let b: Vec<f64> = (0..80).map(|i| i as f64 * 3.0).collect();
        let pts = qq_points(&a, &b, 20).unwrap();
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(qq_points(&[], &[1.0], 10).is_none());
        assert!(qq_mae(&[1.0], &[f64::NAN], 10).is_none());
    }

    #[test]
    fn nan_inputs_are_filtered_not_fatal() {
        let a = [3.0, f64::NAN, 1.0, 2.0, f64::INFINITY, 4.0];
        let p = [f64::NAN, 1.5, 3.5, f64::NEG_INFINITY, 2.5, 4.5];
        let pts = qq_points(&a, &p, 8).expect("finite values remain");
        assert!(pts.iter().all(|(x, y)| x.is_finite() && y.is_finite()));
        let clean_pts = qq_points(&[3.0, 1.0, 2.0, 4.0], &[1.5, 3.5, 2.5, 4.5], 8).unwrap();
        assert_eq!(
            pts, clean_pts,
            "non-finite samples must not shift quantiles"
        );
        assert!(qq_mae(&a, &p, 8).unwrap().is_finite());
        assert!(qq_tail_mae(&a, &p, 8, 0.5).unwrap().is_finite());
    }
}
