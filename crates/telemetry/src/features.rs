//! Feature extraction — the §5.1 feature classes.
//!
//! Three classes of predictive features, all available at compile/submit
//! time:
//!
//! 1. **Intrinsic** — operator counts, plan shape, optimizer estimates;
//! 2. **Historic** — statistics of the group's past runs (data read, token
//!    usage incl. spare tokens, per-SKU vertex mix);
//! 3. **Environment** — per-SKU machine utilization (mean and spread) at the
//!    moment of submission, plus cluster load and spare availability.
//!
//! The schema is fixed-width with stable, named columns so that feature
//! importances and Shapley values (§6) can be reported by name, and so the
//! what-if engine (§7) can transform exactly the right columns.
//!
//! Deliberately excluded: statistics of the group's *runtimes themselves*.
//! The prediction target is a property of the runtime distribution, so
//! runtime-derived features would leak the label and leave no credit for
//! the causal levers (§5.1 extracts historic *data read* and *token usage*
//! statistics, not runtime statistics).

use rv_scope::OperatorKind;
use rv_sim::SkuGeneration;

use crate::dataset::{GroupHistory, GroupStats};
use crate::record::JobTelemetry;

/// Human-readable names of every feature column, in schema order.
pub const FEATURE_NAMES: [&str; FeatureSchema::WIDTH] = [
    // --- intrinsic -------------------------------------------------------
    "total_operators",
    "op_extract",
    "op_filter",
    "op_project",
    "op_hash_aggregate",
    "op_stream_aggregate",
    "op_hash_join",
    "op_merge_join",
    "op_broadcast_join",
    "op_sort",
    "op_top_n",
    "op_exchange",
    "op_index_lookup",
    "op_window",
    "op_range",
    "op_process",
    "op_reduce",
    "op_union",
    "op_output",
    "n_stages",
    "critical_path",
    "total_base_vertices",
    "log_estimated_rows",
    "log_estimated_cost",
    "log_estimated_input_gb",
    // --- historic ---------------------------------------------------------
    "log_hist_runs",
    "log_hist_data_read_avg",
    "hist_data_read_cv",
    "log_hist_temp_data_avg",
    "log_hist_vertices_avg",
    "hist_token_min_avg",
    "hist_token_max_avg",
    "hist_token_avg_avg",
    "hist_token_avg_std",
    "hist_spare_avg",
    "hist_spare_std",
    // --- resource allocation ----------------------------------------------
    "allocated_tokens",
    // --- historic SKU mix ---------------------------------------------------
    "sku_frac_gen3",
    "sku_frac_gen3_5",
    "sku_frac_gen4",
    "sku_frac_gen5",
    "sku_frac_gen5_2",
    "sku_frac_gen6",
    "log_sku_vertices_gen3",
    "log_sku_vertices_gen3_5",
    "log_sku_vertices_gen4",
    "log_sku_vertices_gen5",
    "log_sku_vertices_gen5_2",
    "log_sku_vertices_gen6",
    // --- environment at submit ----------------------------------------------
    "util_mean_gen3",
    "util_mean_gen3_5",
    "util_mean_gen4",
    "util_mean_gen5",
    "util_mean_gen5_2",
    "util_mean_gen6",
    "util_std_gen3",
    "util_std_gen3_5",
    "util_std_gen4",
    "util_std_gen5",
    "util_std_gen5_2",
    "util_std_gen6",
    "cluster_load",
    "spare_fraction",
    // --- container-level counters (§5.1's anticipated extension) -----------
    "log_hist_cpu_seconds_avg",
    "log_hist_peak_mem_avg",
    "hist_spare_preempt_rate",
];

/// Column-index bookkeeping for the fixed feature schema.
#[derive(Debug, Clone, Copy, Default)]
pub struct FeatureSchema;

impl FeatureSchema {
    /// Total number of feature columns.
    pub const WIDTH: usize = 66;

    const OP_BASE: usize = 1;
    const HIST_BASE: usize = 25;
    /// Index of `hist_spare_avg`.
    pub const HIST_SPARE_AVG: usize = 34;
    /// Index of `hist_spare_std`.
    pub const HIST_SPARE_STD: usize = 35;
    /// Index of `allocated_tokens`.
    pub const ALLOCATED_TOKENS: usize = 36;
    const SKU_FRAC_BASE: usize = 37;
    const SKU_VERT_BASE: usize = 43;
    const UTIL_MEAN_BASE: usize = 49;
    const UTIL_STD_BASE: usize = 55;
    /// Index of `cluster_load`.
    pub const CLUSTER_LOAD: usize = 61;
    /// Index of `spare_fraction`.
    pub const SPARE_FRACTION: usize = 62;
    /// Index of `log_hist_cpu_seconds_avg`.
    pub const HIST_CPU_SECONDS: usize = 63;
    /// Index of `log_hist_peak_mem_avg`.
    pub const HIST_PEAK_MEM: usize = 64;
    /// Index of `hist_spare_preempt_rate`.
    pub const HIST_PREEMPT_RATE: usize = 65;
    /// Index of `log_hist_data_read_avg`.
    pub const HIST_DATA_READ: usize = 26;
    /// Index of `hist_token_max_avg`.
    pub const HIST_TOKEN_MAX: usize = 31;

    /// Column of the per-kind operator count.
    pub fn op_count_index(kind: OperatorKind) -> usize {
        Self::OP_BASE + kind.index()
    }

    /// Column of the historic vertex fraction on `gen`.
    pub fn sku_fraction_index(gen: SkuGeneration) -> usize {
        Self::SKU_FRAC_BASE + gen.index()
    }

    /// Column of the historic (log) vertex count on `gen`.
    pub fn sku_vertex_count_index(gen: SkuGeneration) -> usize {
        Self::SKU_VERT_BASE + gen.index()
    }

    /// Column of submit-time mean utilization of `gen`.
    pub fn util_mean_index(gen: SkuGeneration) -> usize {
        Self::UTIL_MEAN_BASE + gen.index()
    }

    /// Column of submit-time utilization spread of `gen`.
    pub fn util_std_index(gen: SkuGeneration) -> usize {
        Self::UTIL_STD_BASE + gen.index()
    }

    /// Looks up a column by name; `None` if not in the schema.
    pub fn index_of(name: &str) -> Option<usize> {
        FEATURE_NAMES.iter().position(|&n| n == name)
    }

    /// The spare-token usage columns (the Scenario 1 levers). Note that
    /// `spare_fraction` — the *ambient* idle capacity at submit — is not a
    /// lever: disabling a job's spare tokens does not change how busy the
    /// cluster is.
    pub fn spare_indices() -> [usize; 3] {
        [
            Self::HIST_SPARE_AVG,
            Self::HIST_SPARE_STD,
            Self::HIST_PREEMPT_RATE,
        ]
    }

    /// All utilization-spread columns (the Scenario 3 levers).
    pub fn util_std_indices() -> [usize; SkuGeneration::COUNT] {
        let mut out = [0; SkuGeneration::COUNT];
        for g in SkuGeneration::ALL {
            out[g.index()] = Self::util_std_index(g);
        }
        out
    }
}

/// Extracts fixed-width feature vectors from telemetry rows, using a
/// [`GroupHistory`] as the source of historic statistics.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    history: GroupHistory,
}

impl FeatureExtractor {
    /// Creates an extractor over the given history (typically computed from
    /// D1, or from all telemetry preceding the prediction window).
    pub fn new(history: GroupHistory) -> Self {
        Self { history }
    }

    /// The backing history.
    pub fn history(&self) -> &GroupHistory {
        &self.history
    }

    /// Extracts the feature vector for one row. Groups without history get
    /// neutral (zero) historic features — the model learns to rely on the
    /// intrinsic and environment blocks for them.
    pub fn extract(&self, row: &JobTelemetry) -> Vec<f64> {
        let mut x = vec![0.0; FeatureSchema::WIDTH];

        // --- intrinsic -----------------------------------------------------
        let total_ops: u32 = row.operator_counts.iter().sum();
        x[0] = total_ops as f64;
        for (i, &c) in row.operator_counts.iter().enumerate() {
            if FeatureSchema::OP_BASE + i < 1 + OperatorKind::COUNT {
                x[FeatureSchema::OP_BASE + i] = c as f64;
            }
        }
        x[19] = row.n_stages as f64;
        x[20] = row.critical_path as f64;
        x[21] = row.total_base_vertices as f64;
        x[22] = row.estimated_rows.max(0.0).ln_1p();
        x[23] = row.estimated_cost.max(0.0).ln_1p();
        x[24] = row.estimated_input_gb.max(0.0).ln_1p();

        // --- historic -------------------------------------------------------
        if let Some(h) = self.history.get(&row.group) {
            self.fill_history(&mut x, h);
        }

        // --- resource -------------------------------------------------------
        x[FeatureSchema::ALLOCATED_TOKENS] = row.allocated_tokens as f64;

        // --- environment ----------------------------------------------------
        for g in SkuGeneration::ALL {
            x[FeatureSchema::util_mean_index(g)] = row.sku_util_mean[g.index()];
            x[FeatureSchema::util_std_index(g)] = row.sku_util_std[g.index()];
        }
        x[FeatureSchema::CLUSTER_LOAD] = row.cluster_load;
        x[FeatureSchema::SPARE_FRACTION] = row.spare_fraction;
        x
    }

    fn fill_history(&self, x: &mut [f64], h: &GroupStats) {
        x[FeatureSchema::HIST_BASE] = (h.n_runs as f64).ln_1p();
        x[FeatureSchema::HIST_DATA_READ] = h.data_read_avg.max(0.0).ln_1p();
        x[27] = if h.data_read_avg > 0.0 {
            h.data_read_std / h.data_read_avg
        } else {
            0.0
        };
        x[28] = h.temp_data_avg.max(0.0).ln_1p();
        x[29] = h.vertices_avg.max(0.0).ln_1p();
        x[30] = h.token_min_avg;
        x[FeatureSchema::HIST_TOKEN_MAX] = h.token_max_avg;
        x[32] = h.token_avg_avg;
        x[33] = h.token_avg_std;
        x[FeatureSchema::HIST_SPARE_AVG] = h.spare_avg;
        x[FeatureSchema::HIST_SPARE_STD] = h.spare_std;
        for g in SkuGeneration::ALL {
            x[FeatureSchema::sku_fraction_index(g)] = h.sku_fraction_avg[g.index()];
            x[FeatureSchema::sku_vertex_count_index(g)] =
                h.sku_vertex_count_avg[g.index()].max(0.0).ln_1p();
        }
        x[FeatureSchema::HIST_CPU_SECONDS] = h.cpu_seconds_avg.max(0.0).ln_1p();
        x[FeatureSchema::HIST_PEAK_MEM] = h.peak_memory_avg.max(0.0).ln_1p();
        x[FeatureSchema::HIST_PREEMPT_RATE] = h.preemption_rate;
    }

    /// Extracts feature vectors for a batch of rows.
    pub fn extract_all(&self, rows: &[&JobTelemetry]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.extract(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TelemetryStore;
    use rv_scope::{JobGroupKey, PlanSignature};

    fn row(name: &str, runtime: f64) -> JobTelemetry {
        let mut op_counts = vec![0u32; OperatorKind::COUNT];
        op_counts[OperatorKind::Extract.index()] = 2;
        op_counts[OperatorKind::Window.index()] = 1;
        JobTelemetry {
            group: JobGroupKey::new(name, PlanSignature(1)),
            template_id: 0,
            seq: 0,
            submit_time_s: 0.0,
            runtime_s: runtime,
            disrupted: false,
            operator_counts: op_counts,
            n_stages: 4,
            critical_path: 3,
            total_base_vertices: 20,
            estimated_rows: 1e6,
            estimated_cost: 500.0,
            estimated_input_gb: 10.0,
            data_read_gb: 12.0,
            temp_data_gb: 3.0,
            total_vertices: 25,
            allocated_tokens: 16,
            token_min: 4,
            token_max: 30,
            token_avg: 14.0,
            spare_avg: 6.0,
            spare_preempted: false,
            cpu_seconds: 10.0,
            peak_memory_gb: 0.5,
            sku_fractions: [0.0, 0.2, 0.5, 0.3, 0.0, 0.0],
            sku_vertex_counts: [0, 5, 12, 8, 0, 0],
            sku_util_mean: [0.4, 0.45, 0.5, 0.55, 0.6, 0.65],
            sku_util_std: [0.10, 0.11, 0.12, 0.13, 0.14, 0.15],
            cluster_load: 0.5,
            spare_fraction: 0.25,
        }
    }

    #[test]
    fn schema_names_match_width() {
        assert_eq!(FEATURE_NAMES.len(), FeatureSchema::WIDTH);
        // Names are unique.
        let mut names: Vec<&str> = FEATURE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FeatureSchema::WIDTH);
    }

    #[test]
    fn index_helpers_agree_with_names() {
        assert_eq!(
            FeatureSchema::op_count_index(OperatorKind::IndexLookup),
            FeatureSchema::index_of("op_index_lookup").unwrap()
        );
        assert_eq!(
            FeatureSchema::sku_fraction_index(SkuGeneration::Gen5_2),
            FeatureSchema::index_of("sku_frac_gen5_2").unwrap()
        );
        assert_eq!(
            FeatureSchema::util_std_index(SkuGeneration::Gen6),
            FeatureSchema::index_of("util_std_gen6").unwrap()
        );
        assert_eq!(
            FeatureSchema::HIST_SPARE_AVG,
            FeatureSchema::index_of("hist_spare_avg").unwrap()
        );
        assert_eq!(
            FeatureSchema::ALLOCATED_TOKENS,
            FeatureSchema::index_of("allocated_tokens").unwrap()
        );
        assert_eq!(
            FeatureSchema::SPARE_FRACTION,
            FeatureSchema::index_of("spare_fraction").unwrap()
        );
    }

    #[test]
    fn extraction_with_history() {
        let store: TelemetryStore = vec![row("a", 100.0), row("a", 110.0), row("a", 120.0)]
            .into_iter()
            .collect();
        let extractor = FeatureExtractor::new(GroupHistory::compute(&store));
        let x = extractor.extract(&row("a", 105.0));
        assert_eq!(x.len(), FeatureSchema::WIDTH);
        assert_eq!(x[0], 3.0); // total operators
        assert_eq!(x[FeatureSchema::op_count_index(OperatorKind::Window)], 1.0);
        assert!((x[FeatureSchema::HIST_SPARE_AVG] - 6.0).abs() < 1e-9);
        assert_eq!(x[FeatureSchema::ALLOCATED_TOKENS], 16.0);
        assert!((x[FeatureSchema::CLUSTER_LOAD] - 0.5).abs() < 1e-12);
        assert!((x[FeatureSchema::util_mean_index(SkuGeneration::Gen6)] - 0.65).abs() < 1e-12);
    }

    #[test]
    fn extraction_without_history_zeroes_historic_block() {
        let extractor = FeatureExtractor::new(GroupHistory::default());
        let x = extractor.extract(&row("unknown", 50.0));
        assert_eq!(x[FeatureSchema::HIST_SPARE_AVG], 0.0);
        // Intrinsic and environment blocks still populated.
        assert!(x[0] > 0.0);
        assert!(x[FeatureSchema::CLUSTER_LOAD] > 0.0);
    }

    #[test]
    fn all_features_finite() {
        let store: TelemetryStore = vec![row("a", 100.0), row("a", 1.0)].into_iter().collect();
        let extractor = FeatureExtractor::new(GroupHistory::compute(&store));
        let x = extractor.extract(&row("a", 55.0));
        for (i, v) in x.iter().enumerate() {
            assert!(v.is_finite(), "feature {} = {v}", FEATURE_NAMES[i]);
        }
    }

    #[test]
    fn spare_and_util_index_groups() {
        let spare = FeatureSchema::spare_indices();
        assert_eq!(spare.len(), 3);
        for i in spare {
            assert!(FEATURE_NAMES[i].contains("spare"));
        }
        for i in FeatureSchema::util_std_indices() {
            assert!(FEATURE_NAMES[i].starts_with("util_std"));
        }
    }
}
