//! Dataset assembly — the Table 1 machinery.
//!
//! The paper carves its telemetry into three datasets by *observation
//! interval* and *support* (minimum instances per group): D1 (6 months,
//! support 20) for learning the shape catalog, D2 (15 days, support 3) for
//! training the predictor, D3 (5 days, support 3) for testing. This module
//! reproduces that assembly over the simulated campaign, plus the per-group
//! *historic statistics* (medians, token usage, data read) that both the
//! normalization (Definition 4.1) and the feature extraction (§5.1) consume.

use std::collections::BTreeMap;

use rv_scope::JobGroupKey;
use rv_stats::{median, Summary};

use crate::record::JobTelemetry;
use crate::store::TelemetryStore;

/// Specification of one dataset window.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Name for reports ("D1", "D2", "D3").
    pub name: String,
    /// Window start, days from campaign start (inclusive).
    pub from_days: f64,
    /// Window end, days from campaign start (exclusive).
    pub to_days: f64,
    /// Minimum instances per group within the window ("support").
    pub min_support: usize,
}

impl DatasetSpec {
    /// Creates a spec.
    pub fn new(name: &str, from_days: f64, to_days: f64, min_support: usize) -> Self {
        assert!(to_days > from_days, "window must be non-empty");
        assert!(min_support >= 1, "support must be at least 1");
        Self {
            name: name.to_string(),
            from_days,
            to_days,
            min_support,
        }
    }

    /// The paper's dataset trio scaled to a campaign of `total_days`:
    /// D1 takes the first ~71% (shape catalog, support 20), D2 the next ~21%
    /// (training, support 3), D3 the final ~7% (testing, support 3) —
    /// the same 6-month / 15-day / 5-day proportions as Table 1 up to the
    /// overall scale.
    pub fn paper_trio(total_days: f64) -> [DatasetSpec; 3] {
        assert!(total_days > 0.0);
        let d1_end = total_days * 0.715;
        let d2_end = total_days * 0.93;
        [
            DatasetSpec::new("D1", 0.0, d1_end, 20),
            DatasetSpec::new("D2", d1_end, d2_end, 3),
            DatasetSpec::new("D3", d2_end, total_days, 3),
        ]
    }
}

/// A dataset: the window's rows restricted to groups meeting the support
/// threshold.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The spec this dataset was assembled from.
    pub spec: DatasetSpec,
    /// Rows, group-indexed.
    pub store: TelemetryStore,
}

impl Dataset {
    /// Assembles a dataset from the full campaign store.
    pub fn assemble(source: &TelemetryStore, spec: DatasetSpec) -> Self {
        let from_s = spec.from_days * 86_400.0;
        let to_s = spec.to_days * 86_400.0;
        // The view carries per-group support within the window; only rows of
        // groups meeting the threshold are cloned into the dataset store.
        let view = source.window_view(from_s, to_s);
        let store: TelemetryStore = view
            .rows()
            .filter(|r| view.group_len(&r.group) >= spec.min_support)
            .cloned()
            .collect();
        Self { spec, store }
    }

    /// Number of job groups retained.
    pub fn n_groups(&self) -> usize {
        self.store.n_groups()
    }

    /// Number of job instances retained.
    pub fn n_instances(&self) -> usize {
        self.store.len()
    }
}

/// Historic per-group statistics, computed over a reference store (typically
/// D1 or "everything before the prediction window").
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStats {
    /// Number of historic runs observed.
    pub n_runs: usize,
    /// Historic median runtime — the normalization anchor (Definition 4.1).
    pub median_runtime_s: f64,
    /// Historic mean runtime.
    pub mean_runtime_s: f64,
    /// Historic runtime standard deviation.
    pub runtime_std_s: f64,
    /// Average / std of actual data read, GB.
    pub data_read_avg: f64,
    /// Standard deviation of data read.
    pub data_read_std: f64,
    /// Average temp data read, GB.
    pub temp_data_avg: f64,
    /// Average vertices launched.
    pub vertices_avg: f64,
    /// Averages of the skyline statistics (min/max/avg tokens).
    pub token_min_avg: f64,
    /// Average of per-run peak token usage.
    pub token_max_avg: f64,
    /// Average of per-run average token usage.
    pub token_avg_avg: f64,
    /// Spread of per-run average token usage.
    pub token_avg_std: f64,
    /// Average spare-token usage.
    pub spare_avg: f64,
    /// Spread of spare-token usage.
    pub spare_std: f64,
    /// Fraction of runs whose spare tokens were preempted.
    pub preemption_rate: f64,
    /// Average container CPU-seconds per run.
    pub cpu_seconds_avg: f64,
    /// Average peak container memory per run, GB.
    pub peak_memory_avg: f64,
    /// Mean vertex fraction per SKU.
    pub sku_fraction_avg: [f64; 6],
    /// Mean vertex count per SKU.
    pub sku_vertex_count_avg: [f64; 6],
}

/// Historic statistics for every group in a reference store.
#[derive(Debug, Clone, Default)]
pub struct GroupHistory {
    stats: BTreeMap<JobGroupKey, GroupStats>,
}

impl GroupHistory {
    /// Computes statistics over every group in `store`.
    pub fn compute(store: &TelemetryStore) -> Self {
        let mut stats = BTreeMap::new();
        for key in store.group_keys() {
            let rows = store.group_rows(key);
            if rows.is_empty() {
                continue;
            }
            stats.insert(key.clone(), Self::stats_of(&rows));
        }
        Self { stats }
    }

    fn stats_of(rows: &[&JobTelemetry]) -> GroupStats {
        let runtimes: Vec<f64> = rows.iter().map(|r| r.runtime_s).collect();
        let summary = Summary::compute(&runtimes).expect("non-empty group");
        let avg = |f: &dyn Fn(&JobTelemetry) -> f64| -> f64 {
            rows.iter().map(|r| f(r)).sum::<f64>() / rows.len() as f64
        };
        let std = |f: &dyn Fn(&JobTelemetry) -> f64| -> f64 {
            let vals: Vec<f64> = rows.iter().map(|r| f(r)).collect();
            rv_stats::std_dev(&vals)
        };
        let mut sku_fraction_avg = [0.0; 6];
        let mut sku_vertex_count_avg = [0.0; 6];
        for r in rows {
            for i in 0..6 {
                sku_fraction_avg[i] += r.sku_fractions[i];
                sku_vertex_count_avg[i] += r.sku_vertex_counts[i] as f64;
            }
        }
        for i in 0..6 {
            sku_fraction_avg[i] /= rows.len() as f64;
            sku_vertex_count_avg[i] /= rows.len() as f64;
        }
        GroupStats {
            n_runs: rows.len(),
            median_runtime_s: summary.median,
            mean_runtime_s: summary.mean,
            runtime_std_s: summary.std_dev,
            data_read_avg: avg(&|r| r.data_read_gb),
            data_read_std: std(&|r| r.data_read_gb),
            temp_data_avg: avg(&|r| r.temp_data_gb),
            vertices_avg: avg(&|r| r.total_vertices as f64),
            token_min_avg: avg(&|r| r.token_min as f64),
            token_max_avg: avg(&|r| r.token_max as f64),
            token_avg_avg: avg(&|r| r.token_avg),
            token_avg_std: std(&|r| r.token_avg),
            spare_avg: avg(&|r| r.spare_avg),
            spare_std: std(&|r| r.spare_avg),
            preemption_rate: rows.iter().filter(|r| r.spare_preempted).count() as f64
                / rows.len() as f64,
            cpu_seconds_avg: avg(&|r| r.cpu_seconds),
            peak_memory_avg: avg(&|r| r.peak_memory_gb),
            sku_fraction_avg,
            sku_vertex_count_avg,
        }
    }

    /// Statistics for one group, if present in the reference store.
    pub fn get(&self, key: &JobGroupKey) -> Option<&GroupStats> {
        self.stats.get(key)
    }

    /// Historic median runtime for normalization; falls back to the median
    /// of `fallback_runtimes` when the group was not observed historically
    /// (new jobs — the paper restricts analysis to groups with history, we
    /// degrade gracefully instead).
    pub fn median_or(&self, key: &JobGroupKey, fallback_runtimes: &[f64]) -> Option<f64> {
        match self.stats.get(key) {
            Some(s) => Some(s.median_runtime_s),
            None => median(fallback_runtimes),
        }
    }

    /// Number of groups with history.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether no group has history.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Iterates over `(group, stats)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&JobGroupKey, &GroupStats)> {
        self.stats.iter()
    }
}

impl FromIterator<(JobGroupKey, GroupStats)> for GroupHistory {
    fn from_iter<T: IntoIterator<Item = (JobGroupKey, GroupStats)>>(iter: T) -> Self {
        Self {
            stats: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_scope::PlanSignature;

    fn row(name: &str, seq: u32, t_days: f64, runtime: f64) -> JobTelemetry {
        JobTelemetry {
            group: JobGroupKey::new(name, PlanSignature(1)),
            template_id: 0,
            seq,
            submit_time_s: t_days * 86_400.0,
            runtime_s: runtime,
            disrupted: false,
            operator_counts: vec![0; 18],
            n_stages: 1,
            critical_path: 1,
            total_base_vertices: 1,
            estimated_rows: 1.0,
            estimated_cost: 1.0,
            estimated_input_gb: 1.0,
            data_read_gb: 2.0,
            temp_data_gb: 0.5,
            total_vertices: 4,
            allocated_tokens: 2,
            token_min: 1,
            token_max: 4,
            token_avg: 2.5,
            spare_avg: 0.5,
            spare_preempted: false,
            cpu_seconds: 10.0,
            peak_memory_gb: 0.5,
            sku_fractions: [0.5, 0.5, 0.0, 0.0, 0.0, 0.0],
            sku_vertex_counts: [2, 2, 0, 0, 0, 0],
            sku_util_mean: [0.5; 6],
            sku_util_std: [0.1; 6],
            cluster_load: 0.5,
            spare_fraction: 0.2,
        }
    }

    fn sample_store() -> TelemetryStore {
        let mut rows = Vec::new();
        // Group "a": 5 runs on days 0..5.
        for i in 0..5 {
            rows.push(row("a", i, i as f64, 100.0 + i as f64));
        }
        // Group "b": 2 runs only.
        rows.push(row("b", 0, 1.0, 50.0));
        rows.push(row("b", 1, 2.0, 55.0));
        rows.into_iter().collect()
    }

    #[test]
    fn support_threshold_filters_groups() {
        let store = sample_store();
        let ds = Dataset::assemble(&store, DatasetSpec::new("T", 0.0, 10.0, 3));
        assert_eq!(ds.n_groups(), 1); // only "a" has ≥3 runs
        assert_eq!(ds.n_instances(), 5);
        let ds2 = Dataset::assemble(&store, DatasetSpec::new("T", 0.0, 10.0, 2));
        assert_eq!(ds2.n_groups(), 2);
    }

    #[test]
    fn window_restricts_support_counting() {
        let store = sample_store();
        // Days [0, 3): "a" has 3 runs, "b" has 2.
        let ds = Dataset::assemble(&store, DatasetSpec::new("T", 0.0, 3.0, 3));
        assert_eq!(ds.n_groups(), 1);
        assert_eq!(ds.n_instances(), 3);
    }

    #[test]
    fn paper_trio_partitions_time() {
        let trio = DatasetSpec::paper_trio(28.0);
        assert_eq!(trio[0].from_days, 0.0);
        assert!((trio[0].to_days - trio[1].from_days).abs() < 1e-9);
        assert!((trio[1].to_days - trio[2].from_days).abs() < 1e-9);
        assert!((trio[2].to_days - 28.0).abs() < 1e-9);
        assert_eq!(trio[0].min_support, 20);
        assert_eq!(trio[2].min_support, 3);
    }

    #[test]
    fn group_history_stats() {
        let store = sample_store();
        let hist = GroupHistory::compute(&store);
        assert_eq!(hist.len(), 2);
        let a = hist
            .get(&JobGroupKey::new("a", PlanSignature(1)))
            .expect("group a");
        assert_eq!(a.n_runs, 5);
        assert_eq!(a.median_runtime_s, 102.0);
        assert!((a.mean_runtime_s - 102.0).abs() < 1e-9);
        assert!((a.data_read_avg - 2.0).abs() < 1e-9);
        assert!((a.sku_fraction_avg[0] - 0.5).abs() < 1e-9);
        assert!((a.token_max_avg - 4.0).abs() < 1e-9);
    }

    #[test]
    fn median_fallback_for_unknown_groups() {
        let hist = GroupHistory::compute(&sample_store());
        let unknown = JobGroupKey::new("zzz", PlanSignature(9));
        assert_eq!(hist.median_or(&unknown, &[5.0, 7.0, 9.0]), Some(7.0));
        assert_eq!(hist.median_or(&unknown, &[]), None);
        let known = JobGroupKey::new("b", PlanSignature(1));
        assert_eq!(hist.median_or(&known, &[999.0]), Some(52.5));
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn rejects_inverted_window() {
        DatasetSpec::new("bad", 5.0, 5.0, 1);
    }
}
