//! Group-indexed storage of telemetry rows.

use std::collections::BTreeMap;

use rv_scope::JobGroupKey;

use crate::record::JobTelemetry;

/// An append-only store of telemetry rows indexed by job group.
///
/// Rows are kept in insertion (submission) order; a `BTreeMap` index gives
/// deterministic group iteration order, which keeps every downstream
/// analysis reproducible.
#[derive(Debug, Clone, Default)]
pub struct TelemetryStore {
    rows: Vec<JobTelemetry>,
    by_group: BTreeMap<JobGroupKey, Vec<usize>>,
}

impl TelemetryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store with row capacity pre-reserved.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            rows: Vec::with_capacity(n),
            by_group: BTreeMap::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: JobTelemetry) {
        let idx = self.rows.len();
        self.by_group
            .entry(row.group.clone())
            .or_default()
            .push(idx);
        self.rows.push(row);
    }

    /// All rows in insertion order.
    pub fn rows(&self) -> &[JobTelemetry] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of distinct job groups.
    pub fn n_groups(&self) -> usize {
        self.by_group.len()
    }

    /// Iterator over group keys in deterministic (sorted) order.
    pub fn group_keys(&self) -> impl Iterator<Item = &JobGroupKey> {
        self.by_group.keys()
    }

    /// Rows of one group, in submission order.
    pub fn group_rows(&self, key: &JobGroupKey) -> Vec<&JobTelemetry> {
        self.by_group
            .get(key)
            .map(|idxs| idxs.iter().map(|&i| &self.rows[i]).collect())
            .unwrap_or_default()
    }

    /// Runtimes of one group, in submission order.
    pub fn group_runtimes(&self, key: &JobGroupKey) -> Vec<f64> {
        self.group_rows(key).iter().map(|r| r.runtime_s).collect()
    }

    /// Rows whose submission time lies in `[from_s, to_s)`.
    pub fn rows_in_window(&self, from_s: f64, to_s: f64) -> Vec<&JobTelemetry> {
        self.rows
            .iter()
            .filter(|r| r.submit_time_s >= from_s && r.submit_time_s < to_s)
            .collect()
    }
}

impl FromIterator<JobTelemetry> for TelemetryStore {
    fn from_iter<T: IntoIterator<Item = JobTelemetry>>(iter: T) -> Self {
        let mut store = Self::new();
        for row in iter {
            store.push(row);
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_scope::PlanSignature;

    fn row(name: &str, seq: u32, t: f64, runtime: f64) -> JobTelemetry {
        JobTelemetry {
            group: JobGroupKey::new(name, PlanSignature(7)),
            template_id: 0,
            seq,
            submit_time_s: t,
            runtime_s: runtime,
            disrupted: false,
            operator_counts: vec![0; 18],
            n_stages: 1,
            critical_path: 1,
            total_base_vertices: 1,
            estimated_rows: 1.0,
            estimated_cost: 1.0,
            estimated_input_gb: 1.0,
            data_read_gb: 1.0,
            temp_data_gb: 0.1,
            total_vertices: 1,
            allocated_tokens: 1,
            token_min: 1,
            token_max: 1,
            token_avg: 1.0,
            spare_avg: 0.0,
            spare_preempted: false,
            cpu_seconds: 10.0,
            peak_memory_gb: 0.5,
            sku_fractions: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            sku_vertex_counts: [1, 0, 0, 0, 0, 0],
            sku_util_mean: [0.5; 6],
            sku_util_std: [0.1; 6],
            cluster_load: 0.5,
            spare_fraction: 0.2,
        }
    }

    #[test]
    fn groups_and_runtimes() {
        let store: TelemetryStore = vec![
            row("a", 0, 0.0, 10.0),
            row("b", 0, 1.0, 20.0),
            row("a", 1, 2.0, 12.0),
        ]
        .into_iter()
        .collect();
        assert_eq!(store.len(), 3);
        assert_eq!(store.n_groups(), 2);
        let key = JobGroupKey::new("a", PlanSignature(7));
        assert_eq!(store.group_runtimes(&key), vec![10.0, 12.0]);
    }

    #[test]
    fn missing_group_is_empty() {
        let store = TelemetryStore::new();
        let key = JobGroupKey::new("nope", PlanSignature(0));
        assert!(store.group_rows(&key).is_empty());
        assert!(store.is_empty());
    }

    #[test]
    fn window_filter() {
        let store: TelemetryStore = (0..10).map(|i| row("a", i, i as f64, 1.0)).collect();
        assert_eq!(store.rows_in_window(2.0, 5.0).len(), 3);
        assert_eq!(store.rows_in_window(0.0, 100.0).len(), 10);
        assert_eq!(store.rows_in_window(50.0, 60.0).len(), 0);
    }

    #[test]
    fn group_iteration_is_sorted() {
        let store: TelemetryStore = vec![
            row("zeta", 0, 0.0, 1.0),
            row("alpha", 0, 1.0, 1.0),
            row("mid", 0, 2.0, 1.0),
        ]
        .into_iter()
        .collect();
        let names: Vec<&str> = store
            .group_keys()
            .map(|k| k.normalized_name.as_str())
            .collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
