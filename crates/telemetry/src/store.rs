//! Group-indexed storage of telemetry rows.

use std::collections::BTreeMap;

use rv_scope::JobGroupKey;

use crate::record::JobTelemetry;

/// An append-only store of telemetry rows indexed by job group.
///
/// Rows are kept in insertion (submission) order; a `BTreeMap` index gives
/// deterministic group iteration order, which keeps every downstream
/// analysis reproducible.
#[derive(Debug, Clone, Default)]
pub struct TelemetryStore {
    rows: Vec<JobTelemetry>,
    by_group: BTreeMap<JobGroupKey, Vec<usize>>,
}

impl TelemetryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store with row capacity pre-reserved.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            rows: Vec::with_capacity(n),
            by_group: BTreeMap::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: JobTelemetry) {
        let idx = self.rows.len();
        self.by_group
            .entry(row.group.clone())
            .or_default()
            .push(idx);
        self.rows.push(row);
    }

    /// All rows in insertion order.
    pub fn rows(&self) -> &[JobTelemetry] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of distinct job groups.
    pub fn n_groups(&self) -> usize {
        self.by_group.len()
    }

    /// Iterator over group keys in deterministic (sorted) order.
    pub fn group_keys(&self) -> impl Iterator<Item = &JobGroupKey> {
        self.by_group.keys()
    }

    /// Rows of one group, in submission order.
    pub fn group_rows(&self, key: &JobGroupKey) -> Vec<&JobTelemetry> {
        self.by_group
            .get(key)
            .map(|idxs| idxs.iter().map(|&i| &self.rows[i]).collect())
            .unwrap_or_default()
    }

    /// Runtimes of one group, in submission order.
    pub fn group_runtimes(&self, key: &JobGroupKey) -> Vec<f64> {
        self.group_rows(key).iter().map(|r| r.runtime_s).collect()
    }

    /// Rows whose submission time lies in `[from_s, to_s)`.
    pub fn rows_in_window(&self, from_s: f64, to_s: f64) -> Vec<&JobTelemetry> {
        self.rows
            .iter()
            .filter(|r| r.submit_time_s >= from_s && r.submit_time_s < to_s)
            .collect()
    }

    /// A borrowed view over the whole store: same rows and group index, no
    /// row clones.
    pub fn view(&self) -> StoreView<'_> {
        StoreView {
            store: self,
            row_idx: (0..self.rows.len()).collect(),
            by_group: self.by_group.iter().map(|(k, v)| (k, v.clone())).collect(),
        }
    }

    /// A borrowed view over the rows submitted in `[from_s, to_s)`. Only
    /// groups with at least one row inside the window appear in the view.
    /// This replaces the `rows_in_window(..).cloned().collect()` pattern:
    /// the view holds row *indices*, never cloned rows.
    pub fn window_view(&self, from_s: f64, to_s: f64) -> StoreView<'_> {
        let mut row_idx = Vec::new();
        let mut by_group: BTreeMap<&JobGroupKey, Vec<usize>> = BTreeMap::new();
        for (i, r) in self.rows.iter().enumerate() {
            if r.submit_time_s >= from_s && r.submit_time_s < to_s {
                row_idx.push(i);
                by_group.entry(&r.group).or_default().push(i);
            }
        }
        StoreView {
            store: self,
            row_idx,
            by_group,
        }
    }

    /// A borrowed view containing only the rows of `key` (empty view when
    /// the group is unknown).
    pub fn group_view(&self, key: &JobGroupKey) -> StoreView<'_> {
        let mut by_group: BTreeMap<&JobGroupKey, Vec<usize>> = BTreeMap::new();
        let mut row_idx = Vec::new();
        if let Some((k, idxs)) = self.by_group.get_key_value(key) {
            row_idx = idxs.clone();
            by_group.insert(k, idxs.clone());
        }
        StoreView {
            store: self,
            row_idx,
            by_group,
        }
    }
}

/// A borrowed, index-based view of a subset of a [`TelemetryStore`]'s rows.
///
/// Views mirror the store's read API (`group_keys`, `group_rows`,
/// `group_runtimes`, window/row iteration) over a subset of rows without
/// cloning any [`JobTelemetry`]; both the label assignment and the dataset
/// assembly paths use them to avoid materializing intermediate stores.
#[derive(Debug, Clone)]
pub struct StoreView<'a> {
    store: &'a TelemetryStore,
    /// Row indices in insertion (submission) order.
    row_idx: Vec<usize>,
    /// Group index restricted to in-view rows, in sorted group order.
    by_group: BTreeMap<&'a JobGroupKey, Vec<usize>>,
}

impl<'a> StoreView<'a> {
    /// Rows of the view, in submission order.
    pub fn rows(&self) -> impl Iterator<Item = &'a JobTelemetry> + '_ {
        self.row_idx.iter().map(|&i| &self.store.rows[i])
    }

    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        self.row_idx.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.row_idx.is_empty()
    }

    /// Number of distinct groups with at least one in-view row.
    pub fn n_groups(&self) -> usize {
        self.by_group.len()
    }

    /// Iterator over in-view group keys in deterministic (sorted) order.
    pub fn group_keys(&self) -> impl Iterator<Item = &'a JobGroupKey> + '_ {
        self.by_group.keys().copied()
    }

    /// In-view rows of one group, in submission order.
    pub fn group_rows(&self, key: &JobGroupKey) -> Vec<&'a JobTelemetry> {
        self.by_group
            .get(key)
            .map(|idxs| idxs.iter().map(|&i| &self.store.rows[i]).collect())
            .unwrap_or_default()
    }

    /// In-view runtimes of one group, in submission order.
    pub fn group_runtimes(&self, key: &JobGroupKey) -> Vec<f64> {
        self.by_group
            .get(key)
            .map(|idxs| idxs.iter().map(|&i| self.store.rows[i].runtime_s).collect())
            .unwrap_or_default()
    }

    /// The number of in-view rows of one group (its in-window support).
    pub fn group_len(&self, key: &JobGroupKey) -> usize {
        self.by_group.get(key).map(Vec::len).unwrap_or(0)
    }
}

impl FromIterator<JobTelemetry> for TelemetryStore {
    fn from_iter<T: IntoIterator<Item = JobTelemetry>>(iter: T) -> Self {
        let mut store = Self::new();
        for row in iter {
            store.push(row);
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_scope::PlanSignature;

    fn row(name: &str, seq: u32, t: f64, runtime: f64) -> JobTelemetry {
        JobTelemetry {
            group: JobGroupKey::new(name, PlanSignature(7)),
            template_id: 0,
            seq,
            submit_time_s: t,
            runtime_s: runtime,
            disrupted: false,
            operator_counts: vec![0; 18],
            n_stages: 1,
            critical_path: 1,
            total_base_vertices: 1,
            estimated_rows: 1.0,
            estimated_cost: 1.0,
            estimated_input_gb: 1.0,
            data_read_gb: 1.0,
            temp_data_gb: 0.1,
            total_vertices: 1,
            allocated_tokens: 1,
            token_min: 1,
            token_max: 1,
            token_avg: 1.0,
            spare_avg: 0.0,
            spare_preempted: false,
            cpu_seconds: 10.0,
            peak_memory_gb: 0.5,
            sku_fractions: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            sku_vertex_counts: [1, 0, 0, 0, 0, 0],
            sku_util_mean: [0.5; 6],
            sku_util_std: [0.1; 6],
            cluster_load: 0.5,
            spare_fraction: 0.2,
        }
    }

    #[test]
    fn groups_and_runtimes() {
        let store: TelemetryStore = vec![
            row("a", 0, 0.0, 10.0),
            row("b", 0, 1.0, 20.0),
            row("a", 1, 2.0, 12.0),
        ]
        .into_iter()
        .collect();
        assert_eq!(store.len(), 3);
        assert_eq!(store.n_groups(), 2);
        let key = JobGroupKey::new("a", PlanSignature(7));
        assert_eq!(store.group_runtimes(&key), vec![10.0, 12.0]);
    }

    #[test]
    fn missing_group_is_empty() {
        let store = TelemetryStore::new();
        let key = JobGroupKey::new("nope", PlanSignature(0));
        assert!(store.group_rows(&key).is_empty());
        assert!(store.is_empty());
    }

    #[test]
    fn window_filter() {
        let store: TelemetryStore = (0..10).map(|i| row("a", i, i as f64, 1.0)).collect();
        assert_eq!(store.rows_in_window(2.0, 5.0).len(), 3);
        assert_eq!(store.rows_in_window(0.0, 100.0).len(), 10);
        assert_eq!(store.rows_in_window(50.0, 60.0).len(), 0);
    }

    #[test]
    fn window_view_matches_rows_in_window() {
        let store: TelemetryStore = vec![
            row("a", 0, 0.0, 10.0),
            row("b", 0, 1.0, 20.0),
            row("a", 1, 2.0, 12.0),
            row("b", 1, 3.0, 21.0),
            row("a", 2, 4.0, 14.0),
        ]
        .into_iter()
        .collect();
        let view = store.window_view(1.0, 4.0);
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert_eq!(view.n_groups(), 2);
        let a = JobGroupKey::new("a", PlanSignature(7));
        let b = JobGroupKey::new("b", PlanSignature(7));
        assert_eq!(view.group_runtimes(&a), vec![12.0]);
        assert_eq!(view.group_runtimes(&b), vec![20.0, 21.0]);
        assert_eq!(view.group_len(&b), 2);
        // Same rows, same order, as the allocating window query.
        let borrowed: Vec<f64> = view.rows().map(|r| r.runtime_s).collect();
        let owned: Vec<f64> = store
            .rows_in_window(1.0, 4.0)
            .iter()
            .map(|r| r.runtime_s)
            .collect();
        assert_eq!(borrowed, owned);
    }

    #[test]
    fn full_and_group_views() {
        let store: TelemetryStore = vec![
            row("a", 0, 0.0, 10.0),
            row("b", 0, 1.0, 20.0),
            row("a", 1, 2.0, 12.0),
        ]
        .into_iter()
        .collect();
        let full = store.view();
        assert_eq!(full.len(), store.len());
        assert_eq!(full.n_groups(), store.n_groups());
        let a = JobGroupKey::new("a", PlanSignature(7));
        assert_eq!(full.group_runtimes(&a), store.group_runtimes(&a));
        assert_eq!(full.group_rows(&a).len(), 2);

        let only_a = store.group_view(&a);
        assert_eq!(only_a.len(), 2);
        assert_eq!(only_a.n_groups(), 1);
        assert_eq!(only_a.group_runtimes(&a), vec![10.0, 12.0]);
        let missing = JobGroupKey::new("zzz", PlanSignature(0));
        let empty = store.group_view(&missing);
        assert!(empty.is_empty());
        assert_eq!(empty.n_groups(), 0);
        assert_eq!(empty.group_len(&a), 0);
    }

    #[test]
    fn group_iteration_is_sorted() {
        let store: TelemetryStore = vec![
            row("zeta", 0, 0.0, 1.0),
            row("alpha", 0, 1.0, 1.0),
            row("mid", 0, 2.0, 1.0),
        ]
        .into_iter()
        .collect();
        let names: Vec<&str> = store
            .group_keys()
            .map(|k| k.normalized_name.as_str())
            .collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
