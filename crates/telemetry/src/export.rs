//! CSV export / import of telemetry stores.
//!
//! Serde-free persistence so campaigns can be captured once and re-analyzed
//! (or inspected with standard tools) without re-running the simulator. The
//! format is a flat CSV with one row per job instance; array-valued fields
//! (per-SKU fractions/counts/utilizations) are expanded into suffixed
//! columns.

use std::io::{BufRead, Write};

use rv_scope::{JobGroupKey, PlanSignature};

use crate::record::JobTelemetry;
use crate::store::TelemetryStore;

const N_SKUS: usize = 6;
const N_OPS: usize = 18;
/// Fixed column count of the format: 26 scalars + operator counts + four
/// per-SKU arrays.
const N_COLS: usize = 26 + N_OPS + 4 * N_SKUS;

/// Writes the store as CSV. The group key is stored as two columns
/// (normalized name + hex signature); the operator-count vector and every
/// per-SKU array become suffixed columns.
pub fn write_store<W: Write>(store: &TelemetryStore, out: &mut W) -> std::io::Result<()> {
    let mut header: Vec<String> = vec![
        "group_name".into(),
        "signature".into(),
        "template_id".into(),
        "seq".into(),
        "submit_time_s".into(),
        "runtime_s".into(),
        "disrupted".into(),
        "n_stages".into(),
        "critical_path".into(),
        "total_base_vertices".into(),
        "estimated_rows".into(),
        "estimated_cost".into(),
        "estimated_input_gb".into(),
        "data_read_gb".into(),
        "temp_data_gb".into(),
        "total_vertices".into(),
        "allocated_tokens".into(),
        "token_min".into(),
        "token_max".into(),
        "token_avg".into(),
        "spare_avg".into(),
        "spare_preempted".into(),
        "cpu_seconds".into(),
        "peak_memory_gb".into(),
        "cluster_load".into(),
        "spare_fraction".into(),
    ];
    for i in 0..N_OPS {
        header.push(format!("op_{i}"));
    }
    for i in 0..N_SKUS {
        header.push(format!("sku_frac_{i}"));
    }
    for i in 0..N_SKUS {
        header.push(format!("sku_verts_{i}"));
    }
    for i in 0..N_SKUS {
        header.push(format!("util_mean_{i}"));
    }
    for i in 0..N_SKUS {
        header.push(format!("util_std_{i}"));
    }
    writeln!(out, "{}", header.join(","))?;

    for r in store.rows() {
        let mut fields: Vec<String> = vec![
            r.group.normalized_name.clone(),
            format!("{:016x}", r.group.signature.0),
            r.template_id.to_string(),
            r.seq.to_string(),
            r.submit_time_s.to_string(),
            r.runtime_s.to_string(),
            (r.disrupted as u8).to_string(),
            r.n_stages.to_string(),
            r.critical_path.to_string(),
            r.total_base_vertices.to_string(),
            r.estimated_rows.to_string(),
            r.estimated_cost.to_string(),
            r.estimated_input_gb.to_string(),
            r.data_read_gb.to_string(),
            r.temp_data_gb.to_string(),
            r.total_vertices.to_string(),
            r.allocated_tokens.to_string(),
            r.token_min.to_string(),
            r.token_max.to_string(),
            r.token_avg.to_string(),
            r.spare_avg.to_string(),
            (r.spare_preempted as u8).to_string(),
            r.cpu_seconds.to_string(),
            r.peak_memory_gb.to_string(),
            r.cluster_load.to_string(),
            r.spare_fraction.to_string(),
        ];
        for i in 0..N_OPS {
            fields.push(r.operator_counts.get(i).copied().unwrap_or(0).to_string());
        }
        for v in r.sku_fractions {
            fields.push(v.to_string());
        }
        for v in r.sku_vertex_counts {
            fields.push(v.to_string());
        }
        for v in r.sku_util_mean {
            fields.push(v.to_string());
        }
        for v in r.sku_util_std {
            fields.push(v.to_string());
        }
        writeln!(out, "{}", fields.join(","))?;
    }
    Ok(())
}

/// Parse error for telemetry CSV.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Reads a store previously written by [`write_store`].
pub fn read_store<R: BufRead>(input: R) -> Result<TelemetryStore, ParseError> {
    let mut store = TelemetryStore::new();
    let mut lines = input.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseError {
        line: 1,
        message: "missing header".into(),
    })?;
    let header = header.map_err(|e| ParseError {
        line: 1,
        message: e.to_string(),
    })?;
    // Validate against the *schema*, not the header, so a malformed header
    // cannot smuggle short rows past the field-index bounds.
    let header_cols = header.split(',').count();
    if header_cols != N_COLS {
        return Err(ParseError {
            line: 1,
            message: format!("expected {N_COLS} columns, header has {header_cols}"),
        });
    }
    let expected_cols = N_COLS;

    for (i, line) in lines {
        let line_no = i + 1;
        let line = line.map_err(|e| ParseError {
            line: line_no,
            message: e.to_string(),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != expected_cols {
            return Err(ParseError {
                line: line_no,
                message: format!("expected {expected_cols} fields, got {}", fields.len()),
            });
        }
        let err = |message: String| ParseError {
            line: line_no,
            message,
        };
        let pf = |s: &str| -> Result<f64, ParseError> {
            s.parse().map_err(|_| err(format!("bad float {s:?}")))
        };
        let pu = |s: &str| -> Result<u64, ParseError> {
            s.parse().map_err(|_| err(format!("bad integer {s:?}")))
        };

        let signature = u64::from_str_radix(fields[1], 16)
            .map_err(|_| err(format!("bad signature {:?}", fields[1])))?;
        let mut idx = 26;
        let mut operator_counts = Vec::with_capacity(N_OPS);
        for _ in 0..N_OPS {
            operator_counts.push(pu(fields[idx])? as u32);
            idx += 1;
        }
        let take_f6 = |idx: &mut usize| -> Result<[f64; N_SKUS], ParseError> {
            let mut a = [0.0; N_SKUS];
            for slot in &mut a {
                *slot = pf(fields[*idx])?;
                *idx += 1;
            }
            Ok(a)
        };
        let sku_fractions = take_f6(&mut idx)?;
        let mut sku_vertex_counts = [0u64; N_SKUS];
        for slot in &mut sku_vertex_counts {
            *slot = pu(fields[idx])?;
            idx += 1;
        }
        let sku_util_mean = take_f6(&mut idx)?;
        let sku_util_std = take_f6(&mut idx)?;

        store.push(JobTelemetry {
            group: JobGroupKey::new(fields[0], PlanSignature(signature)),
            template_id: pu(fields[2])? as u32,
            seq: pu(fields[3])? as u32,
            submit_time_s: pf(fields[4])?,
            runtime_s: pf(fields[5])?,
            disrupted: fields[6] == "1",
            n_stages: pu(fields[7])? as u32,
            critical_path: pu(fields[8])? as u32,
            total_base_vertices: pu(fields[9])? as u32,
            estimated_rows: pf(fields[10])?,
            estimated_cost: pf(fields[11])?,
            estimated_input_gb: pf(fields[12])?,
            data_read_gb: pf(fields[13])?,
            temp_data_gb: pf(fields[14])?,
            total_vertices: pu(fields[15])?,
            allocated_tokens: pu(fields[16])? as u32,
            token_min: pu(fields[17])? as u32,
            token_max: pu(fields[18])? as u32,
            token_avg: pf(fields[19])?,
            spare_avg: pf(fields[20])?,
            spare_preempted: fields[21] == "1",
            cpu_seconds: pf(fields[22])?,
            peak_memory_gb: pf(fields[23])?,
            cluster_load: pf(fields[24])?,
            spare_fraction: pf(fields[25])?,
            operator_counts,
            sku_fractions,
            sku_vertex_counts,
            sku_util_mean,
            sku_util_std,
        });
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect_telemetry, CampaignConfig};
    use rv_scope::{GeneratorConfig, WorkloadGenerator};
    use rv_sim::{Cluster, ClusterConfig, SimConfig};

    fn campaign() -> TelemetryStore {
        let generator = WorkloadGenerator::new(GeneratorConfig {
            n_templates: 8,
            seed: 5,
            ..Default::default()
        });
        let cluster = Cluster::new(ClusterConfig::default());
        collect_telemetry(
            &generator,
            &cluster,
            &SimConfig::default(),
            &CampaignConfig {
                window_days: 2.0,
                ..Default::default()
            },
        )
        .expect("valid campaign config")
    }

    #[test]
    fn round_trip_preserves_every_row() {
        let store = campaign();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).expect("write");
        let restored = read_store(std::io::BufReader::new(&buf[..])).expect("parse");
        assert_eq!(restored.len(), store.len());
        assert_eq!(restored.n_groups(), store.n_groups());
        for (a, b) in store.rows().iter().zip(restored.rows()) {
            assert_eq!(a, b, "row mismatch after round trip");
        }
    }

    #[test]
    fn rejects_truncated_rows() {
        let store = campaign();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).expect("write");
        let mut text = String::from_utf8(buf).expect("utf8");
        // Chop fields off the last data line.
        let cut = text.trim_end().rfind(',').expect("has commas");
        text.truncate(cut);
        text.push('\n');
        let err = read_store(std::io::BufReader::new(text.as_bytes())).expect_err("must fail");
        assert!(err.message.contains("expected"), "{err}");
    }

    #[test]
    fn rejects_garbage_numbers() {
        // A short header (and short rows matching it) must be rejected
        // before any field indexing happens.
        let bad = "a,b\nx,y\n";
        assert!(read_store(std::io::BufReader::new(bad.as_bytes())).is_err());
        // Correct width but non-numeric payload must also error.
        let store = campaign();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).expect("write");
        let mut text = String::from_utf8(buf).expect("utf8");
        let header_end = text.find('\n').expect("has header");
        let n_cols = text[..header_end].split(',').count();
        text.truncate(header_end + 1);
        text.push_str(&vec!["junk"; n_cols].join(","));
        text.push('\n');
        assert!(read_store(std::io::BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn empty_store_round_trips() {
        let store = TelemetryStore::new();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).expect("write");
        let restored = read_store(std::io::BufReader::new(&buf[..])).expect("parse");
        assert!(restored.is_empty());
    }
}
