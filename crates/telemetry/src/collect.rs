//! Measurement campaign: run a workload through the simulator and capture
//! fully-joined telemetry rows.
//!
//! This is the synthetic analogue of operating Cosmos for the paper's
//! observation intervals (Table 1): every instance of every recurring
//! template is submitted, scheduled, and executed, and one [`JobTelemetry`]
//! row is recorded per run.

use rv_scope::job::stream_rng;
use rv_scope::{CardinalityEstimator, WorkloadGenerator};
use rv_sim::exec::ExecOverrides;
use rv_sim::{simulate_job, Cluster, SimConfig};

use crate::record::JobTelemetry;
use crate::store::TelemetryStore;

/// Configuration of a telemetry-collection campaign.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Length of the observation window, in days.
    pub window_days: f64,
    /// Optimizer estimation-error model.
    pub estimator: CardinalityEstimator,
    /// Fraction of actual data read that is temp (intermediate) data.
    pub temp_data_fraction: f64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            window_days: 28.0,
            estimator: CardinalityEstimator::default(),
            temp_data_fraction: 0.35,
        }
    }
}

/// Why a campaign was rejected before any job was simulated, or why an
/// instance could not be captured.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The simulator configuration failed [`SimConfig::validate`].
    Sim(String),
    /// `window_days` was not a positive finite number.
    Window(f64),
    /// `temp_data_fraction` was outside `[0, 1)`.
    TempDataFraction(f64),
    /// An instance referenced a template id the generator does not have
    /// (e.g. replayed from a stale artifact).
    UnknownTemplate {
        /// The unresolvable template id.
        template_id: u32,
    },
    /// An instance's simulation task failed (a panic caught by the pool's
    /// isolation, or an injected error) and did not recover within the
    /// retry budget.
    Instance {
        /// Index of the failed instance in submission order.
        index: usize,
        /// What the task reported.
        message: String,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Sim(msg) => write!(f, "invalid sim config: {msg}"),
            Self::Window(v) => write!(f, "window must be positive, got {v}"),
            Self::TempDataFraction(v) => {
                write!(f, "temp_data_fraction must be in [0, 1), got {v}")
            }
            Self::UnknownTemplate { template_id } => {
                write!(f, "instance references unknown template id {template_id}")
            }
            Self::Instance { index, message } => {
                write!(f, "campaign instance {index} failed: {message}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// Runs every instance of `generator`'s templates over the campaign window
/// on `cluster` and returns the captured telemetry.
///
/// Instances simulate on the shared `rv-par` pool (one task per job run —
/// every run draws from its own seeded RNG streams, so tasks are
/// independent) and rows are appended in instance order, making the store
/// byte-identical at any thread count.
///
/// Tasks run panic-isolated ([`rv_par::par_map_isolated`]): a panicking or
/// erroring instance fails only its own slot and is retried serially up to
/// three times (`retry.instance` counts the attempts spent). Because each
/// instance's randomness is a pure function of its seeded streams, a retry
/// computes exactly the row the original attempt would have.
///
/// # Errors
/// Returns [`CampaignError`] if `sim` fails validation, `window_days` is
/// not positive and finite, `temp_data_fraction` is outside `[0, 1)`, an
/// instance names an unknown template id, or an instance keeps failing
/// after the retry budget.
pub fn collect_telemetry(
    generator: &WorkloadGenerator,
    cluster: &Cluster,
    sim: &SimConfig,
    campaign: &CampaignConfig,
) -> Result<TelemetryStore, CampaignError> {
    sim.validate().map_err(CampaignError::Sim)?;
    if !(campaign.window_days > 0.0 && campaign.window_days.is_finite()) {
        return Err(CampaignError::Window(campaign.window_days));
    }
    if !(0.0..1.0).contains(&campaign.temp_data_fraction) {
        return Err(CampaignError::TempDataFraction(campaign.temp_data_fraction));
    }

    let window_s = campaign.window_days * 86_400.0;
    let instances = generator.instances_within(window_s);

    let run_one = |i: usize| -> Result<JobTelemetry, CampaignError> {
        let instance = &instances[i];
        match rv_par::fault::check("campaign.instance", i as u64) {
            Some(rv_par::fault::TaskFault::Panic) => {
                panic!("injected fault: campaign instance {i} panicked")
            }
            Some(rv_par::fault::TaskFault::Error) => {
                return Err(CampaignError::Instance {
                    index: i,
                    message: "injected fault: instance error".to_string(),
                })
            }
            None => {}
        }
        let template =
            generator
                .template(instance.template_id)
                .ok_or(CampaignError::UnknownTemplate {
                    template_id: instance.template_id,
                })?;
        // Optimizer estimates are drawn per run: parameters change between
        // recurrences, so so do the estimates.
        let mut est_rng = stream_rng(
            sim.seed ^ 0x0e57_1a70,
            ((instance.template_id as u64) << 32) | instance.seq as u64,
        );
        let estimate = campaign
            .estimator
            .estimate(&template.plan, instance.input_gb, &mut est_rng);

        let run = simulate_job(template, instance, cluster, sim, ExecOverrides::default());

        let util = cluster.sku_utilization(instance.submit_time_s);
        let mut sku_util_mean = [0.0; 6];
        let mut sku_util_std = [0.0; 6];
        for (i, u) in util.iter().enumerate() {
            sku_util_mean[i] = u.mean;
            sku_util_std[i] = u.std;
        }

        let data_read_gb = instance.input_gb;
        let temp_data_gb =
            data_read_gb * campaign.temp_data_fraction / (1.0 - campaign.temp_data_fraction);

        Ok(JobTelemetry::from_run(
            template.group_key(),
            template.id,
            instance.seq,
            instance.submit_time_s,
            &run,
            template.plan.operator_counts().as_slice().to_vec(),
            template.plan.n_stages() as u32,
            template.plan.critical_path_len() as u32,
            template.plan.total_base_vertices(),
            estimate.estimated_rows,
            estimate.estimated_cost,
            estimate.estimated_input_gb,
            data_read_gb,
            temp_data_gb,
            sku_util_mean,
            sku_util_std,
            cluster.diurnal_load(instance.submit_time_s),
            cluster.spare_fraction(instance.submit_time_s),
        ))
    };

    let flatten = |r: Result<Result<JobTelemetry, CampaignError>, rv_par::TaskPanic>| match r {
        Ok(inner) => inner,
        Err(p) => Err(CampaignError::Instance {
            index: p.index,
            message: p.message,
        }),
    };
    let mut rows: Vec<Result<JobTelemetry, CampaignError>> =
        rv_par::par_map_isolated(instances.len(), 0, run_one)
            .into_iter()
            .map(flatten)
            .collect();

    // Bounded serial retries: injected faults are transient by contract
    // (consumed within the budget), so failed slots recover here; a
    // persistent failure surfaces below after the budget is spent.
    const MAX_INSTANCE_RETRIES: usize = 3;
    for _ in 0..MAX_INSTANCE_RETRIES {
        let failed: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_err().then_some(i))
            .collect();
        if failed.is_empty() {
            break;
        }
        for i in failed {
            rv_obs::counter("retry.instance").inc();
            rows[i] = flatten(rv_par::catch_task(i, || run_one(i)));
        }
    }

    let mut store = TelemetryStore::with_capacity(rows.len());
    for row in rows {
        store.push(row?);
    }
    if rv_obs::enabled() {
        rv_obs::gauge("sim.campaign.rows").set(store.len() as f64);
        rv_obs::emit(
            "sim.campaign",
            &[
                ("rows", rv_obs::FieldValue::from(store.len())),
                ("groups", rv_obs::FieldValue::from(store.n_groups())),
                (
                    "window_days",
                    rv_obs::FieldValue::from(campaign.window_days),
                ),
            ],
        );
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_scope::GeneratorConfig;
    use rv_sim::ClusterConfig;

    fn small_campaign() -> TelemetryStore {
        let generator = WorkloadGenerator::new(GeneratorConfig {
            n_templates: 12,
            seed: 3,
            late_start_fraction: 0.0, // keep every template inside the window
            ..Default::default()
        });
        let cluster = Cluster::new(ClusterConfig::default());
        collect_telemetry(
            &generator,
            &cluster,
            &SimConfig::default(),
            &CampaignConfig {
                window_days: 3.0,
                ..Default::default()
            },
        )
        .expect("valid campaign config")
    }

    #[test]
    fn captures_all_instances() {
        let store = small_campaign();
        assert!(store.len() > 12 * 3, "too few rows: {}", store.len());
        // Groups = templates incl. counterfactual twins (each template has
        // a distinct name).
        assert!(store.n_groups() >= 12);
    }

    #[test]
    fn rows_are_time_ordered_and_valid() {
        let store = small_campaign();
        let rows = store.rows();
        for w in rows.windows(2) {
            assert!(w[0].submit_time_s <= w[1].submit_time_s);
        }
        for r in rows {
            assert!(r.runtime_s > 0.0);
            assert!(r.estimated_input_gb > 0.0);
            assert!(r.data_read_gb > 0.0);
            assert!(r.temp_data_gb > 0.0);
            assert!(r.token_max >= r.token_min);
            assert!((0.0..=1.0).contains(&r.cluster_load));
        }
    }

    #[test]
    fn deterministic() {
        let a = small_campaign();
        let b = small_campaign();
        assert_eq!(a.rows().len(), b.rows().len());
        for (x, y) in a.rows().iter().zip(b.rows()) {
            assert_eq!(x.runtime_s, y.runtime_s);
        }
    }

    #[test]
    fn estimates_vary_across_recurrences() {
        let store = small_campaign();
        let group = store.group_keys().next().expect("has groups").clone();
        let runs = store.group_rows(&group);
        assert!(runs.len() >= 3);
        let first = runs[0].estimated_input_gb;
        assert!(
            runs.iter().any(|r| r.estimated_input_gb != first),
            "optimizer estimates should vary run to run"
        );
    }

    #[test]
    fn rejects_empty_window() {
        let generator = WorkloadGenerator::new(GeneratorConfig {
            n_templates: 1,
            ..Default::default()
        });
        let cluster = Cluster::new(ClusterConfig::default());
        let err = collect_telemetry(
            &generator,
            &cluster,
            &SimConfig::default(),
            &CampaignConfig {
                window_days: 0.0,
                ..Default::default()
            },
        )
        .expect_err("zero-day window must be rejected");
        assert_eq!(err, CampaignError::Window(0.0));
        assert!(err.to_string().contains("window must be positive"));
    }

    #[test]
    fn rejects_bad_temp_data_fraction() {
        let generator = WorkloadGenerator::new(GeneratorConfig {
            n_templates: 1,
            ..Default::default()
        });
        let cluster = Cluster::new(ClusterConfig::default());
        let err = collect_telemetry(
            &generator,
            &cluster,
            &SimConfig::default(),
            &CampaignConfig {
                temp_data_fraction: 1.0,
                ..Default::default()
            },
        )
        .expect_err("fraction of 1.0 would divide by zero");
        assert_eq!(err, CampaignError::TempDataFraction(1.0));
    }
}
