//! # rv-telemetry — telemetry capture, datasets, and features
//!
//! The paper's data layer (§3.3) joins three sources: compile-time plan
//! information from the optimizer (Peregrine \[32\]), token-usage information
//! from execution logs, and SKU/machine-load information (KEA \[83\]). This
//! crate is the synthetic equivalent:
//!
//! * [`record`] — one fully-joined telemetry row per job instance;
//! * [`collect`] — runs a workload through the simulator and captures rows
//!   (the "measurement campaign" producing our D1/D2/D3 stand-ins);
//! * [`store`] — a group-indexed store over telemetry rows;
//! * [`dataset`] — time-window + support-threshold dataset assembly
//!   mirroring Table 1;
//! * [`features`] — the §5.1 feature classes: intrinsic plan features,
//!   historic resource statistics, and submit-time environment signals;
//! * [`export`] — serde-free CSV persistence of captured campaigns.

pub mod collect;
pub mod dataset;
pub mod export;
pub mod features;
pub mod record;
pub mod store;

pub use collect::{collect_telemetry, CampaignConfig, CampaignError};
pub use dataset::{Dataset, DatasetSpec, GroupHistory, GroupStats};
pub use export::{read_store, write_store};
pub use features::{FeatureExtractor, FeatureSchema, FEATURE_NAMES};
pub use record::JobTelemetry;
pub use store::{StoreView, TelemetryStore};
