//! The fully-joined telemetry row for one job instance.
//!
//! §3.3: "joining all this information together by matching on the job ID,
//! name of the machine that executes each vertex, and the corresponding
//! vertex start/end time". Our simulator emits the joined row directly; the
//! fields mirror what the three Cosmos sources provide.

use rv_scope::JobGroupKey;
use rv_sim::{JobRunResult, SkuGeneration};

/// One job instance's telemetry, after joining plan, execution-log, and
/// machine-level sources.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTelemetry {
    // --- identity ---------------------------------------------------------
    /// Job group (normalized name + plan signature).
    pub group: JobGroupKey,
    /// Template id (internal to the generator; not a model feature).
    pub template_id: u32,
    /// Recurrence index within the group.
    pub seq: u32,
    /// Submission time, seconds from the campaign start.
    pub submit_time_s: f64,

    // --- outcome ----------------------------------------------------------
    /// End-to-end runtime, seconds.
    pub runtime_s: f64,
    /// Whether a rare disruption hit this run (diagnostic only — *never* a
    /// model feature, since it is unknown at compile time).
    pub disrupted: bool,

    // --- intrinsic / optimizer (Peregrine-like, compile time) -------------
    /// Per-kind operator counts (fixed-width, see `OperatorKind::ALL`).
    pub operator_counts: Vec<u32>,
    /// Number of plan stages.
    pub n_stages: u32,
    /// Critical path length in stages.
    pub critical_path: u32,
    /// Sum of base (reference-size) vertex parallelism over stages.
    pub total_base_vertices: u32,
    /// Optimizer-estimated rows for this run.
    pub estimated_rows: f64,
    /// Optimizer-estimated cost for this run.
    pub estimated_cost: f64,
    /// Optimizer-estimated input, GB.
    pub estimated_input_gb: f64,

    // --- execution log (actuals, known only after the run) ----------------
    /// Actual data read, GB.
    pub data_read_gb: f64,
    /// Intermediate (temp) data read, GB.
    pub temp_data_gb: f64,
    /// Vertices launched.
    pub total_vertices: u64,
    /// Guaranteed token allocation.
    pub allocated_tokens: u32,
    /// Minimum tokens in use over the run.
    pub token_min: u32,
    /// Peak tokens in use over the run.
    pub token_max: u32,
    /// Time-weighted average tokens in use.
    pub token_avg: f64,
    /// Time-weighted average spare tokens in use.
    pub spare_avg: f64,
    /// Whether the run's spare tokens were preempted mid-run.
    pub spare_preempted: bool,
    /// Total CPU-seconds across all containers (the §5.1 "per container
    /// usage" counter the paper anticipates adding).
    pub cpu_seconds: f64,
    /// Peak memory across concurrent containers, GB.
    pub peak_memory_gb: f64,
    /// Fraction of vertices per SKU.
    pub sku_fractions: [f64; SkuGeneration::COUNT],
    /// Vertex count per SKU.
    pub sku_vertex_counts: [u64; SkuGeneration::COUNT],

    // --- machine level (KEA-like, at submit time) --------------------------
    /// Mean CPU utilization per SKU at submission.
    pub sku_util_mean: [f64; SkuGeneration::COUNT],
    /// Utilization spread per SKU at submission.
    pub sku_util_std: [f64; SkuGeneration::COUNT],
    /// Cluster-wide diurnal load level at submission.
    pub cluster_load: f64,
    /// Spare-capacity fraction at submission.
    pub spare_fraction: f64,
}

impl JobTelemetry {
    /// Builds a row from a simulated run plus its compile-time context.
    #[allow(clippy::too_many_arguments)]
    pub fn from_run(
        group: JobGroupKey,
        template_id: u32,
        seq: u32,
        submit_time_s: f64,
        run: &JobRunResult,
        operator_counts: Vec<u32>,
        n_stages: u32,
        critical_path: u32,
        total_base_vertices: u32,
        estimated_rows: f64,
        estimated_cost: f64,
        estimated_input_gb: f64,
        data_read_gb: f64,
        temp_data_gb: f64,
        sku_util_mean: [f64; SkuGeneration::COUNT],
        sku_util_std: [f64; SkuGeneration::COUNT],
        cluster_load: f64,
        spare_fraction: f64,
    ) -> Self {
        Self {
            group,
            template_id,
            seq,
            submit_time_s,
            runtime_s: run.runtime_s,
            disrupted: run.disruption_factor.is_some(),
            operator_counts,
            n_stages,
            critical_path,
            total_base_vertices,
            estimated_rows,
            estimated_cost,
            estimated_input_gb,
            data_read_gb,
            temp_data_gb,
            total_vertices: run.total_vertices,
            allocated_tokens: run.allocated_tokens,
            token_min: run.skyline.min(),
            token_max: run.skyline.peak(),
            token_avg: run.skyline.average(),
            spare_avg: run.skyline.average_spare(),
            spare_preempted: run.spare_preempted,
            cpu_seconds: run.cpu_seconds,
            peak_memory_gb: run.peak_memory_gb,
            sku_fractions: run.sku_usage.fractions,
            sku_vertex_counts: run.sku_usage.vertex_counts,
            sku_util_mean,
            sku_util_std,
            cluster_load,
            spare_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_scope::PlanSignature;

    /// Minimal smoke test that the row type is constructible and coherent;
    /// end-to-end construction is covered by `collect` tests.
    #[test]
    fn row_field_coherence() {
        let row = JobTelemetry {
            group: JobGroupKey::new("j", PlanSignature(1)),
            template_id: 0,
            seq: 0,
            submit_time_s: 0.0,
            runtime_s: 10.0,
            disrupted: false,
            operator_counts: vec![0; 18],
            n_stages: 3,
            critical_path: 3,
            total_base_vertices: 10,
            estimated_rows: 100.0,
            estimated_cost: 5.0,
            estimated_input_gb: 1.0,
            data_read_gb: 1.2,
            temp_data_gb: 0.3,
            total_vertices: 12,
            allocated_tokens: 8,
            token_min: 2,
            token_max: 10,
            token_avg: 6.0,
            spare_avg: 1.0,
            spare_preempted: false,
            cpu_seconds: 10.0,
            peak_memory_gb: 0.5,
            sku_fractions: [0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            sku_vertex_counts: [0, 0, 12, 0, 0, 0],
            sku_util_mean: [0.5; 6],
            sku_util_std: [0.1; 6],
            cluster_load: 0.5,
            spare_fraction: 0.3,
        };
        assert!(row.token_max >= row.token_min);
        assert!(row.token_avg <= row.token_max as f64);
        let frac_sum: f64 = row.sku_fractions.iter().sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
        assert_eq!(
            row.sku_vertex_counts.iter().sum::<u64>(),
            row.total_vertices
        );
    }
}
