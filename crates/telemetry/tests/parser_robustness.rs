//! The telemetry CSV parser must reject — never panic on — arbitrary input.

use proptest::prelude::*;

use rv_telemetry::read_store;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn read_store_never_panics(input in "\\PC{0,400}") {
        // Any outcome is fine; a panic is not.
        let _ = read_store(std::io::BufReader::new(input.as_bytes()));
    }

    #[test]
    fn read_store_never_panics_on_csvish_noise(
        rows in prop::collection::vec(
            prop::collection::vec("[-0-9a-fx.,]{0,12}", 0..70),
            0..8,
        )
    ) {
        let text: String = rows
            .iter()
            .map(|r| r.join(","))
            .collect::<Vec<_>>()
            .join("\n");
        let _ = read_store(std::io::BufReader::new(text.as_bytes()));
    }
}
