//! Property-based tests for the cluster-simulator substrate.

use proptest::prelude::*;

use rv_sim::{SparePolicy, TokenSkyline};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn spare_grant_respects_cap(
        allocated in 1u32..1000,
        affinity in 0.0..1.0f64,
        spare_fraction in 0.0..1.0f64,
        cap in 1.0..5.0f64,
    ) {
        let p = SparePolicy {
            enabled: true,
            cap_multiplier: cap,
            ..Default::default()
        };
        let grant = p.grant(allocated, affinity, spare_fraction);
        let max_spare = ((cap - 1.0) * allocated as f64).floor();
        prop_assert!(grant as f64 <= max_spare + 1e-9);
    }

    #[test]
    fn skyline_stats_are_ordered(
        allocated in 1u32..100,
        segments in prop::collection::vec((1.0..100.0f64, 1u32..300), 1..20),
    ) {
        let mut sky = TokenSkyline::new(allocated);
        let mut t = 0.0;
        for (duration, tokens) in &segments {
            sky.push(t, t + duration, *tokens);
            t += duration;
        }
        prop_assert!(sky.min() <= sky.peak());
        prop_assert!(sky.average() >= sky.min() as f64 - 1e-9);
        prop_assert!(sky.average() <= sky.peak() as f64 + 1e-9);
        prop_assert!(sky.average_spare() <= sky.average());
        prop_assert!((sky.duration() - t).abs() < 1e-6);
    }
}
