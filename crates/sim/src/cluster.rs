//! The shared cluster: a heterogeneous fleet plus its aggregate load state.
//!
//! Provides the two environment signals the paper's features need (§5.1):
//! per-SKU CPU-utilization statistics at submission time, and the cluster's
//! spare-capacity level that governs preemptive spare tokens (§3.2).

use crate::machine::Machine;
use crate::sku::{SkuCatalog, SkuGeneration};

const DAY_S: f64 = 86_400.0;

/// Fleet provisioning: how many machines of each generation are racked.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Machines per generation, indexed by [`SkuGeneration::index`].
    pub machines_per_sku: [u32; SkuGeneration::COUNT],
    /// SKU hardware catalog.
    pub catalog: SkuCatalog,
    /// Mean diurnal utilization level in `\[0, 1\]`.
    pub mean_load: f64,
    /// Amplitude of the diurnal (24 h) load swing.
    pub diurnal_amplitude: f64,
    /// Spread of persistent per-machine load offsets.
    pub machine_offset_spread: f64,
    /// Amplitude of per-machine load noise.
    pub machine_noise_amp: f64,
    /// Seed for machine-level load processes.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            // An aging fleet: plenty of Gen4/Gen5, fewer Gen3/Gen6.
            machines_per_sku: [40, 60, 120, 100, 80, 40],
            catalog: SkuCatalog::cosmos_like(),
            mean_load: 0.55,
            diurnal_amplitude: 0.2,
            machine_offset_spread: 0.08,
            machine_noise_amp: 0.25,
            seed: 0xc0ffee,
        }
    }
}

/// Utilization statistics of one SKU's machines at a point in time —
/// the paper's "CPU utilization level of the corresponding machines in each
/// SKU at the job submission time".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkuUtilization {
    /// Which generation these statistics describe.
    pub generation: SkuGeneration,
    /// Mean utilization across the SKU's machines, `\[0, 1\]`.
    pub mean: f64,
    /// Standard deviation of utilization across the SKU's machines.
    pub std: f64,
}

/// A heterogeneous shared cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
    machines: Vec<Machine>,
    /// Machine index ranges per SKU (contiguous by construction).
    sku_ranges: [(usize, usize); SkuGeneration::COUNT],
    total_tokens: u64,
}

impl Cluster {
    /// Builds the fleet described by `config`.
    pub fn new(config: ClusterConfig) -> Self {
        config.catalog.validate().expect("valid SKU catalog");
        assert!(
            config.machines_per_sku.iter().any(|&n| n > 0),
            "cluster needs at least one machine"
        );
        assert!(
            (0.0..=1.0).contains(&config.mean_load),
            "mean_load must be in [0, 1]"
        );
        let mut machines = Vec::new();
        let mut sku_ranges = [(0usize, 0usize); SkuGeneration::COUNT];
        let mut total_tokens = 0u64;
        for g in SkuGeneration::ALL {
            let start = machines.len();
            let spec = config.catalog.spec(g);
            for _ in 0..config.machines_per_sku[g.index()] {
                machines.push(Machine::new(
                    machines.len() as u32,
                    g,
                    spec.tokens_per_machine,
                    config.seed,
                    config.machine_offset_spread,
                    config.machine_noise_amp,
                ));
                total_tokens += spec.tokens_per_machine as u64;
            }
            sku_ranges[g.index()] = (start, machines.len());
        }
        Self {
            config,
            machines,
            sku_ranges,
            total_tokens,
        }
    }

    /// The provisioning configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// All machines, grouped contiguously by SKU.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// Machines of one generation.
    pub fn machines_of(&self, g: SkuGeneration) -> &[Machine] {
        let (lo, hi) = self.sku_ranges[g.index()];
        &self.machines[lo..hi]
    }

    /// Total token slots across the fleet.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Cluster-wide diurnal load level at time `t` (seconds), in `\[0, 1\]`:
    /// peak in the "working hours" part of each simulated day.
    pub fn diurnal_load(&self, t: f64) -> f64 {
        let phase = std::f64::consts::TAU * (t / DAY_S - 0.25);
        (self.config.mean_load + self.config.diurnal_amplitude * phase.sin()).clamp(0.0, 1.0)
    }

    /// Per-SKU utilization statistics at time `t` — the submit-time
    /// environment features of §5.1. Empty SKUs report zero mean/std.
    pub fn sku_utilization(&self, t: f64) -> [SkuUtilization; SkuGeneration::COUNT] {
        let d = self.diurnal_load(t);
        let mut out = [SkuUtilization {
            generation: SkuGeneration::Gen3,
            mean: 0.0,
            std: 0.0,
        }; SkuGeneration::COUNT];
        for g in SkuGeneration::ALL {
            let ms = self.machines_of(g);
            let (mean, std) = if ms.is_empty() {
                (0.0, 0.0)
            } else {
                let utils: Vec<f64> = ms.iter().map(|m| m.utilization(t, d)).collect();
                let mean = utils.iter().sum::<f64>() / utils.len() as f64;
                let var =
                    utils.iter().map(|u| (u - mean) * (u - mean)).sum::<f64>() / utils.len() as f64;
                (mean, var.sqrt())
            };
            out[g.index()] = SkuUtilization {
                generation: g,
                mean,
                std,
            };
        }
        out
    }

    /// Fraction of the fleet's tokens that are idle and eligible to be
    /// handed out as preemptive spare tokens at time `t` (§3.2): high when
    /// the cluster is quiet, approaching zero at peak load.
    pub fn spare_fraction(&self, t: f64) -> f64 {
        (1.0 - self.diurnal_load(t)).clamp(0.0, 1.0) * 0.8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::default())
    }

    #[test]
    fn fleet_sizes_match_config() {
        let c = cluster();
        assert_eq!(c.machines().len(), 440);
        assert_eq!(c.machines_of(SkuGeneration::Gen4).len(), 120);
        for g in SkuGeneration::ALL {
            for m in c.machines_of(g) {
                assert_eq!(m.generation, g);
            }
        }
    }

    #[test]
    fn total_tokens_counted() {
        let c = cluster();
        let expected: u64 = SkuGeneration::ALL
            .iter()
            .map(|&g| {
                c.config().machines_per_sku[g.index()] as u64
                    * c.config().catalog.spec(g).tokens_per_machine as u64
            })
            .sum();
        assert_eq!(c.total_tokens(), expected);
    }

    #[test]
    fn diurnal_cycle_has_peak_and_trough() {
        let c = cluster();
        let samples: Vec<f64> = (0..48).map(|i| c.diurnal_load(i as f64 * 1800.0)).collect();
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min > 0.3, "diurnal swing too small: {min}..{max}");
    }

    #[test]
    fn spare_fraction_inverse_of_load() {
        let c = cluster();
        // find peak/trough times
        let peak_t = (0..96)
            .map(|i| i as f64 * 900.0)
            .max_by(|&a, &b| {
                c.diurnal_load(a)
                    .partial_cmp(&c.diurnal_load(b))
                    .expect("finite")
            })
            .expect("non-empty");
        let trough_t = (0..96)
            .map(|i| i as f64 * 900.0)
            .min_by(|&a, &b| {
                c.diurnal_load(a)
                    .partial_cmp(&c.diurnal_load(b))
                    .expect("finite")
            })
            .expect("non-empty");
        assert!(c.spare_fraction(trough_t) > c.spare_fraction(peak_t));
    }

    #[test]
    fn sku_utilization_has_spread() {
        let c = cluster();
        let stats = c.sku_utilization(3_600.0 * 10.0);
        for s in stats {
            assert!((0.0..=1.0).contains(&s.mean));
            assert!(s.std > 0.0, "{} has zero utilization spread", s.generation);
            assert!(s.std < 0.5);
        }
    }

    #[test]
    fn deterministic() {
        let a = cluster().sku_utilization(5_000.0);
        let b = cluster().sku_utilization(5_000.0);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mean, y.mean);
            assert_eq!(x.std, y.std);
        }
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_cluster_rejected() {
        Cluster::new(ClusterConfig {
            machines_per_sku: [0; 6],
            ..Default::default()
        });
    }
}
