//! Token accounting: guaranteed allocations, preemptive spare tokens, and
//! usage skylines.
//!
//! In Cosmos the unit of resource allocation is the *token* (≈ container,
//! §3.2). A job is guaranteed the tokens it (over-)allocates, and may
//! additionally grab preemptive *spare tokens* repurposed from idle
//! capacity \[7\] — capped at a multiple of the allocation (footnote 1). The
//! skyline of Fig 3 (allocated = 66, peak usage = 198) is exactly such a
//! spare-assisted run.

/// Policy governing spare-token grants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparePolicy {
    /// Whether spare tokens are granted at all (what-if Scenario 1 turns
    /// this off).
    pub enabled: bool,
    /// Cap on total tokens as a multiple of the allocation ("the usage of
    /// spare tokens is capped by the allocation": total ≤ cap × allocated).
    pub cap_multiplier: f64,
    /// Probability, at full cluster load, that granted spare tokens are
    /// *preempted* mid-run. Spare tokens are repurposed idle capacity \[7\]:
    /// when guaranteed work arrives they are revoked, which is exactly why
    /// their availability "is difficult to predict" (§3.2). Scaled linearly
    /// by the submit-time load.
    pub preemption_prob_at_full_load: f64,
}

impl Default for SparePolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            cap_multiplier: 3.0,
            preemption_prob_at_full_load: 0.35,
        }
    }
}

impl SparePolicy {
    /// Spare tokens granted to a job given its allocation, its willingness
    /// to use spares (`affinity ∈ \[0, 1\]`), and the cluster's current spare
    /// fraction (`spare_fraction ∈ \[0, 1\]`).
    pub fn grant(&self, allocated: u32, affinity: f64, spare_fraction: f64) -> u32 {
        if !self.enabled || allocated == 0 {
            return 0;
        }
        debug_assert!((0.0..=1.0).contains(&affinity));
        let max_spare = (self.cap_multiplier - 1.0).max(0.0) * allocated as f64;
        (max_spare * affinity * spare_fraction.clamp(0.0, 1.0)).floor() as u32
    }
}

/// A token-usage skyline: piecewise-constant tokens-in-use over time (Fig 3).
#[derive(Debug, Clone, PartialEq)]
pub struct TokenSkyline {
    /// Guaranteed allocation (the dashed line of Fig 3).
    pub allocated: u32,
    /// `(start_s, end_s, tokens_in_use)` segments, contiguous and ordered.
    segments: Vec<(f64, f64, u32)>,
}

impl TokenSkyline {
    /// Creates an empty skyline for a job with the given allocation.
    pub fn new(allocated: u32) -> Self {
        Self {
            allocated,
            segments: Vec::new(),
        }
    }

    /// Appends a segment. Segments must be appended in time order and be
    /// non-empty.
    ///
    /// # Panics
    /// Panics if the segment is degenerate or overlaps the previous one.
    pub fn push(&mut self, start_s: f64, end_s: f64, tokens: u32) {
        assert!(end_s > start_s, "segment must have positive duration");
        if let Some(&(_, prev_end, _)) = self.segments.last() {
            assert!(
                start_s >= prev_end - 1e-9,
                "segments must be appended in time order"
            );
        }
        self.segments.push((start_s, end_s, tokens));
    }

    /// The raw segments.
    pub fn segments(&self) -> &[(f64, f64, u32)] {
        &self.segments
    }

    /// Peak tokens used at any point ("maximum token counts vary by a factor
    /// of 10 within the same job group", §3.2).
    pub fn peak(&self) -> u32 {
        self.segments.iter().map(|&(_, _, n)| n).max().unwrap_or(0)
    }

    /// Minimum tokens used across segments (0 for an empty skyline).
    pub fn min(&self) -> u32 {
        self.segments.iter().map(|&(_, _, n)| n).min().unwrap_or(0)
    }

    /// Time-weighted average token usage.
    pub fn average(&self) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for &(s, e, n) in &self.segments {
            weighted += (e - s) * n as f64;
            total += e - s;
        }
        if total == 0.0 {
            0.0
        } else {
            weighted / total
        }
    }

    /// Time-weighted average of tokens used *beyond* the allocation, i.e.
    /// spare-token consumption.
    pub fn average_spare(&self) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for &(s, e, n) in &self.segments {
            weighted += (e - s) * n.saturating_sub(self.allocated) as f64;
            total += e - s;
        }
        if total == 0.0 {
            0.0
        } else {
            weighted / total
        }
    }

    /// Total duration covered by the skyline.
    pub fn duration(&self) -> f64 {
        match (self.segments.first(), self.segments.last()) {
            (Some(&(s, _, _)), Some(&(_, e, _))) => e - s,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_zero_when_disabled() {
        let p = SparePolicy {
            enabled: false,
            ..Default::default()
        };
        assert_eq!(p.grant(100, 1.0, 1.0), 0);
    }

    #[test]
    fn grant_respects_cap() {
        let p = SparePolicy::default();
        // cap 3x: at most 2x allocation in spares.
        assert_eq!(p.grant(66, 1.0, 1.0), 132);
        assert!(p.grant(66, 1.0, 0.5) <= 66);
    }

    #[test]
    fn grant_scales_with_affinity_and_spares() {
        let p = SparePolicy::default();
        assert!(p.grant(100, 1.0, 0.8) > p.grant(100, 0.3, 0.8));
        assert!(p.grant(100, 0.8, 1.0) > p.grant(100, 0.8, 0.2));
        assert_eq!(p.grant(100, 0.0, 1.0), 0);
        assert_eq!(p.grant(0, 1.0, 1.0), 0);
    }

    #[test]
    fn fig3_like_skyline() {
        // Allocation 66, peak 198 with spares — the Fig 3 shape.
        let mut sky = TokenSkyline::new(66);
        sky.push(0.0, 60.0, 66);
        sky.push(60.0, 120.0, 198);
        sky.push(120.0, 200.0, 40);
        assert_eq!(sky.peak(), 198);
        assert_eq!(sky.min(), 40);
        assert!(sky.average() > 40.0 && sky.average() < 198.0);
        assert_eq!(sky.duration(), 200.0);
        // Spare usage only in the middle segment: (198-66)*60/200 = 39.6
        assert!((sky.average_spare() - 39.6).abs() < 1e-9);
    }

    #[test]
    fn empty_skyline_is_zeroes() {
        let sky = TokenSkyline::new(10);
        assert_eq!(sky.peak(), 0);
        assert_eq!(sky.average(), 0.0);
        assert_eq!(sky.duration(), 0.0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_segments_panic() {
        let mut sky = TokenSkyline::new(10);
        sky.push(10.0, 20.0, 5);
        sky.push(0.0, 5.0, 5);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn degenerate_segment_panics() {
        let mut sky = TokenSkyline::new(10);
        sky.push(10.0, 10.0, 5);
    }
}

#[cfg(test)]
mod preemption_tests {
    use super::*;

    #[test]
    fn default_preemption_prob_is_sane() {
        let p = SparePolicy::default();
        assert!((0.0..=1.0).contains(&p.preemption_prob_at_full_load));
        assert!(p.preemption_prob_at_full_load > 0.0);
    }
}
