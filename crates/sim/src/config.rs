//! Top-level simulation parameters.

use crate::rare::DisruptionModel;
use crate::scheduler::SchedulingPolicy;
use crate::tokens::SparePolicy;

/// Parameters governing the execution physics.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// GB of work one token processes per second on a speed-1.0 SKU.
    pub gb_per_token_second: f64,
    /// Exponent of vertex-count scaling with input size: a run at `s×` the
    /// reference input launches `s^exponent ×` the vertices. Values below 1
    /// reflect that partitioning does not keep up with data growth, so
    /// larger inputs also mean more work per vertex.
    pub vertex_scale_exponent: f64,
    /// Contention coefficient: the service-time multiplier contributed by
    /// machine load is `1 + contention_coeff * load_sensitivity * load²`
    /// (convex — hot machines hurt disproportionately, §3.2).
    pub contention_coeff: f64,
    /// Base log-normal sigma of per-vertex service-time noise; scaled by
    /// SKU jitter factors and the template's UDF jitter.
    pub straggler_sigma: f64,
    /// Queueing-delay coefficient, seconds at full load: submission waits
    /// `queue_coeff * load³ * Exp(1)` seconds before vertices start.
    pub queue_coeff: f64,
    /// Rare-event model.
    pub disruption: DisruptionModel,
    /// Spare-token policy.
    pub spare: SparePolicy,
    /// Vertex placement policy.
    pub scheduling: SchedulingPolicy,
    /// Master seed for per-run randomness.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            gb_per_token_second: 0.12,
            vertex_scale_exponent: 0.6,
            contention_coeff: 1.8,
            straggler_sigma: 0.05,
            queue_coeff: 15.0,
            disruption: DisruptionModel::default(),
            spare: SparePolicy::default(),
            scheduling: SchedulingPolicy::CapacityProportional,
            seed: 0xdeadbeef,
        }
    }
}

impl SimConfig {
    /// Validates that all parameters are physically sensible.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("gb_per_token_second", self.gb_per_token_second),
            ("contention_coeff", self.contention_coeff),
            ("vertex_scale_exponent", self.vertex_scale_exponent),
            ("straggler_sigma", self.straggler_sigma),
            ("queue_coeff", self.queue_coeff),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("{name} must be non-negative and finite"));
            }
        }
        if self.gb_per_token_second == 0.0 {
            return Err("gb_per_token_second must be positive".into());
        }
        if self.spare.cap_multiplier < 1.0 {
            return Err("spare cap_multiplier must be at least 1".into());
        }
        self.disruption
            .validate()
            .map_err(|e| format!("disruption: {e}"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SimConfig::default()
            .validate()
            .expect("default config valid");
    }

    #[test]
    fn rejects_zero_rate() {
        let c = SimConfig {
            gb_per_token_second: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_nan() {
        let c = SimConfig {
            contention_coeff: f64::NAN,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_invalid_disruption_model() {
        let mut c = SimConfig::default();
        c.disruption.pareto_alpha = -1.0;
        let err = c.validate().expect_err("bad alpha must be rejected");
        assert!(err.contains("disruption"), "{err}");
    }

    #[test]
    fn rejects_sub_unit_spare_cap() {
        let mut c = SimConfig::default();
        c.spare.cap_multiplier = 0.5;
        assert!(c.validate().is_err());
    }
}
