//! Vertex placement across the heterogeneous fleet.
//!
//! A job's vertices execute on many machines simultaneously; within one job
//! group different instances have been observed on one to nine different
//! SKUs (§3.2). The scheduler decides the per-SKU split and which machines
//! host the vertices; its policy is one of the paper's levers (Scenario 2
//! shifts vertices from Gen3.5 to Gen5.2).

use rand::rngs::SmallRng;
use rand::Rng;

use crate::cluster::Cluster;
use crate::sku::SkuGeneration;

/// Placement policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Place proportionally to each SKU's free token capacity.
    CapacityProportional,
    /// Prefer machines with lower current utilization.
    LeastLoaded,
    /// Prefer newer (faster) generations, weighted by speed.
    PreferNewest,
}

/// The outcome of placing one job's vertices.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Fraction of the job's vertices on each SKU (sums to 1).
    pub sku_fractions: [f64; SkuGeneration::COUNT],
    /// Utilization of the machines actually hosting the vertices, weighted
    /// by the vertex fractions — the job's effective contention level.
    pub effective_load: f64,
    /// Spread of utilization across the hosting machines.
    pub load_std: f64,
    /// Vertex-weighted mean SKU speed the job experiences.
    pub effective_speed: f64,
    /// Vertex-weighted mean disruption factor of the hosting SKUs.
    pub effective_disruption_factor: f64,
    /// Vertex-weighted mean jitter factor of the hosting SKUs.
    pub effective_jitter_factor: f64,
}

/// Places a job's vertices on the cluster at submission time `t`.
///
/// Sampling is stochastic but bounded: each SKU contributes a Dirichlet-like
/// perturbed weight so recurrences of the same job land on different SKU
/// mixes run to run, matching §3.2.
pub fn place(
    cluster: &Cluster,
    policy: SchedulingPolicy,
    t: f64,
    affinity: Option<SkuGeneration>,
    rng: &mut SmallRng,
) -> Placement {
    let util = cluster.sku_utilization(t);
    let catalog = &cluster.config().catalog;

    // Raw per-SKU attractiveness under the policy.
    let mut weights = [0.0f64; SkuGeneration::COUNT];
    for g in SkuGeneration::ALL {
        let i = g.index();
        let spec = catalog.spec(g);
        let capacity = cluster.machines_of(g).len() as f64 * spec.tokens_per_machine as f64;
        if capacity == 0.0 {
            continue;
        }
        weights[i] = match policy {
            SchedulingPolicy::CapacityProportional => capacity * (1.0 - util[i].mean).max(0.05),
            SchedulingPolicy::LeastLoaded => capacity * (1.0 - util[i].mean).max(0.01).powi(2),
            SchedulingPolicy::PreferNewest => {
                capacity * spec.speed.powi(3) * (1.0 - util[i].mean).max(0.05)
            }
        };
        // Run-to-run placement noise: multiplicative perturbation. Kept
        // moderate — the SKU mix varies across recurrences (§3.2) but a
        // job's vertices are spread over enough machines that the effective
        // speed does not swing wildly run to run.
        let noise: f64 = rng.gen_range(0.8..1.2);
        weights[i] *= noise;
        // Data-locality pull: jobs pinned near their data strongly prefer
        // their home generation's pool.
        if affinity == Some(g) {
            weights[i] *= 15.0;
        }
    }
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "no capacity available for placement");
    let mut sku_fractions = [0.0f64; SkuGeneration::COUNT];
    for i in 0..SkuGeneration::COUNT {
        sku_fractions[i] = weights[i] / total;
    }
    placement_from_fractions(cluster, sku_fractions, t, rng)
}

/// Builds the effective placement metrics from explicit SKU fractions.
///
/// Exposed so that what-if replays (e.g. Scenario 2's Gen3.5 → Gen5.2 shift)
/// can force a modified mix through the identical downstream physics.
pub fn placement_from_fractions(
    cluster: &Cluster,
    sku_fractions: [f64; SkuGeneration::COUNT],
    t: f64,
    rng: &mut SmallRng,
) -> Placement {
    let catalog = &cluster.config().catalog;
    let d = cluster.diurnal_load(t);
    let mut effective_load = 0.0;
    let mut effective_speed = 0.0;
    let mut effective_disruption_factor = 0.0;
    let mut effective_jitter_factor = 0.0;
    let mut sampled_loads: Vec<f64> = Vec::new();

    for g in SkuGeneration::ALL {
        let i = g.index();
        let frac = sku_fractions[i];
        if frac <= 0.0 {
            continue;
        }
        let spec = catalog.spec(g);
        let machines = cluster.machines_of(g);
        // Sample a handful of representative hosting machines per SKU.
        let n_samples = ((frac * 24.0).ceil() as usize)
            .clamp(1, 8)
            .min(machines.len());
        let mut load_sum = 0.0;
        for _ in 0..n_samples {
            let m = &machines[rng.gen_range(0..machines.len())];
            let u = m.utilization(t, d);
            load_sum += u;
            sampled_loads.push(u);
        }
        let mean_load = load_sum / n_samples as f64;
        effective_load += frac * mean_load;
        effective_speed += frac * spec.speed;
        effective_disruption_factor += frac * spec.disruption_factor;
        effective_jitter_factor += frac * spec.jitter_factor;
    }

    let load_std = if sampled_loads.len() > 1 {
        let m = sampled_loads.iter().sum::<f64>() / sampled_loads.len() as f64;
        (sampled_loads.iter().map(|u| (u - m) * (u - m)).sum::<f64>()
            / (sampled_loads.len() - 1) as f64)
            .sqrt()
    } else {
        0.0
    };

    Placement {
        sku_fractions,
        effective_load,
        load_std,
        effective_speed,
        effective_disruption_factor,
        effective_jitter_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use rand::SeedableRng;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::default())
    }

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn fractions_sum_to_one() {
        let c = cluster();
        for policy in [
            SchedulingPolicy::CapacityProportional,
            SchedulingPolicy::LeastLoaded,
            SchedulingPolicy::PreferNewest,
        ] {
            let p = place(&c, policy, 1000.0, None, &mut rng(1));
            let sum: f64 = p.sku_fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{policy:?} fractions sum {sum}");
        }
    }

    #[test]
    fn prefer_newest_shifts_mass_to_new_skus() {
        let c = cluster();
        let mut new_frac_pref = 0.0;
        let mut new_frac_cap = 0.0;
        for seed in 0..40 {
            let pp = place(
                &c,
                SchedulingPolicy::PreferNewest,
                1000.0,
                None,
                &mut rng(seed),
            );
            let pc = place(
                &c,
                SchedulingPolicy::CapacityProportional,
                1000.0,
                None,
                &mut rng(seed + 1000),
            );
            let idx_new = [
                SkuGeneration::Gen5.index(),
                SkuGeneration::Gen5_2.index(),
                SkuGeneration::Gen6.index(),
            ];
            new_frac_pref += idx_new.iter().map(|&i| pp.sku_fractions[i]).sum::<f64>();
            new_frac_cap += idx_new.iter().map(|&i| pc.sku_fractions[i]).sum::<f64>();
        }
        assert!(
            new_frac_pref > new_frac_cap,
            "PreferNewest {new_frac_pref} vs CapacityProportional {new_frac_cap}"
        );
    }

    #[test]
    fn placement_varies_run_to_run() {
        let c = cluster();
        let a = place(
            &c,
            SchedulingPolicy::CapacityProportional,
            0.0,
            None,
            &mut rng(1),
        );
        let b = place(
            &c,
            SchedulingPolicy::CapacityProportional,
            0.0,
            None,
            &mut rng(2),
        );
        assert_ne!(a.sku_fractions, b.sku_fractions);
    }

    #[test]
    fn effective_speed_tracks_sku_mix() {
        let c = cluster();
        // All vertices on Gen6 → speed 1.6; all on Gen3 → 0.7.
        let mut all_new = [0.0; 6];
        all_new[SkuGeneration::Gen6.index()] = 1.0;
        let mut all_old = [0.0; 6];
        all_old[SkuGeneration::Gen3.index()] = 1.0;
        let pn = placement_from_fractions(&c, all_new, 0.0, &mut rng(3));
        let po = placement_from_fractions(&c, all_old, 0.0, &mut rng(3));
        assert!((pn.effective_speed - 1.6).abs() < 1e-9);
        assert!((po.effective_speed - 0.7).abs() < 1e-9);
        assert!(pn.effective_disruption_factor < po.effective_disruption_factor);
    }

    #[test]
    fn load_fields_in_range() {
        let c = cluster();
        for seed in 0..20 {
            let p = place(
                &c,
                SchedulingPolicy::LeastLoaded,
                7200.0,
                None,
                &mut rng(seed),
            );
            assert!((0.0..=1.0).contains(&p.effective_load));
            assert!(p.load_std >= 0.0 && p.load_std < 0.6);
        }
    }

    #[test]
    fn affinity_concentrates_placement() {
        let c = cluster();
        let mut with_aff = 0.0;
        let mut without = 0.0;
        for seed in 0..20 {
            let pa = place(
                &c,
                SchedulingPolicy::CapacityProportional,
                500.0,
                Some(SkuGeneration::Gen3_5),
                &mut rng(seed),
            );
            let pn = place(
                &c,
                SchedulingPolicy::CapacityProportional,
                500.0,
                None,
                &mut rng(seed),
            );
            with_aff += pa.sku_fractions[SkuGeneration::Gen3_5.index()];
            without += pn.sku_fractions[SkuGeneration::Gen3_5.index()];
        }
        assert!(with_aff > 2.0 * without, "affinity {with_aff} vs {without}");
        assert!(with_aff / 20.0 > 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let c = cluster();
        let a = place(&c, SchedulingPolicy::LeastLoaded, 500.0, None, &mut rng(9));
        let b = place(&c, SchedulingPolicy::LeastLoaded, 500.0, None, &mut rng(9));
        assert_eq!(a, b);
    }
}
