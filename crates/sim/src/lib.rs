//! # rv-sim — a Cosmos-like cluster simulator
//!
//! The paper measures production telemetry from Cosmos, Microsoft's
//! exabyte-scale analytics platform. That substrate is proprietary, so this
//! crate implements the closest synthetic equivalent (see DESIGN.md): a
//! deterministic, seedable simulator of a token-scheduled, multi-SKU shared
//! cluster executing SCOPE-like vertex DAGs.
//!
//! The simulator reproduces every *source of variation* catalogued in §3.2:
//!
//! * **Intrinsic characteristics** — input sizes and parameters vary across
//!   recurrences (driven by `rv-scope`'s templates);
//! * **Resource allocation** — jobs get guaranteed *tokens* plus preemptive
//!   *spare tokens* whose availability depends on cluster load ([`tokens`]);
//!   tokens map to machines with heterogeneous SKUs ([`sku`], [`machine`]);
//! * **Physical cluster environment** — diurnal + stochastic machine load
//!   causes contention ([`cluster`]), and rare service disruptions produce
//!   the outliers that dominate the paper's long tails ([`rare`]).
//!
//! Execution ([`exec`]) uses a stage-level wave model: a stage with `n`
//! vertices and `p` effective tokens runs in `ceil(n / p)` waves, each wave
//! lasting the *maximum* of its vertices' service times (stragglers). This
//! keeps per-job cost at `O(stages)` so we can simulate hundreds of
//! thousands of job instances while preserving the runtime phenomenology
//! (queueing, stragglers, contention, spare-token speedups, disruptions).

pub mod cluster;
pub mod config;
pub mod exec;
pub mod machine;
pub mod rare;
pub mod scheduler;
pub mod sku;
pub mod tokens;

pub use cluster::{Cluster, ClusterConfig, SkuUtilization};
pub use config::SimConfig;
pub use exec::{simulate_job, JobRunResult, SkuUsage};
pub use machine::Machine;
pub use rare::DisruptionModel;
pub use scheduler::SchedulingPolicy;
pub use sku::{SkuCatalog, SkuGeneration, SkuSpec};
pub use tokens::{SparePolicy, TokenSkyline};
