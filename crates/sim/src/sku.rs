//! Machine SKUs (Stock Keeping Units).
//!
//! Cosmos evolved for over a decade and its fleet mixes 10–20 SKUs with
//! different processing speeds (§3.2, \[83\]). The paper's what-if Scenario 2
//! moves vertices from Gen3.5 to Gen5.2 machines and §6 finds that larger
//! vertex fractions on Gen5/Gen6 predict the stabler clusters. We model the
//! named generations with speed and reliability factors: newer SKUs are
//! faster, hold more tokens, and suffer fewer disruptions.

/// The machine generations in our synthetic fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum SkuGeneration {
    /// Oldest generation still racked.
    Gen3 = 0,
    /// Mid-life refresh of Gen3 (the paper's Scenario 2 source SKU).
    Gen3_5,
    /// Fourth generation.
    Gen4,
    /// Fifth generation.
    Gen5,
    /// Refresh of Gen5 (the paper's Scenario 2 destination SKU).
    Gen5_2,
    /// Newest generation.
    Gen6,
}

impl SkuGeneration {
    /// All generations, oldest first. A generation's position in this array
    /// is its stable feature-column index.
    pub const ALL: [SkuGeneration; 6] = [
        SkuGeneration::Gen3,
        SkuGeneration::Gen3_5,
        SkuGeneration::Gen4,
        SkuGeneration::Gen5,
        SkuGeneration::Gen5_2,
        SkuGeneration::Gen6,
    ];

    /// Number of generations in the fleet.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable index of this generation.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Display name matching the paper's nomenclature.
    pub fn name(self) -> &'static str {
        match self {
            SkuGeneration::Gen3 => "Gen3",
            SkuGeneration::Gen3_5 => "Gen3.5",
            SkuGeneration::Gen4 => "Gen4",
            SkuGeneration::Gen5 => "Gen5",
            SkuGeneration::Gen5_2 => "Gen5.2",
            SkuGeneration::Gen6 => "Gen6",
        }
    }
}

impl std::fmt::Display for SkuGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Hardware characteristics of one SKU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkuSpec {
    /// Which generation this spec describes.
    pub generation: SkuGeneration,
    /// Relative processing speed (Gen4 = 1.0 reference; newer is faster,
    /// per \[83\]).
    pub speed: f64,
    /// Token slots per machine (newer machines have more capacity).
    pub tokens_per_machine: u32,
    /// Multiplier on the disruption probability for vertices on this SKU
    /// (older hardware fails/slows more often).
    pub disruption_factor: f64,
    /// Multiplier on per-vertex service-time jitter (older hardware is less
    /// predictable under contention).
    pub jitter_factor: f64,
}

/// The catalog of SKU specifications for the fleet.
#[derive(Debug, Clone)]
pub struct SkuCatalog {
    specs: [SkuSpec; SkuGeneration::COUNT],
}

impl Default for SkuCatalog {
    fn default() -> Self {
        Self::cosmos_like()
    }
}

impl SkuCatalog {
    /// A fleet profile patterned after the qualitative description in \[83\]:
    /// each generation is ~15–25% faster than the previous, with more token
    /// slots and better reliability.
    pub fn cosmos_like() -> Self {
        let mk =
            |generation, speed, tokens_per_machine, disruption_factor, jitter_factor| SkuSpec {
                generation,
                speed,
                tokens_per_machine,
                disruption_factor,
                jitter_factor,
            };
        Self {
            specs: [
                mk(SkuGeneration::Gen3, 0.70, 8, 2.2, 1.8),
                mk(SkuGeneration::Gen3_5, 0.80, 10, 1.8, 1.6),
                mk(SkuGeneration::Gen4, 1.00, 12, 1.3, 1.2),
                mk(SkuGeneration::Gen5, 1.25, 16, 0.9, 0.9),
                mk(SkuGeneration::Gen5_2, 1.35, 18, 0.8, 0.8),
                mk(SkuGeneration::Gen6, 1.60, 24, 0.6, 0.7),
            ],
        }
    }

    /// Spec for `generation`.
    #[inline]
    pub fn spec(&self, generation: SkuGeneration) -> &SkuSpec {
        &self.specs[generation.index()]
    }

    /// All specs, oldest generation first.
    pub fn specs(&self) -> &[SkuSpec] {
        &self.specs
    }

    /// Validates monotone improvement across generations (the property
    /// \[83\] reports and §6/§7.2 rely on).
    pub fn validate(&self) -> Result<(), String> {
        for w in self.specs.windows(2) {
            if w[1].speed <= w[0].speed {
                return Err(format!(
                    "{} must be faster than {}",
                    w[1].generation, w[0].generation
                ));
            }
            if w[1].disruption_factor >= w[0].disruption_factor {
                return Err(format!(
                    "{} must be more reliable than {}",
                    w[1].generation, w[0].generation
                ));
            }
        }
        for s in &self.specs {
            if s.speed <= 0.0 || s.tokens_per_machine == 0 {
                return Err(format!("{} has degenerate spec", s.generation));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        for (i, g) in SkuGeneration::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
    }

    #[test]
    fn default_catalog_is_valid() {
        SkuCatalog::default().validate().expect("valid catalog");
    }

    #[test]
    fn newer_is_faster_and_steadier() {
        let c = SkuCatalog::cosmos_like();
        let g35 = c.spec(SkuGeneration::Gen3_5);
        let g52 = c.spec(SkuGeneration::Gen5_2);
        assert!(g52.speed > g35.speed);
        assert!(g52.disruption_factor < g35.disruption_factor);
        assert!(g52.jitter_factor < g35.jitter_factor);
        assert!(g52.tokens_per_machine > g35.tokens_per_machine);
    }

    #[test]
    fn validate_catches_inversions() {
        let mut c = SkuCatalog::cosmos_like();
        c.specs[5].speed = 0.1; // slower than Gen5.2 — invalid
        assert!(c.validate().is_err());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(SkuGeneration::Gen3_5.to_string(), "Gen3.5");
        assert_eq!(SkuGeneration::Gen5_2.to_string(), "Gen5.2");
    }
}
