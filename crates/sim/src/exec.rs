//! Job execution: the stage-level wave model.
//!
//! `simulate_job` turns a (template, instance) pair into a completed run with
//! a runtime, a token skyline, and the environment readings the telemetry
//! layer records. The physics encode §3.2's sources of variation end to end:
//!
//! * *tokens*: stage `s` with `n_s` vertices and `p` effective tokens runs in
//!   `ceil(n_s / p)` waves;
//! * *stragglers*: each wave lasts the max of its vertices' service times —
//!   approximated by the Gumbel-style extreme-value factor
//!   `exp(σ · sqrt(2 ln k))` for `k` parallel log-normal vertices, times a
//!   sampled log-normal wave noise;
//! * *contention*: service times inflate convexly with the hosting machines'
//!   utilization;
//! * *spare tokens*: extra parallelism when the cluster is quiet, nothing at
//!   peak — faster on average, wider in distribution;
//! * *disruptions*: rare Pareto-tailed penalties proportional to vertex
//!   exposure (the Fig 4a "stalagmite").

use rand::rngs::SmallRng;
use rand::Rng;

use rv_scope::job::{sample_standard_normal, stream_rng};
use rv_scope::{JobInstance, JobTemplate};

use crate::cluster::Cluster;
use crate::config::SimConfig;
use crate::scheduler::{place, placement_from_fractions, Placement};
use crate::sku::SkuGeneration;
use crate::tokens::TokenSkyline;

/// Per-SKU usage of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct SkuUsage {
    /// Fraction of vertices per SKU (sums to 1).
    pub fractions: [f64; SkuGeneration::COUNT],
    /// Vertex counts per SKU (sums to `total_vertices`).
    pub vertex_counts: [u64; SkuGeneration::COUNT],
}

/// The completed execution of one job instance.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRunResult {
    /// End-to-end runtime in seconds (queueing + execution + penalties).
    pub runtime_s: f64,
    /// Time spent waiting for the first vertex to start.
    pub queue_delay_s: f64,
    /// Execution time before any disruption penalty.
    pub nominal_s: f64,
    /// Disruption penalty factor, if the run was hit (`runtime ≈ queue +
    /// nominal × factor`).
    pub disruption_factor: Option<f64>,
    /// Placement outcome (SKU mix, effective load/speed).
    pub placement: Placement,
    /// Guaranteed token allocation.
    pub allocated_tokens: u32,
    /// Spare tokens granted for this run.
    pub spare_tokens: u32,
    /// Whether the spare tokens were preempted mid-run (§3.2's
    /// unpredictable spare availability).
    pub spare_preempted: bool,
    /// Total CPU-seconds consumed across all vertices (the §5.1
    /// "per-container usage" counter the paper anticipates).
    pub cpu_seconds: f64,
    /// Peak memory across concurrently running vertices, GB.
    pub peak_memory_gb: f64,
    /// Total vertices launched.
    pub total_vertices: u64,
    /// Per-SKU usage.
    pub sku_usage: SkuUsage,
    /// Token-usage skyline.
    pub skyline: TokenSkyline,
}

/// Optional overrides for what-if replays (§7): force a SKU mix or disable
/// spare tokens without touching the rest of the physics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOverrides {
    /// Force these vertex fractions instead of the scheduler's choice.
    pub sku_fractions: Option<[f64; SkuGeneration::COUNT]>,
    /// Force spare tokens off for this run.
    pub disable_spare: bool,
}

/// Simulates one run of `template` realized as `instance` on `cluster`.
///
/// Deterministic given `(config.seed, template.id, instance.seq)`.
pub fn simulate_job(
    template: &JobTemplate,
    instance: &JobInstance,
    cluster: &Cluster,
    config: &SimConfig,
    overrides: ExecOverrides,
) -> JobRunResult {
    let mut rng = run_rng(config.seed, template.id, instance.seq);
    let t = instance.submit_time_s;
    let profile = template.archetype.profile();

    // --- Placement -------------------------------------------------------
    let affinity = template
        .sku_affinity
        .and_then(|i| SkuGeneration::ALL.get(i).copied());
    let placement = match overrides.sku_fractions {
        Some(fr) => placement_from_fractions(cluster, fr, t, &mut rng),
        None => place(cluster, config.scheduling, t, affinity, &mut rng),
    };

    // --- Tokens ----------------------------------------------------------
    let allocated = template.allocated_tokens.max(1);
    // Spare availability is the least predictable resource on the cluster
    // (§3.2): what other tenants leave idle swings widely from run to run
    // even at the same time of day. The draw happens unconditionally so
    // that replays with spares disabled stay on the same noise path
    // (common random numbers — paired what-if comparisons stay paired).
    let availability = cluster.spare_fraction(t) * rng.gen_range(0.25..1.0);
    let spare_tokens = if overrides.disable_spare {
        0
    } else {
        config
            .spare
            .grant(allocated, profile.spare_affinity, availability)
    };
    // Spare tokens are preemptive [7]: under load they can be revoked
    // mid-run, in which case roughly half the run proceeds at reduced
    // parallelism — modeled as losing half the spare contribution. The
    // draw happens unconditionally (common random numbers for replays).
    let preempt_roll: f64 = rng.gen_range(0.0..1.0);
    let spare_preempted = spare_tokens > 0
        && preempt_roll < config.spare.preemption_prob_at_full_load * placement.effective_load;
    let effective_spare = if spare_preempted {
        spare_tokens / 2
    } else {
        spare_tokens
    };
    let p_total = (allocated + effective_spare).max(1) as f64;

    // --- Queueing --------------------------------------------------------
    let load = placement.effective_load;
    let queue_delay_s = config.queue_coeff * load.powi(3) * sample_exp(&mut rng);

    // --- Stage-by-stage execution ----------------------------------------
    let scale = instance.input_scale(template).max(1e-3);
    let contention = 1.0 + config.contention_coeff * profile.load_sensitivity * load * load;
    let sigma = config.straggler_sigma
        * placement.effective_jitter_factor
        * (1.0 + profile.udf_jitter * 4.0)
        + profile.udf_jitter * 0.2;

    let stages = template.plan.stages();
    let mut finish = vec![0.0f64; stages.len()];
    let mut intervals: Vec<(f64, f64, u32)> = Vec::with_capacity(stages.len());
    let mut total_vertices = 0u64;
    // Observability is read-only: it samples the run's virtual-time
    // quantities but never touches `rng`, so instrumented and plain runs
    // stay bit-identical.
    let obs_on = rv_obs::enabled();
    let mut wave_counts: Vec<f64> = Vec::new();

    let vertex_scale = scale.powf(config.vertex_scale_exponent);
    let mut cpu_seconds = 0.0f64;
    let mut peak_memory_gb = 0.0f64;
    for (i, stage) in stages.iter().enumerate() {
        let n_vertices = ((stage.base_vertices as f64 * vertex_scale).ceil() as u64).max(1);
        total_vertices += n_vertices;
        let p_used = p_total.min(n_vertices as f64).max(1.0);
        // Work-conserving parallelism: vertices are dispatched as tokens
        // free up (no lock-step waves), so stage time scales continuously
        // with n / p. The straggler factor below accounts for the tail of
        // the last running vertices.
        let waves = (n_vertices as f64 / p_used).max(1.0);
        if obs_on {
            wave_counts.push(waves);
        }

        // Work per vertex in GB: stage's share of the input scaled by its
        // per-row cost, split across vertices.
        let stage_work_gb = instance.input_gb * stage.cost_per_row();
        let per_vertex_gb = stage_work_gb / n_vertices as f64;
        let base_service = per_vertex_gb / (config.gb_per_token_second * placement.effective_speed);

        // Extreme-value straggler factor for the max of ~p_used parallel
        // log-normal service times, plus stage-level jitter.
        let stage_sigma = if stage.is_jittery() {
            sigma + 0.15
        } else {
            sigma
        };
        let straggler = (stage_sigma * (2.0 * p_used.ln().max(0.0)).sqrt()).exp();
        let wave_noise = (stage_sigma * sample_standard_normal(&mut rng)).exp();
        let wave_time = base_service * contention * straggler * wave_noise;
        let duration = (waves * wave_time).max(1e-3);

        // Container-level counters: CPU-seconds across all vertices of the
        // stage, and the stage's aggregate working set (concurrent vertices
        // each hold their partition in memory).
        cpu_seconds += n_vertices as f64 * base_service * contention;
        peak_memory_gb = peak_memory_gb.max(p_used * per_vertex_gb * 0.5);

        let start = stage
            .inputs
            .iter()
            .map(|&j| finish[j])
            .fold(0.0f64, f64::max);
        finish[i] = start + duration;
        intervals.push((start, finish[i], p_used as u32));
    }
    let nominal_s = finish.iter().fold(0.0f64, |a, &b| a.max(b)).max(1e-3);

    // --- Rare disruptions --------------------------------------------------
    let sensitivity = profile.disruption_sensitivity * placement.effective_disruption_factor;
    let disruption_factor = config
        .disruption
        .sample_penalty(total_vertices, sensitivity, &mut rng);
    let runtime_s = queue_delay_s + nominal_s * disruption_factor.unwrap_or(1.0);

    // --- Skyline -----------------------------------------------------------
    let skyline = build_skyline(allocated, p_total as u32, &intervals);

    // --- Per-SKU vertex counts ----------------------------------------------
    let mut vertex_counts = [0u64; SkuGeneration::COUNT];
    let mut assigned = 0u64;
    for (count, &frac) in vertex_counts.iter_mut().zip(&placement.sku_fractions) {
        let c = (frac * total_vertices as f64).floor() as u64;
        *count = c;
        assigned += c;
    }
    // Give the rounding remainder to the largest-fraction SKU.
    if assigned < total_vertices {
        let max_i = (0..SkuGeneration::COUNT)
            .max_by(|&a, &b| {
                placement.sku_fractions[a]
                    .partial_cmp(&placement.sku_fractions[b])
                    .expect("fractions finite")
            })
            .expect("non-empty");
        vertex_counts[max_i] += total_vertices - assigned;
    }

    let result = JobRunResult {
        runtime_s,
        queue_delay_s,
        nominal_s,
        disruption_factor,
        sku_usage: SkuUsage {
            fractions: placement.sku_fractions,
            vertex_counts,
        },
        placement,
        allocated_tokens: allocated,
        spare_tokens,
        spare_preempted,
        cpu_seconds,
        peak_memory_gb,
        total_vertices,
        skyline,
    };
    if obs_on {
        record_run_metrics(&result, &wave_counts);
    }
    result
}

/// Folds one completed run into the global sim metrics. Every recorded
/// quantity is *virtual sim-time* (queue delays, waves, token grants taken
/// from the simulation result) — never wall clock.
fn record_run_metrics(run: &JobRunResult, wave_counts: &[f64]) {
    rv_obs::counter("sim.jobs").inc();
    rv_obs::counter("sim.vertices").add(run.total_vertices);
    rv_obs::histogram("sim.queue_wait_s").record(run.queue_delay_s);
    for &w in wave_counts {
        rv_obs::histogram("sim.waves_per_stage").record(w);
    }
    if run.spare_tokens > 0 {
        rv_obs::counter("sim.spare.grants").inc();
        rv_obs::counter("sim.spare.tokens_granted").add(run.spare_tokens as u64);
    }
    if run.spare_preempted {
        rv_obs::counter("sim.spare.preemptions").inc();
    }
    if run.disruption_factor.is_some() {
        rv_obs::counter("sim.disruptions").inc();
        // Attribute the disruption to the run's dominant SKU generation.
        if let Some(max_i) = (0..SkuGeneration::COUNT).max_by(|&a, &b| {
            run.sku_usage.fractions[a]
                .partial_cmp(&run.sku_usage.fractions[b])
                .expect("fractions finite")
        }) {
            let sku = SkuGeneration::ALL[max_i];
            rv_obs::counter(&format!("sim.disruptions.sku.{}", sku.name())).inc();
        }
    }
}

/// Rasterizes per-stage `(start, end, tokens)` intervals into a
/// piecewise-constant skyline, capping concurrent usage at `p_total`.
fn build_skyline(allocated: u32, p_total: u32, intervals: &[(f64, f64, u32)]) -> TokenSkyline {
    let mut sky = TokenSkyline::new(allocated);
    let mut bounds: Vec<f64> = intervals.iter().flat_map(|&(s, e, _)| [s, e]).collect();
    bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    bounds.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    for w in bounds.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi - lo < 1e-12 {
            continue;
        }
        let mid = 0.5 * (lo + hi);
        let used: u32 = intervals
            .iter()
            .filter(|&&(s, e, _)| s <= mid && mid < e)
            .map(|&(_, _, n)| n)
            .sum();
        sky.push(lo, hi, used.min(p_total));
    }
    sky
}

/// Per-run RNG stream: decorrelated across (template, recurrence).
fn run_rng(seed: u64, template_id: u32, seq: u32) -> SmallRng {
    stream_rng(
        seed,
        ((template_id as u64) << 32) | seq as u64 | 0x8000_0000_0000_0000,
    )
}

/// Unit-mean exponential deviate.
fn sample_exp(rng: &mut SmallRng) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use rv_scope::{Archetype, GeneratorConfig, WorkloadGenerator};

    fn setup() -> (WorkloadGenerator, Cluster, SimConfig) {
        let gen = WorkloadGenerator::new(GeneratorConfig {
            n_templates: 24,
            seed: 7,
            ..Default::default()
        });
        let cluster = Cluster::new(ClusterConfig::default());
        let config = SimConfig::default();
        (gen, cluster, config)
    }

    fn run_one(
        gen: &WorkloadGenerator,
        cluster: &Cluster,
        config: &SimConfig,
        template_idx: usize,
        seq: u32,
        t: f64,
    ) -> JobRunResult {
        let template = &gen.templates()[template_idx];
        let mut rng = stream_rng(1, seq as u64);
        let instance = JobInstance {
            template_id: template.id,
            seq,
            submit_time_s: t,
            input_gb: template.sample_input_gb(t, &mut rng),
        };
        simulate_job(
            template,
            &instance,
            cluster,
            config,
            ExecOverrides::default(),
        )
    }

    #[test]
    fn runs_produce_positive_runtimes() {
        let (gen, cluster, config) = setup();
        for i in 0..gen.templates().len() {
            let r = run_one(&gen, &cluster, &config, i, 0, 3_600.0);
            assert!(r.runtime_s > 0.0);
            assert!(r.nominal_s > 0.0);
            assert!(r.queue_delay_s >= 0.0);
            assert!(r.total_vertices > 0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (gen, cluster, config) = setup();
        let a = run_one(&gen, &cluster, &config, 3, 5, 7_200.0);
        let b = run_one(&gen, &cluster, &config, 3, 5, 7_200.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_recurrences_differ() {
        let (gen, cluster, config) = setup();
        let a = run_one(&gen, &cluster, &config, 3, 1, 7_200.0);
        let b = run_one(&gen, &cluster, &config, 3, 2, 7_200.0);
        assert_ne!(a.runtime_s, b.runtime_s);
    }

    #[test]
    fn larger_inputs_run_longer() {
        let (gen, cluster, config) = setup();
        let template = &gen.templates()[0];
        let mk = |gb: f64, seq: u32| {
            let instance = JobInstance {
                template_id: template.id,
                seq,
                submit_time_s: 10_000.0,
                input_gb: gb,
            };
            simulate_job(
                template,
                &instance,
                &cluster,
                &config,
                ExecOverrides::default(),
            )
        };
        // Average over several recurrence seeds to wash out noise.
        let small: f64 = (0..10)
            .map(|s| mk(template.base_input_gb, s).nominal_s)
            .sum();
        let large: f64 = (0..10)
            .map(|s| mk(template.base_input_gb * 8.0, s).nominal_s)
            .sum();
        assert!(large > small * 1.5, "small {small}, large {large}");
    }

    #[test]
    fn skyline_is_consistent() {
        let (gen, cluster, config) = setup();
        let r = run_one(&gen, &cluster, &config, 2, 0, 3_600.0);
        assert!(r.skyline.peak() <= r.allocated_tokens + r.spare_tokens);
        assert!(r.skyline.peak() > 0);
        assert!((r.skyline.duration() - r.nominal_s).abs() < 1e-6);
    }

    #[test]
    fn vertex_counts_sum_to_total() {
        let (gen, cluster, config) = setup();
        for i in 0..8 {
            let r = run_one(&gen, &cluster, &config, i, 1, 50_000.0);
            let sum: u64 = r.sku_usage.vertex_counts.iter().sum();
            assert_eq!(sum, r.total_vertices);
        }
    }

    #[test]
    fn disable_spare_removes_spare_tokens() {
        let (gen, cluster, config) = setup();
        // Pick a spare-riding template for a strong signal.
        let idx = gen
            .templates()
            .iter()
            .position(|t| t.archetype == Archetype::SpareTokenRider)
            .unwrap_or(0);
        let template = &gen.templates()[idx];
        let instance = JobInstance {
            template_id: template.id,
            seq: 0,
            submit_time_s: 0.0, // trough of the diurnal cycle → spares available
            input_gb: template.base_input_gb,
        };
        let with = simulate_job(
            template,
            &instance,
            &cluster,
            &config,
            ExecOverrides::default(),
        );
        let without = simulate_job(
            template,
            &instance,
            &cluster,
            &config,
            ExecOverrides {
                disable_spare: true,
                ..Default::default()
            },
        );
        assert_eq!(without.spare_tokens, 0);
        assert!(
            with.spare_tokens > 0 || with.allocated_tokens as f64 >= with.total_vertices as f64
        );
    }

    #[test]
    fn forced_sku_mix_is_respected() {
        let (gen, cluster, config) = setup();
        let template = &gen.templates()[0];
        let instance = JobInstance {
            template_id: template.id,
            seq: 0,
            submit_time_s: 1000.0,
            input_gb: template.base_input_gb,
        };
        let mut fractions = [0.0; SkuGeneration::COUNT];
        fractions[SkuGeneration::Gen5_2.index()] = 1.0;
        let r = simulate_job(
            template,
            &instance,
            &cluster,
            &config,
            ExecOverrides {
                sku_fractions: Some(fractions),
                ..Default::default()
            },
        );
        assert_eq!(r.sku_usage.fractions, fractions);
        assert_eq!(
            r.sku_usage.vertex_counts[SkuGeneration::Gen5_2.index()],
            r.total_vertices
        );
    }

    #[test]
    fn newer_skus_run_faster_on_average() {
        let (gen, cluster, config) = setup();
        let template = &gen.templates()[0];
        let avg = |gen_idx: usize| -> f64 {
            let mut fr = [0.0; SkuGeneration::COUNT];
            fr[gen_idx] = 1.0;
            (0..20)
                .map(|seq| {
                    let instance = JobInstance {
                        template_id: template.id,
                        seq,
                        submit_time_s: 1000.0,
                        input_gb: template.base_input_gb,
                    };
                    simulate_job(
                        template,
                        &instance,
                        &cluster,
                        &config,
                        ExecOverrides {
                            sku_fractions: Some(fr),
                            ..Default::default()
                        },
                    )
                    .nominal_s
                })
                .sum::<f64>()
                / 20.0
        };
        let old = avg(SkuGeneration::Gen3.index());
        let new = avg(SkuGeneration::Gen6.index());
        assert!(new < old, "Gen6 {new} should beat Gen3 {old}");
    }

    #[test]
    fn disruptions_are_rare_but_present_at_scale() {
        let (gen, cluster, config) = setup();
        let mut hits = 0;
        let mut n = 0;
        for i in 0..gen.templates().len() {
            for seq in 0..60 {
                let r = run_one(&gen, &cluster, &config, i, seq, 1_000.0 * seq as f64);
                if r.disruption_factor.is_some() {
                    hits += 1;
                }
                n += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!(rate > 0.001, "disruption rate {rate} too low");
        assert!(rate < 0.2, "disruption rate {rate} too high");
    }
}
