//! Individual compute machines and their background-load processes.
//!
//! The paper's environment features are the *CPU utilization of machines in
//! each SKU at job-submission time* (§5.1). Utilization on a shared cluster
//! has a strong diurnal component plus machine-specific noise; "a larger
//! range of loads may increase runtime variation" (§3.2). Each machine
//! carries a deterministic load process: a diurnal sinusoid shared with the
//! cluster, a per-machine offset, and smooth per-machine noise derived from
//! hash-mixed harmonics so that `load(t)` is reproducible without storing a
//! time series.

use crate::sku::SkuGeneration;

const DAY_S: f64 = 86_400.0;

/// One physical machine.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Dense machine id within the cluster.
    pub id: u32,
    /// SKU generation of this machine.
    pub generation: SkuGeneration,
    /// Token slots this machine offers.
    pub token_capacity: u32,
    /// Per-machine mean utilization offset (some machines run persistently
    /// hotter because of placement skew).
    offset: f64,
    /// Per-machine noise phase seeds, derived from the id.
    phase: [f64; 3],
    /// Per-machine noise amplitude.
    noise_amp: f64,
}

impl Machine {
    /// Creates a machine with load parameters derived deterministically from
    /// `(seed, id)`.
    pub fn new(
        id: u32,
        generation: SkuGeneration,
        token_capacity: u32,
        seed: u64,
        offset_spread: f64,
        noise_amp: f64,
    ) -> Self {
        let h = |salt: u64| -> f64 {
            // SplitMix64-style hash → uniform in [0, 1).
            let mut z = seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(id as u64 + 1))
                .wrapping_add(salt.wrapping_mul(0x6a09_e667_f3bc_c909));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        };
        Self {
            id,
            generation,
            token_capacity,
            offset: (h(1) - 0.5) * 2.0 * offset_spread,
            phase: [h(2) * DAY_S, h(3) * DAY_S, h(4) * DAY_S],
            noise_amp,
        }
    }

    /// Background CPU utilization in `\[0, 1\]` at time `t` seconds, given the
    /// cluster-wide diurnal level `diurnal` (already in `\[0, 1\]`).
    ///
    /// The machine adds its persistent offset and three incommensurate
    /// harmonics (periods ≈ 7.6 h, 2.6 h, 41 min) that stand in for the
    /// unpredictable comings and goings of co-located work.
    pub fn utilization(&self, t: f64, diurnal: f64) -> f64 {
        let two_pi = std::f64::consts::TAU;
        let noise = self.noise_amp
            * ((two_pi * (t + self.phase[0]) / (DAY_S / 3.17)).sin()
                + 0.6 * (two_pi * (t + self.phase[1]) / (DAY_S / 9.3)).sin()
                + 0.4 * (two_pi * (t + self.phase[2]) / (DAY_S / 35.1)).sin())
            / 2.0;
        (diurnal + self.offset + noise).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(id: u32) -> Machine {
        Machine::new(id, SkuGeneration::Gen4, 12, 42, 0.1, 0.2)
    }

    #[test]
    fn utilization_in_unit_interval() {
        let m = machine(0);
        for i in 0..1000 {
            let t = i as f64 * 977.0;
            let u = m.utilization(t, 0.5);
            assert!((0.0..=1.0).contains(&u), "u = {u} at t = {t}");
        }
    }

    #[test]
    fn utilization_is_deterministic() {
        let a = machine(7);
        let b = machine(7);
        assert_eq!(a.utilization(12_345.0, 0.4), b.utilization(12_345.0, 0.4));
    }

    #[test]
    fn machines_differ() {
        let a = machine(1);
        let b = machine(2);
        let ua = a.utilization(50_000.0, 0.5);
        let ub = b.utilization(50_000.0, 0.5);
        assert_ne!(ua, ub);
    }

    #[test]
    fn tracks_diurnal_level() {
        let m = machine(3);
        // Averaged over many time points, higher diurnal input → higher load.
        let avg = |d: f64| -> f64 {
            (0..200)
                .map(|i| m.utilization(i as f64 * 431.0, d))
                .sum::<f64>()
                / 200.0
        };
        assert!(avg(0.8) > avg(0.2) + 0.3);
    }

    #[test]
    fn clamps_extremes() {
        let m = machine(4);
        assert!(m.utilization(0.0, 2.0) <= 1.0);
        assert!(m.utilization(0.0, -2.0) >= 0.0);
    }
}
