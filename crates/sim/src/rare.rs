//! Rare service disruptions — the source of runtime outliers.
//!
//! The paper's challenge **C2** is the existence of rare events ("occasional
//! service disruption") that create outliers and long tails. Fig 4a's
//! "stalagmite" — runs far slower than their group median, comprising <5% of
//! all runs — is their footprint. We model disruptions as per-vertex
//! Bernoulli events whose probability scales with the job's exposure (number
//! of vertices), the SKU reliability, and the archetype's sensitivity; a hit
//! costs a heavy-tailed (Pareto) re-run penalty.

use rand::rngs::SmallRng;
use rand::Rng;

/// Disruption model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisruptionModel {
    /// Baseline probability that a single vertex suffers a disruption.
    pub per_vertex_prob: f64,
    /// Pareto shape of the slowdown penalty (smaller = heavier tail).
    pub pareto_alpha: f64,
    /// Minimum penalty, expressed as a multiple of the job's nominal
    /// runtime (a disruption at least doubles the run by default).
    pub min_penalty_factor: f64,
    /// Hard cap on the penalty factor to keep the simulation bounded.
    pub max_penalty_factor: f64,
}

impl Default for DisruptionModel {
    fn default() -> Self {
        Self {
            per_vertex_prob: 5.0e-5,
            pareto_alpha: 1.0,
            min_penalty_factor: 2.0,
            max_penalty_factor: 60.0,
        }
    }
}

impl DisruptionModel {
    /// Validates the parameters against the combinations under which
    /// [`Self::sample_penalty`] could produce a NaN or infinite slowdown
    /// factor: a non-positive or non-finite Pareto shape, a penalty range
    /// that is unordered, non-positive, or non-finite, or a per-vertex
    /// probability outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        // `!(x >= lo)`-style comparisons deliberately catch NaN too.
        if !(self.per_vertex_prob >= 0.0 && self.per_vertex_prob <= 1.0) {
            return Err(format!(
                "per_vertex_prob must be in [0, 1], got {}",
                self.per_vertex_prob
            ));
        }
        if !(self.pareto_alpha > 0.0 && self.pareto_alpha.is_finite()) {
            return Err(format!(
                "pareto_alpha must be positive and finite, got {}",
                self.pareto_alpha
            ));
        }
        if !(self.min_penalty_factor > 0.0 && self.min_penalty_factor.is_finite()) {
            return Err(format!(
                "min_penalty_factor must be positive and finite, got {}",
                self.min_penalty_factor
            ));
        }
        if !(self.max_penalty_factor >= self.min_penalty_factor
            && self.max_penalty_factor.is_finite())
        {
            return Err(format!(
                "max_penalty_factor must be finite and at least min_penalty_factor \
                 ({}), got {}",
                self.min_penalty_factor, self.max_penalty_factor
            ));
        }
        Ok(())
    }

    /// Probability that a job with `n_vertices` vertices and combined
    /// sensitivity `sensitivity` (archetype × SKU factors) suffers at least
    /// one disruption: `1 - (1 - p·s)^n`.
    pub fn job_prob(&self, n_vertices: u64, sensitivity: f64) -> f64 {
        let p = (self.per_vertex_prob * sensitivity).clamp(0.0, 1.0);
        if p == 0.0 || n_vertices == 0 {
            return 0.0;
        }
        1.0 - (1.0 - p).powf(n_vertices as f64)
    }

    /// Samples the disruption penalty for one job run: `None` if the run is
    /// clean, otherwise the multiplicative slowdown factor (≥
    /// `min_penalty_factor`).
    pub fn sample_penalty(
        &self,
        n_vertices: u64,
        sensitivity: f64,
        rng: &mut SmallRng,
    ) -> Option<f64> {
        let p = self.job_prob(n_vertices, sensitivity);
        if p <= 0.0 || !rng.gen_bool(p.min(1.0)) {
            return None;
        }
        // Pareto(alpha) with scale = min_penalty_factor, capped.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let factor = self.min_penalty_factor * u.powf(-1.0 / self.pareto_alpha);
        Some(factor.min(self.max_penalty_factor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn job_prob_increases_with_exposure() {
        let m = DisruptionModel::default();
        let small = m.job_prob(10, 1.0);
        let large = m.job_prob(10_000, 1.0);
        assert!(large > small);
        assert!(large < 1.0);
        assert_eq!(m.job_prob(0, 1.0), 0.0);
    }

    #[test]
    fn job_prob_scales_with_sensitivity() {
        let m = DisruptionModel::default();
        assert!(m.job_prob(1000, 6.0) > m.job_prob(1000, 1.0));
        assert_eq!(m.job_prob(1000, 0.0), 0.0);
    }

    #[test]
    fn penalties_are_bounded_and_heavy_tailed() {
        let m = DisruptionModel {
            per_vertex_prob: 1.0, // force a hit every time
            ..Default::default()
        };
        let mut r = rng(1);
        let mut penalties = Vec::new();
        for _ in 0..5000 {
            let p = m.sample_penalty(1, 1.0, &mut r).expect("always disrupted");
            assert!(p >= m.min_penalty_factor);
            assert!(p <= m.max_penalty_factor);
            penalties.push(p);
        }
        // Heavy tail: some penalties should be far above the minimum.
        let big = penalties.iter().filter(|&&p| p > 10.0).count();
        assert!(big > 50, "only {big} large penalties");
        // ... but most runs are only moderately slowed.
        let small = penalties.iter().filter(|&&p| p < 5.0).count();
        assert!(small > 2500, "only {small} moderate penalties");
    }

    #[test]
    fn clean_runs_dominate_at_low_prob() {
        let m = DisruptionModel::default();
        let mut r = rng(2);
        let hits = (0..10_000)
            .filter(|_| m.sample_penalty(100, 1.0, &mut r).is_some())
            .count();
        // p ≈ 1 - (1-2e-5)^100 ≈ 0.2%; allow generous slack.
        assert!(hits < 100, "too many disruptions: {hits}");
    }

    #[test]
    fn validate_accepts_default_and_rejects_nan_inf_sources() {
        assert_eq!(DisruptionModel::default().validate(), Ok(()));
        let bad = [
            DisruptionModel {
                pareto_alpha: 0.0,
                ..Default::default()
            },
            DisruptionModel {
                pareto_alpha: -1.5,
                ..Default::default()
            },
            DisruptionModel {
                pareto_alpha: f64::NAN,
                ..Default::default()
            },
            DisruptionModel {
                min_penalty_factor: 10.0,
                max_penalty_factor: 2.0,
                ..Default::default()
            },
            DisruptionModel {
                min_penalty_factor: 0.0,
                ..Default::default()
            },
            DisruptionModel {
                max_penalty_factor: f64::INFINITY,
                ..Default::default()
            },
            DisruptionModel {
                per_vertex_prob: f64::NAN,
                ..Default::default()
            },
            DisruptionModel {
                per_vertex_prob: 1.5,
                ..Default::default()
            },
        ];
        for m in bad {
            assert!(m.validate().is_err(), "{m:?} must be rejected");
        }
    }

    #[test]
    fn validated_params_sample_finite_penalties() {
        // Near the edge of the valid space: tiny alpha, inverted-adjacent
        // range. Every sampled factor must still be finite and in range.
        let m = DisruptionModel {
            per_vertex_prob: 1.0,
            pareto_alpha: 0.05,
            min_penalty_factor: 1.0 + f64::EPSILON,
            max_penalty_factor: 1e6,
        };
        m.validate().expect("edge case is still valid");
        let mut r = rng(7);
        for _ in 0..2000 {
            let p = m.sample_penalty(1, 1.0, &mut r).expect("always disrupted");
            assert!(p.is_finite());
            assert!(p >= m.min_penalty_factor && p <= m.max_penalty_factor);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let m = DisruptionModel {
            per_vertex_prob: 0.01,
            ..Default::default()
        };
        let a: Vec<Option<f64>> = {
            let mut r = rng(3);
            (0..100)
                .map(|_| m.sample_penalty(50, 1.0, &mut r))
                .collect()
        };
        let b: Vec<Option<f64>> = {
            let mut r = rng(3);
            (0..100)
                .map(|_| m.sample_penalty(50, 1.0, &mut r))
                .collect()
        };
        assert_eq!(a, b);
    }
}
