//! Criterion bench for the posterior-likelihood assignment (Eq. 9) — the
//! per-group labeling kernel behind Fig 6 and the prediction targets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::Rng;
use rv_core::likelihood::assign_samples;
use rv_core::rv_scope::job::stream_rng;
use rv_core::rv_stats::{BinSpec, Histogram, Normalization};
use rv_core::shapes::{ShapeCatalog, ShapeStats};

fn catalog(k: usize) -> ShapeCatalog {
    let spec = BinSpec::ratio();
    let mut pmfs = Vec::new();
    let mut stats = Vec::new();
    for i in 0..k {
        let width = 0.05 + i as f64 * 0.12;
        let mut rng = stream_rng(9, i as u64);
        let samples: Vec<f64> = (0..3000)
            .map(|_| 1.0 + rng.gen_range(-width..width))
            .collect();
        pmfs.push(Histogram::from_samples(spec, samples.iter().copied()).to_pmf());
        stats.push(ShapeStats::from_samples(&samples, &spec, 1).expect("non-empty"));
    }
    ShapeCatalog::new(Normalization::Ratio, spec, pmfs, stats)
}

fn bench_assignment(c: &mut Criterion) {
    let cat = catalog(8);
    let mut group = c.benchmark_group("likelihood-assign-k8");
    for n_obs in [10usize, 100, 1000] {
        let mut rng = stream_rng(4, n_obs as u64);
        let obs: Vec<f64> = (0..n_obs).map(|_| 0.8 + rng.gen_range(0.0..0.5)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n_obs), &obs, |b, o| {
            b.iter(|| assign_samples(black_box(&cat), black_box(o)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assignment);
criterion_main!(benches);
