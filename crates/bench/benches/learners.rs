//! Criterion benches for the from-scratch learners (the §5.2 model family):
//! GBDT and random-forest training and prediction throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use rand::Rng;
use rv_core::rv_learn::{
    Classifier, GbdtClassifier, GbdtConfig, RandomForestClassifier, RandomForestConfig,
};
use rv_core::rv_scope::job::stream_rng;

fn task(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut rng = stream_rng(3, 0);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..1.0)).collect();
        let score = row[0] + 0.5 * row[1] - row[2];
        y.push(if score < 0.1 {
            0
        } else if score < 0.6 {
            1
        } else {
            2
        });
        x.push(row);
    }
    (x, y)
}

fn bench_gbdt_train(c: &mut Criterion) {
    let (x, y) = task(4000, 40);
    c.bench_function("gbdt/train-4k-rows-40f-20rounds", |b| {
        b.iter(|| {
            GbdtClassifier::fit(
                black_box(&x),
                black_box(&y),
                3,
                &GbdtConfig {
                    n_rounds: 20,
                    ..Default::default()
                },
            )
        })
    });
}

fn bench_forest_train(c: &mut Criterion) {
    let (x, y) = task(4000, 40);
    c.bench_function("forest/train-4k-rows-40f-20trees", |b| {
        b.iter(|| {
            RandomForestClassifier::fit(
                black_box(&x),
                black_box(&y),
                3,
                &RandomForestConfig {
                    n_trees: 20,
                    ..Default::default()
                },
            )
        })
    });
}

fn bench_predict(c: &mut Criterion) {
    let (x, y) = task(4000, 40);
    let model = GbdtClassifier::fit(
        &x,
        &y,
        3,
        &GbdtConfig {
            n_rounds: 20,
            ..Default::default()
        },
    );
    let mut group = c.benchmark_group("gbdt-predict");
    group.throughput(Throughput::Elements(x.len() as u64));
    group.bench_function("4k-rows", |b| {
        b.iter(|| {
            for row in &x {
                black_box(model.predict(row));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gbdt_train, bench_forest_train, bench_predict);
criterion_main!(benches);
