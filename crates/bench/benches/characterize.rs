//! Criterion benches for the characterization kernels behind Fig 5 /
//! Table 2: histogramming + smoothing, and the k-means clustering of
//! group PMF vectors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::Rng;
use rv_core::rv_cluster::{kmeans, minibatch_kmeans, KMeansConfig, MiniBatchConfig};
use rv_core::rv_scope::job::stream_rng;
use rv_core::rv_stats::{smooth_pmf, BinSpec, Histogram, SmoothingKernel};

fn synth_samples(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = stream_rng(seed, 0);
    (0..n).map(|_| 0.5 + rng.gen_range(0.0..1.5)).collect()
}

fn synth_pmfs(n_groups: usize, n_bins: usize) -> Vec<Vec<f64>> {
    let spec = BinSpec::new(0.0, 10.0, n_bins);
    (0..n_groups)
        .map(|g| {
            let samples = synth_samples(200, g as u64);
            Histogram::from_samples(spec, samples)
                .to_pmf()
                .probs()
                .to_vec()
        })
        .collect()
}

fn bench_histogram(c: &mut Criterion) {
    let spec = BinSpec::ratio();
    let samples = synth_samples(10_000, 1);
    c.bench_function("histogram/10k-samples-200-bins", |b| {
        b.iter(|| Histogram::from_samples(spec, black_box(&samples).iter().copied()))
    });
}

fn bench_smoothing(c: &mut Criterion) {
    let spec = BinSpec::ratio();
    let pmf = Histogram::from_samples(spec, synth_samples(5_000, 2)).to_pmf();
    let mut group = c.benchmark_group("smoothing");
    for sigma in [1.0, 2.0, 4.0] {
        group.bench_with_input(BenchmarkId::from_parameter(sigma), &sigma, |b, &s| {
            b.iter(|| smooth_pmf(black_box(&pmf), SmoothingKernel::Gaussian { sigma_bins: s }))
        });
    }
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans-200bins-k8");
    for n_groups in [100usize, 400] {
        let pmfs = synth_pmfs(n_groups, 200);
        group.bench_with_input(BenchmarkId::from_parameter(n_groups), &pmfs, |b, p| {
            b.iter(|| {
                kmeans(
                    black_box(p),
                    &KMeansConfig {
                        k: 8,
                        n_init: 1,
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_minibatch(c: &mut Criterion) {
    let pmfs = synth_pmfs(400, 200);
    c.bench_function("minibatch-kmeans/400-groups-k8", |b| {
        b.iter(|| {
            minibatch_kmeans(
                black_box(&pmfs),
                &MiniBatchConfig {
                    k: 8,
                    ..Default::default()
                },
            )
        })
    });
}

fn bench_wasserstein(c: &mut Criterion) {
    let a = synth_samples(2_000, 5);
    let b_samples = synth_samples(2_000, 6);
    c.bench_function("wasserstein/2k-vs-2k", |b| {
        b.iter(|| rv_core::rv_stats::wasserstein_distance(black_box(&a), black_box(&b_samples)))
    });
}

criterion_group!(
    benches,
    bench_histogram,
    bench_smoothing,
    bench_kmeans,
    bench_minibatch,
    bench_wasserstein
);
criterion_main!(benches);
