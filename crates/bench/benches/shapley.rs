//! Criterion bench for the Monte-Carlo Shapley estimator (§6): cost per
//! explained instance as a function of permutation budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::Rng;
use rv_core::rv_learn::{GbdtClassifier, GbdtConfig};
use rv_core::rv_scope::job::stream_rng;
use rv_core::rv_shap::{shapley_values, ShapConfig};

fn bench_shapley(c: &mut Criterion) {
    let d = 30;
    let mut rng = stream_rng(8, 0);
    let x: Vec<Vec<f64>> = (0..800)
        .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let y: Vec<usize> = x.iter().map(|r| usize::from(r[0] + r[1] > 1.0)).collect();
    let model = GbdtClassifier::fit(
        &x,
        &y,
        2,
        &GbdtConfig {
            n_rounds: 15,
            ..Default::default()
        },
    );
    let background: Vec<Vec<f64>> = x.iter().take(32).cloned().collect();
    let probe = x[100].clone();

    let mut group = c.benchmark_group("shapley-30-features");
    for perms in [16usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(perms), &perms, |b, &p| {
            b.iter(|| {
                shapley_values(
                    black_box(&model),
                    black_box(&probe),
                    1,
                    black_box(&background),
                    &ShapConfig {
                        n_permutations: p,
                        seed: 5,
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shapley);
criterion_main!(benches);
