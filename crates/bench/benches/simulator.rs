//! Criterion benches for the cluster-simulator substrate: job execution
//! throughput and utilization sampling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use rv_core::rv_scope::{GeneratorConfig, WorkloadGenerator};
use rv_core::rv_sim::exec::ExecOverrides;
use rv_core::rv_sim::{simulate_job, Cluster, ClusterConfig, SimConfig};

fn bench_simulate(c: &mut Criterion) {
    let generator = WorkloadGenerator::new(GeneratorConfig {
        n_templates: 50,
        ..Default::default()
    });
    let cluster = Cluster::new(ClusterConfig::default());
    let config = SimConfig::default();
    let instances = generator.instances_within(86_400.0);
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(instances.len() as u64));
    group.bench_function(format!("one-day-{}-instances", instances.len()), |b| {
        b.iter(|| {
            for instance in &instances {
                let template = generator
                    .template(instance.template_id)
                    .expect("instance produced by this generator");
                black_box(simulate_job(
                    template,
                    instance,
                    &cluster,
                    &config,
                    ExecOverrides::default(),
                ));
            }
        })
    });
    group.finish();
}

fn bench_utilization(c: &mut Criterion) {
    let cluster = Cluster::new(ClusterConfig::default());
    c.bench_function("cluster/sku-utilization-440-machines", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 17.0;
            black_box(cluster.sku_utilization(t))
        })
    });
}

criterion_group!(benches, bench_simulate, bench_utilization);
criterion_main!(benches);
