//! Criterion bench for the what-if engine (§7): re-scoring throughput of a
//! full test window under a scenario transformation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::OnceLock;

use rv_core::framework::{Framework, FrameworkConfig};
use rv_core::rv_sim::SkuGeneration;
use rv_core::whatif::{Scenario, WhatIfEngine};

fn framework() -> &'static Framework {
    static FRAMEWORK: OnceLock<Framework> = OnceLock::new();
    FRAMEWORK.get_or_init(|| {
        let mut cfg = FrameworkConfig::small();
        cfg.generator.n_templates = 24;
        cfg.characterize_support = 8;
        Framework::run(cfg).expect("valid bench config")
    })
}

fn bench_whatif(c: &mut Criterion) {
    let f = framework();
    let engine = WhatIfEngine::new(&f.ratio.predictor);
    let mut group = c.benchmark_group("whatif");
    group.throughput(Throughput::Elements(f.d3.store.len() as u64));
    group.bench_function("disable-spare-over-d3", |b| {
        b.iter(|| black_box(engine.evaluate(&f.d3.store, Scenario::DisableSpareTokens)))
    });
    group.bench_function("shift-sku-over-d3", |b| {
        b.iter(|| {
            black_box(engine.evaluate(
                &f.d3.store,
                Scenario::ShiftSku {
                    from: SkuGeneration::Gen3_5,
                    to: SkuGeneration::Gen5_2,
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_whatif);
criterion_main!(benches);
