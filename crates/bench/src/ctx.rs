//! Shared experiment context: one framework run + an output directory.

use std::path::{Path, PathBuf};

use rv_core::framework::{Framework, FrameworkConfig};
use rv_core::pipeline::ArtifactCache;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Quick run (~seconds): fewer templates, shorter campaign, k = 4.
    Small,
    /// The full reproduction (~a minute): 200 templates, 28 days, k = 8.
    Full,
}

impl Scale {
    /// The framework configuration for this scale.
    pub fn config(self) -> FrameworkConfig {
        match self {
            Scale::Small => FrameworkConfig::small(),
            Scale::Full => FrameworkConfig::default(),
        }
    }
}

/// Shared state across experiments in one invocation.
pub struct Ctx {
    /// The completed framework run.
    pub framework: Framework,
    /// Where CSV artifacts go.
    pub out_dir: PathBuf,
    /// The scale that was run.
    pub scale: Scale,
}

impl Ctx {
    /// Runs the framework at `scale` and prepares the output directory.
    ///
    /// Fails (instead of panicking) when the output directory cannot be
    /// created — e.g. a read-only location or a path that exists as a file —
    /// so binaries can exit with a proper message.
    pub fn new(scale: Scale, out_dir: &Path) -> Result<Self, String> {
        Self::with_cache(scale, out_dir, None)
    }

    /// As [`Ctx::new`], but loads/persists stage artifacts under `cache_dir`
    /// when one is given, so repeated invocations reuse matching stages.
    pub fn with_cache(
        scale: Scale,
        out_dir: &Path,
        cache_dir: Option<&Path>,
    ) -> Result<Self, String> {
        std::fs::create_dir_all(out_dir)
            .map_err(|e| format!("cannot create output directory {}: {e}", out_dir.display()))?;
        let framework = match cache_dir {
            Some(dir) => {
                let cache = ArtifactCache::new(dir)
                    .map_err(|e| format!("cannot open cache directory {}: {e}", dir.display()))?;
                Framework::run_cached(scale.config(), &cache)
            }
            None => Framework::run(scale.config()),
        }
        .map_err(|e| format!("invalid configuration: {e}"))?;
        Ok(Self {
            framework,
            out_dir: out_dir.to_path_buf(),
            scale,
        })
    }

    /// Path of an output artifact.
    pub fn path(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }

    /// Prints a section banner.
    pub fn banner(&self, title: &str) {
        println!("\n==== {title} ====");
    }
}
