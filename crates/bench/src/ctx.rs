//! Shared experiment context: one framework run + an output directory.

use std::path::{Path, PathBuf};

use rv_core::framework::{Framework, FrameworkConfig};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Quick run (~seconds): fewer templates, shorter campaign, k = 4.
    Small,
    /// The full reproduction (~a minute): 200 templates, 28 days, k = 8.
    Full,
}

impl Scale {
    /// The framework configuration for this scale.
    pub fn config(self) -> FrameworkConfig {
        match self {
            Scale::Small => FrameworkConfig::small(),
            Scale::Full => FrameworkConfig::default(),
        }
    }
}

/// Shared state across experiments in one invocation.
pub struct Ctx {
    /// The completed framework run.
    pub framework: Framework,
    /// Where CSV artifacts go.
    pub out_dir: PathBuf,
    /// The scale that was run.
    pub scale: Scale,
}

impl Ctx {
    /// Runs the framework at `scale` and prepares the output directory.
    ///
    /// Fails (instead of panicking) when the output directory cannot be
    /// created — e.g. a read-only location or a path that exists as a file —
    /// so binaries can exit with a proper message.
    pub fn new(scale: Scale, out_dir: &Path) -> Result<Self, String> {
        std::fs::create_dir_all(out_dir)
            .map_err(|e| format!("cannot create output directory {}: {e}", out_dir.display()))?;
        let framework =
            Framework::run(scale.config()).map_err(|e| format!("invalid configuration: {e}"))?;
        Ok(Self {
            framework,
            out_dir: out_dir.to_path_buf(),
            scale,
        })
    }

    /// Path of an output artifact.
    pub fn path(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }

    /// Prints a section banner.
    pub fn banner(&self, title: &str) {
        println!("\n==== {title} ====");
    }
}
