//! Prediction experiments: Fig 7a, Fig 7b, Fig 8, and the model ablation.

use std::collections::BTreeMap;

use rv_core::predictor::{ModelKind, PredictorConfig, ShapePredictor};
use rv_core::regression_baseline::{compare_distribution_fidelity, RuntimeRegressor};
use rv_core::report::{text_table, write_csv_records};
use rv_core::rv_learn::{accuracy, GbdtConfig, RandomForestConfig};
use rv_core::rv_telemetry::FeatureExtractor;

use crate::ctx::Ctx;

/// Fig 7a: confusion matrices and overall accuracy for both normalizations.
pub fn fig7a(ctx: &Ctx) {
    ctx.banner("Fig 7a — confusion matrix (test = D3)");
    let mut rows: Vec<Vec<String>> = Vec::new();
    for pipe in [&ctx.framework.ratio, &ctx.framework.delta] {
        println!(
            "{}: overall accuracy {:.2}% (paper: > 96%)",
            pipe.normalization,
            pipe.test_accuracy * 100.0
        );
        println!("{}", pipe.confusion.to_table());
        for (actual, row) in pipe.confusion.row_rates().iter().enumerate() {
            for (predicted, &rate) in row.iter().enumerate() {
                rows.push(vec![
                    pipe.normalization.to_string(),
                    actual.to_string(),
                    predicted.to_string(),
                    format!("{rate:.4}"),
                ]);
            }
        }
    }
    write_csv_records(
        &ctx.path("fig7a_confusion.csv"),
        &["normalization", "actual", "predicted", "rate"],
        rows,
    )
    .expect("write fig7a");
}

/// Fig 7b: accuracy and group counts bucketed by historic occurrences.
pub fn fig7b(ctx: &Ctx) {
    ctx.banner("Fig 7b — accuracy by number of historic occurrences");
    let f = &ctx.framework;
    let d3_start_s = f.d3.spec.from_days * 86_400.0;
    let buckets: [(usize, usize); 5] = [(1, 5), (6, 10), (11, 15), (16, 50), (51, usize::MAX)];
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for pipe in [&f.ratio, &f.delta] {
        // historic occurrences = runs observed before D3 begins.
        let mut acc: BTreeMap<usize, (usize, usize, usize)> = BTreeMap::new(); // bucket -> (n_inst, n_correct, n_groups)
        for key in f.d3.store.group_keys() {
            let historic = f
                .store
                .group_rows(key)
                .iter()
                .filter(|r| r.submit_time_s < d3_start_s)
                .count();
            let bucket = buckets
                .iter()
                .position(|&(lo, hi)| historic >= lo && historic <= hi)
                .unwrap_or(0);
            let Some(&truth) = pipe.test_labels.get(key) else {
                continue;
            };
            let e = acc.entry(bucket).or_default();
            e.2 += 1;
            for row in f.d3.store.group_rows(key) {
                e.0 += 1;
                if pipe.predictor.predict_row(row) == truth {
                    e.1 += 1;
                }
            }
        }
        println!("{}:", pipe.normalization);
        for (bucket, (n, correct, groups)) in &acc {
            let (lo, hi) = buckets[*bucket];
            let label = if hi == usize::MAX {
                format!("{lo}+")
            } else {
                format!("{lo}-{hi}")
            };
            let a = *correct as f64 / (*n).max(1) as f64;
            println!(
                "  occurrences {label:>6}: accuracy {:.2}% ({groups} groups, {n} instances)",
                a * 100.0
            );
            csv_rows.push(vec![
                pipe.normalization.to_string(),
                label,
                format!("{a:.4}"),
                groups.to_string(),
                n.to_string(),
            ]);
        }
    }
    write_csv_records(
        &ctx.path("fig7b_accuracy_by_occurrences.csv"),
        &[
            "normalization",
            "occurrence_bucket",
            "accuracy",
            "n_groups",
            "n_instances",
        ],
        csv_rows,
    )
    .expect("write fig7b");
}

/// Fig 8: distribution fidelity — regression baseline vs classification.
pub fn fig8(ctx: &Ctx) {
    ctx.banner("Fig 8 — QQ fidelity: regression baseline vs proposed approach");
    let f = &ctx.framework;
    let regressor = RuntimeRegressor::train(
        &f.d2.store,
        FeatureExtractor::new(f.history.clone()),
        &RandomForestConfig {
            n_trees: 40,
            ..Default::default()
        },
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    for pipe in [&f.ratio, &f.delta] {
        let report = compare_distribution_fidelity(
            &f.d3.store,
            &pipe.predictor,
            &pipe.characterization.catalog,
            &regressor,
            0x88f1,
        );
        println!(
            "{}: QQ-MAE regression {:.1}s vs classification {:.1}s; \
             tail(>=p90) MAE {:.1}s vs {:.1}s; KS {:.4} vs {:.4} (reduction {:.1}%)",
            pipe.normalization,
            report.qq_mae_regression,
            report.qq_mae_classification,
            report.tail_mae_regression,
            report.tail_mae_classification,
            report.ks_regression,
            report.ks_classification,
            report.ks_reduction_pct()
        );
        rows.push(vec![
            pipe.normalization.to_string(),
            format!("{:.4}", report.qq_mae_regression),
            format!("{:.4}", report.qq_mae_classification),
            format!("{:.4}", report.tail_mae_regression),
            format!("{:.4}", report.tail_mae_classification),
            format!("{:.6}", report.ks_regression),
            format!("{:.6}", report.ks_classification),
            format!("{:.2}", report.ks_reduction_pct()),
        ]);
    }
    write_csv_records(
        &ctx.path("fig8_fidelity.csv"),
        &[
            "normalization",
            "qq_mae_regression",
            "qq_mae_classification",
            "tail_mae_regression",
            "tail_mae_classification",
            "ks_regression",
            "ks_classification",
            "ks_reduction_pct",
        ],
        rows,
    )
    .expect("write fig8");
}

/// Ablation A5: classifier family comparison (§5.2).
pub fn ablation_model(ctx: &Ctx) {
    ctx.banner("Ablation — classifier family (§5.2)");
    let f = &ctx.framework;
    let pipe = &f.ratio;
    let kinds: Vec<(&str, ModelKind)> = vec![
        (
            "gbdt",
            ModelKind::Gbdt(GbdtConfig {
                n_rounds: 40,
                ..Default::default()
            }),
        ),
        (
            "random-forest",
            ModelKind::RandomForest(RandomForestConfig {
                n_trees: 40,
                ..Default::default()
            }),
        ),
        ("naive-bayes", ModelKind::NaiveBayes),
        (
            "ensemble",
            ModelKind::Ensemble(
                GbdtConfig {
                    n_rounds: 30,
                    ..Default::default()
                },
                RandomForestConfig {
                    n_trees: 30,
                    ..Default::default()
                },
            ),
        ),
    ];

    let mut table_rows: Vec<Vec<String>> = Vec::new();
    for (name, model) in kinds {
        let (predictor, _) = ShapePredictor::train(
            &f.d2.store,
            &pipe.train_labels,
            FeatureExtractor::new(f.history.clone()),
            f.config.k,
            &PredictorConfig {
                model,
                ..Default::default()
            },
        );
        let mut truth = Vec::new();
        let mut predicted = Vec::new();
        for row in f.d3.store.rows() {
            if let Some(&label) = pipe.test_labels.get(&row.group) {
                truth.push(label);
                predicted.push(predictor.predict_row(row));
            }
        }
        let a = accuracy(&truth, &predicted);
        table_rows.push(vec![name.to_string(), format!("{:.4}", a)]);
    }
    println!("{}", text_table(&["model", "accuracy"], &table_rows));
    write_csv_records(
        &ctx.path("ablation_model.csv"),
        &["model", "accuracy"],
        table_rows,
    )
    .expect("write ablation_model");
}

/// Top feature importances of the trained predictors (§5.2's Gini
/// importance discussion).
pub fn feature_importances(ctx: &Ctx) {
    ctx.banner("Feature importances (Gini/gain, §5.2)");
    let mut rows: Vec<Vec<String>> = Vec::new();
    for pipe in [&ctx.framework.ratio, &ctx.framework.delta] {
        println!("{} — top 12:", pipe.normalization);
        for (name, v) in pipe.predictor.importances().into_iter().take(12) {
            println!("  {name:<28} {v:.4}");
            rows.push(vec![
                pipe.normalization.to_string(),
                name.to_string(),
                format!("{v:.6}"),
            ]);
        }
    }
    write_csv_records(
        &ctx.path("feature_importances.csv"),
        &["normalization", "feature", "importance"],
        rows,
    )
    .expect("write importances");
}
