//! Descriptive experiments: Table 1, Fig 1, Fig 3, Fig 4a/4b.

use rv_core::report::{text_table, write_csv, write_csv_records};
use rv_core::rv_scope::JobInstance;
use rv_core::rv_scope::WorkloadGenerator;
use rv_core::rv_sim::exec::ExecOverrides;
use rv_core::rv_sim::{simulate_job, Cluster};
use rv_core::scalar_metrics::{cov_pairs, median_scatter, stalagmite_stats};

use crate::ctx::Ctx;

/// Table 1: dataset sizes (intervals, groups, instances, support).
pub fn table1(ctx: &Ctx) {
    ctx.banner("Table 1 — datasets");
    let rows: Vec<Vec<String>> = ctx
        .framework
        .dataset_summary()
        .into_iter()
        .map(|(name, groups, instances, support)| {
            vec![
                name,
                groups.to_string(),
                instances.to_string(),
                support.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &["dataset", "job groups", "job instances", "support"],
            &rows
        )
    );
    write_csv_records(
        &ctx.path("table1_datasets.csv"),
        &["dataset", "job_groups", "job_instances", "support"],
        rows,
    )
    .expect("write table1");
}

/// Fig 1: runtime series of recurring jobs with different frequencies.
pub fn fig1(ctx: &Ctx) {
    ctx.banner("Fig 1 — recurring jobs' runtime series");
    let f = &ctx.framework;
    // Pick up to 4 groups with distinct cadence (instance counts).
    let mut picked: Vec<(String, usize)> = Vec::new();
    for key in f.store.group_keys() {
        let n = f.store.group_rows(key).len();
        if picked
            .iter()
            .all(|(_, pn)| (n as f64 / *pn as f64 - 1.0).abs() > 0.5)
            || picked.is_empty()
        {
            picked.push((key.normalized_name.clone(), n));
        }
        if picked.len() == 4 {
            break;
        }
    }
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, n) in &picked {
        rv_obs::info!("group {name}: {n} runs over the campaign");
        let key = f
            .store
            .group_keys()
            .find(|k| &k.normalized_name == name)
            .expect("picked group exists")
            .clone();
        for r in f.store.group_rows(&key) {
            rows.push(vec![
                name.clone(),
                format!("{:.4}", r.submit_time_s / 86_400.0),
                format!("{:.2}", r.runtime_s),
            ]);
        }
    }
    write_csv_records(
        &ctx.path("fig1_recurring_series.csv"),
        &["group", "t_days", "runtime_s"],
        rows,
    )
    .expect("write fig1");
}

/// Fig 3: token skyline of a spare-token-assisted run.
pub fn fig3(ctx: &Ctx) {
    ctx.banner("Fig 3 — token usage skyline");
    let f = &ctx.framework;
    // Rebuild the deterministic substrate and re-simulate the run with the
    // highest spare-token usage to capture its full skyline.
    let mut generator_config = f.config.generator.clone();
    generator_config.window_days_hint = f.config.campaign.window_days;
    let generator = WorkloadGenerator::new(generator_config);
    let cluster = Cluster::new(f.config.cluster.clone());

    let best = f
        .store
        .rows()
        .iter()
        .max_by(|a, b| a.spare_avg.total_cmp(&b.spare_avg))
        .expect("store non-empty");
    let Some(template) = generator.template(best.template_id) else {
        eprintln!(
            "warning: skipping spare-usage replay: unknown template id {}",
            best.template_id
        );
        return;
    };
    let instance = JobInstance {
        template_id: best.template_id,
        seq: best.seq,
        submit_time_s: best.submit_time_s,
        input_gb: best.data_read_gb,
    };
    let run = simulate_job(
        template,
        &instance,
        &cluster,
        &f.config.sim,
        ExecOverrides::default(),
    );
    println!(
        "job {}: allocated {} tokens, peak usage {} (spare granted {})",
        best.group,
        run.allocated_tokens,
        run.skyline.peak(),
        run.spare_tokens
    );
    let rows: Vec<Vec<f64>> = run
        .skyline
        .segments()
        .iter()
        .map(|&(s, e, n)| vec![s, e, n as f64, run.allocated_tokens as f64])
        .collect();
    write_csv(
        &ctx.path("fig3_token_skyline.csv"),
        &["start_s", "end_s", "tokens_in_use", "allocated"],
        rows,
    )
    .expect("write fig3");
}

/// Fig 4a: historic median vs instance runtimes — diagonal + stalagmite.
pub fn fig4a(ctx: &Ctx) {
    ctx.banner("Fig 4a — median vs instance runtimes");
    let f = &ctx.framework;
    let scatter = median_scatter(&f.d3.store, &f.history);
    let stats = stalagmite_stats(&scatter, 5.0);
    println!(
        "{} points; stalagmite (>= {}x median): {} points = {:.2}% (paper: < 5%)",
        stats.n_points,
        stats.threshold,
        stats.n_stalagmite,
        stats.fraction() * 100.0
    );
    write_csv(
        &ctx.path("fig4a_median_scatter.csv"),
        &["historic_median_s", "runtime_s"],
        scatter.iter().map(|&(m, r)| vec![m, r]),
    )
    .expect("write fig4a");
}

/// Fig 4b: historic COV vs observed COV per group.
pub fn fig4b(ctx: &Ctx) {
    ctx.banner("Fig 4b — historic COV vs observed COV");
    let f = &ctx.framework;
    let pairs = cov_pairs(&f.d3.store, &f.history, 3);
    // How predictive is historic COV? Rank correlation as a summary.
    let corr = rv_core::rv_learn::feature_select::pearson(
        &pairs.iter().map(|p| p.0).collect::<Vec<_>>(),
        &pairs.iter().map(|p| p.1).collect::<Vec<_>>(),
    );
    println!(
        "{} groups; Pearson(historic COV, observed COV) = {corr:.3} — historic COV is a weak \
         predictor of future COV (the paper's Fig 4b point)",
        pairs.len()
    );
    write_csv(
        &ctx.path("fig4b_cov_pairs.csv"),
        &["historic_cov", "observed_cov"],
        pairs.iter().map(|&(h, o)| vec![h, o]),
    )
    .expect("write fig4b");
}
