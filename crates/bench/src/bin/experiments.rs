//! The experiment harness: regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! experiments [--scale small|full] [--out DIR] [--threads N] [--trace T]
//!             [--metrics-summary] [--cache-dir DIR] [--no-cache]
//!             [--chaos-seed S] [EXPERIMENT...]
//! ```
//!
//! With no experiment names, runs everything. Valid names: `table1`, `fig1`,
//! `fig3`, `fig4a`, `fig4b`, `fig5`, `table2`, `fig6`, `fig7a`, `fig7b`,
//! `fig8`, `fig9`, `importances`, `scenario1`, `scenario2`, `scenario3`,
//! `ablation-bins`, `ablation-cluster`, `ablation-smooth`, `ablation-k`,
//! `ablation-model`.
//!
//! Progress goes through the structured logger (filter with
//! `RUNVAR_LOG=error|warn|info|debug`); tables and figure text stay on
//! stdout. `--trace` writes a JSON-lines trace; `--metrics-summary` prints
//! per-phase wall times and simulator counters at exit. `--chaos-seed S`
//! runs the whole harness under a seeded fault-injection plan (torn artifact
//! writes, corrupted loads, faulting campaign tasks); results are unchanged
//! because every fault path retries to convergence.

use std::path::PathBuf;
use std::process::ExitCode;

use rv_bench::ctx::{Ctx, Scale};
use rv_bench::{exp_characterize, exp_descriptive, exp_explain, exp_predict, exp_whatif};

const ALL: &[&str] = &[
    "table1",
    "fig1",
    "fig3",
    "fig4a",
    "fig4b",
    "fig5",
    "table2",
    "fig6",
    "fig7a",
    "fig7b",
    "fig8",
    "fig9",
    "importances",
    "scenario1",
    "scenario2",
    "scenario3",
    "ablation-bins",
    "ablation-cluster",
    "ablation-smooth",
    "ablation-k",
    "ablation-model",
];

fn main() -> ExitCode {
    let mut scale = Scale::Full;
    let mut out_dir = PathBuf::from("target/experiments");
    let mut selected: Vec<String> = Vec::new();
    let mut trace_path: Option<PathBuf> = None;
    let mut want_summary = false;
    let mut cache_dir: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut chaos_seed: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().as_deref() {
                Some("small") => scale = Scale::Small,
                Some("full") => scale = Scale::Full,
                other => {
                    rv_obs::error!("--scale must be 'small' or 'full', got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    rv_obs::error!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match args.next() {
                Some(path) if !path.starts_with("--") => trace_path = Some(PathBuf::from(path)),
                _ => {
                    rv_obs::error!("--trace requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => rv_par::set_global_threads(n),
                None => {
                    rv_obs::error!("--threads requires a non-negative integer");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics-summary" => want_summary = true,
            "--cache-dir" => match args.next() {
                Some(dir) if !dir.starts_with("--") => cache_dir = Some(PathBuf::from(dir)),
                _ => {
                    rv_obs::error!("--cache-dir requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--no-cache" => no_cache = true,
            "--chaos-seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(seed) => chaos_seed = Some(seed),
                None => {
                    rv_obs::error!("--chaos-seed requires an integer seed");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "experiments [--scale small|full] [--out DIR] [--threads N] [--trace T] \
                     [--metrics-summary] [--cache-dir DIR] [--no-cache] [--chaos-seed S] \
                     [EXPERIMENT...]"
                );
                println!("experiments: {}", ALL.join(", "));
                return ExitCode::SUCCESS;
            }
            name if ALL.contains(&name) => selected.push(name.to_string()),
            other => {
                rv_obs::error!("unknown experiment {other:?}; valid: {}", ALL.join(", "));
                return ExitCode::FAILURE;
            }
        }
    }
    if selected.is_empty() {
        selected = ALL.iter().map(|s| s.to_string()).collect();
    }

    if want_summary || trace_path.is_some() {
        if let Err(e) = rv_obs::init(rv_obs::ObsConfig {
            trace_path,
            log_level: None,
        }) {
            rv_obs::error!("cannot open trace file: {e}");
            return ExitCode::FAILURE;
        }
    }

    rv_obs::info!(
        "running {} experiment(s) at {:?} scale; artifacts -> {}",
        selected.len(),
        scale,
        out_dir.display()
    );
    let start = std::time::Instant::now();
    let _chaos_guard = chaos_seed.map(|seed| {
        rv_obs::info!("chaos mode: fault plan seed {seed}");
        rv_core::pipeline::fault::install(rv_core::pipeline::FaultPlan::new(seed))
    });
    let cache_dir = if no_cache { None } else { cache_dir };
    let ctx = match Ctx::with_cache(scale, &out_dir, cache_dir.as_deref()) {
        Ok(ctx) => ctx,
        Err(e) => {
            rv_obs::error!("{e}");
            return ExitCode::FAILURE;
        }
    };
    rv_obs::info!(
        "framework run complete in {:.1}s ({} telemetry rows, {} groups)",
        start.elapsed().as_secs_f64(),
        ctx.framework.store.len(),
        ctx.framework.store.n_groups()
    );

    for name in &selected {
        match name.as_str() {
            "table1" => exp_descriptive::table1(&ctx),
            "fig1" => exp_descriptive::fig1(&ctx),
            "fig3" => exp_descriptive::fig3(&ctx),
            "fig4a" => exp_descriptive::fig4a(&ctx),
            "fig4b" => exp_descriptive::fig4b(&ctx),
            "fig5" => exp_characterize::fig5(&ctx),
            "table2" => exp_characterize::table2(&ctx),
            "fig6" => exp_characterize::fig6(&ctx),
            "fig7a" => exp_predict::fig7a(&ctx),
            "fig7b" => exp_predict::fig7b(&ctx),
            "fig8" => exp_predict::fig8(&ctx),
            "fig9" => exp_explain::fig9(&ctx),
            "importances" => exp_predict::feature_importances(&ctx),
            "scenario1" => exp_whatif::scenario1(&ctx),
            "scenario2" => exp_whatif::scenario2(&ctx),
            "scenario3" => exp_whatif::scenario3(&ctx),
            "ablation-bins" => exp_characterize::ablation_bins(&ctx),
            "ablation-cluster" => exp_characterize::ablation_cluster(&ctx),
            "ablation-smooth" => exp_characterize::ablation_smooth(&ctx),
            "ablation-k" => exp_characterize::ablation_k(&ctx),
            "ablation-model" => exp_predict::ablation_model(&ctx),
            _ => unreachable!("validated above"),
        }
    }
    rv_obs::info!(
        "all done in {:.1}s; artifacts in {}",
        start.elapsed().as_secs_f64(),
        out_dir.display()
    );
    if rv_obs::enabled() {
        rv_obs::flush();
        if want_summary {
            print!("{}", rv_obs::render_summary());
        }
    }
    ExitCode::SUCCESS
}
