//! `runvar` — command-line front end for the runtime-variation framework.
//!
//! ```text
//! runvar run       [--scale small|paper] [--trace T] [--metrics-summary]
//!                  [--cache-dir DIR] [--no-cache]
//! runvar audit     [--scale small|paper] [--fault-schedules N]
//!                  [--fault-seed S] [--work-dir DIR]
//! runvar simulate  --out telemetry.csv [--templates N] [--days D] [--seed S]
//!                  (both also take --threads N)
//! runvar characterize --telemetry telemetry.csv --out catalog.txt
//!                     [--normalization ratio|delta] [--k K] [--support N]
//! runvar assess    --telemetry telemetry.csv --catalog catalog.txt
//!                  [--threshold 2.0]
//! runvar explain-plan --telemetry telemetry.csv --group NAME
//! ```
//!
//! The subcommands compose through files: capture a campaign once
//! (`simulate`), learn the shape catalog from it (`characterize`), then
//! assess SLO risk for every group against a saved catalog (`assess`);
//! `run` executes the whole study (Fig 2) in one process.
//!
//! Observability flags work on every subcommand: `--trace <path>` writes a
//! JSON-lines trace of spans, progress events, and log lines;
//! `--metrics-summary` prints per-phase wall times and simulator counters at
//! exit. Log verbosity follows the `RUNVAR_LOG` env var
//! (`error|warn|info|debug`).
//!
//! `--threads N` (or `RUNVAR_THREADS=N`) sets the worker-pool width for the
//! parallel hot paths; `1` forces serial execution and `0`/unset picks the
//! CPU count. Output is byte-identical at every setting.
//!
//! `run --cache-dir <dir>` persists fingerprinted stage artifacts and reuses
//! them on later invocations with a matching configuration (cache stats are
//! reported on stderr); `--no-cache` ignores the cache for one run.
//!
//! `audit` replays the framework under N seeded fault schedules — torn
//! artifact writes, corrupted loads, panicking and erroring campaign tasks
//! — and verifies every schedule converges (through bounded retries,
//! checksum rejection, and pool panic isolation) to artifacts byte-identical
//! to a fault-free run. `--chaos-seed S` on any other subcommand installs
//! the same fault plan for that one invocation.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use rv_core::characterize::{characterize, CharacterizeConfig};
use rv_core::framework::{Framework, FrameworkConfig};
use rv_core::likelihood::assign_group;
use rv_core::persist::{read_catalog, write_catalog};
use rv_core::pipeline::ArtifactCache;
use rv_core::risk::{breach_probability, RiskLevel};
use rv_core::rv_scope::{GeneratorConfig, WorkloadGenerator};
use rv_core::rv_sim::{Cluster, ClusterConfig, SimConfig};
use rv_core::rv_stats::{median, Normalization};
use rv_core::rv_telemetry::{
    collect_telemetry, read_store, write_store, CampaignConfig, TelemetryStore,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: runvar <run|simulate|characterize|assess|explain-plan> [flags]");
        return ExitCode::FAILURE;
    };
    let flags = Flags::parse(&args[1..]);

    let want_summary = flags.has("metrics-summary");
    // `--trace` as a bare switch would otherwise write a file literally
    // named "true" (the parser's boolean marker) into the cwd.
    if flags.get("trace") == Some("true") {
        eprintln!("error: --trace requires a file path (use ./true for a file named true)");
        return ExitCode::FAILURE;
    }
    let trace_path = flags.get("trace").map(std::path::PathBuf::from);
    if let Some(threads) = flags.get("threads") {
        match threads.parse::<usize>() {
            Ok(n) => rv_par::set_global_threads(n),
            Err(_) => {
                eprintln!("error: --threads must be a non-negative integer, got {threads:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    if want_summary || trace_path.is_some() {
        if let Err(e) = rv_obs::init(rv_obs::ObsConfig {
            trace_path,
            log_level: None,
        }) {
            eprintln!("error: cannot open trace file: {e}");
            return ExitCode::FAILURE;
        }
    }

    // `--chaos-seed S`: run this one invocation under an injected-fault
    // plan (the audit subcommand manages its own plans instead).
    let chaos_guard = match flags.get("chaos-seed").filter(|_| cmd != "audit") {
        Some(s) => match s.parse::<u64>() {
            Ok(seed) => Some(rv_core::pipeline::fault::install(
                rv_core::pipeline::FaultPlan::new(seed),
            )),
            Err(_) => {
                eprintln!("error: --chaos-seed must be an integer, got {s:?}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let result = match cmd.as_str() {
        "run" => run_framework(&flags),
        "audit" => run_audit(&flags),
        "simulate" => simulate(&flags),
        "characterize" => run_characterize(&flags),
        "assess" => assess(&flags),
        "explain-plan" => explain_plan(&flags),
        "--help" | "-h" | "help" => {
            println!("subcommands: run, audit, simulate, characterize, assess, explain-plan");
            println!("observability: --trace <path>, --metrics-summary, RUNVAR_LOG=level");
            println!("parallelism: --threads <n> (0 = auto; default RUNVAR_THREADS or CPU count)");
            println!("caching: run --cache-dir <dir> reuses fingerprinted stage artifacts; --no-cache disables");
            println!("fault injection: audit --fault-schedules <n> --fault-seed <s>; --chaos-seed <s> on other subcommands");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    };
    drop(chaos_guard);

    if rv_obs::enabled() {
        rv_obs::emit(
            "run.end",
            &[
                ("command", rv_obs::FieldValue::from(cmd.as_str())),
                ("ok", rv_obs::FieldValue::from(result.is_ok())),
            ],
        );
        rv_obs::flush();
        if want_summary {
            print!("{}", rv_obs::render_summary());
        }
    }

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal `--key value` flag parser. A `--key` followed by another flag
/// (or by nothing) is a boolean switch.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Self {
        let mut out = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        out.push((key.to_string(), it.next().expect("peeked").clone()));
                    }
                    _ => out.push((key.to_string(), "true".to_string())),
                }
            }
        }
        Self(out)
    }

    fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }
}

fn run_framework(flags: &Flags) -> Result<(), String> {
    let config = match flags.get_or("scale", "small") {
        "small" => FrameworkConfig::small(),
        "paper" | "full" => FrameworkConfig::default(),
        other => return Err(format!("unknown scale {other:?} (small|paper)")),
    };
    let cache = match flags.get("cache-dir") {
        Some(dir) if !flags.has("no-cache") => {
            Some(ArtifactCache::new(dir).map_err(|e| format!("cannot open cache dir {dir}: {e}"))?)
        }
        _ => None,
    };
    rv_obs::info!(
        "running full framework: {} templates, {} days",
        config.generator.n_templates,
        config.campaign.window_days
    );
    let fw = match &cache {
        Some(cache) => Framework::run_cached(config, cache),
        None => Framework::run(config),
    }
    .map_err(|e| e.to_string())?;
    if let Some(cache) = &cache {
        // Stats go to stderr so stdout stays byte-identical cold vs warm.
        let (hits, misses) = cache.stats();
        eprintln!("cache: {hits} hits, {misses} misses");
    }
    println!(
        "{:<6} {:>8} {:>10} {:>9}",
        "set", "groups", "instances", "support"
    );
    for (name, groups, instances, support) in fw.dataset_summary() {
        println!("{name:<6} {groups:>8} {instances:>10} {support:>9}");
    }
    for pipe in [&fw.ratio, &fw.delta] {
        println!(
            "{:<6} accuracy {:.3} over {} test groups",
            pipe.normalization.name(),
            pipe.test_accuracy,
            pipe.test_labels.len()
        );
    }
    Ok(())
}

fn run_audit(flags: &Flags) -> Result<(), String> {
    let config = match flags.get_or("scale", "small") {
        "small" => FrameworkConfig::small(),
        "paper" | "full" => FrameworkConfig::default(),
        other => return Err(format!("unknown scale {other:?} (small|paper)")),
    };
    let n_schedules: u64 = flags
        .get_or("fault-schedules", "3")
        .parse()
        .map_err(|_| "bad --fault-schedules")?;
    if n_schedules == 0 {
        return Err("--fault-schedules must be at least 1".into());
    }
    let seed: u64 = flags
        .get_or("fault-seed", "17")
        .parse()
        .map_err(|_| "bad --fault-seed")?;
    let keep_workdir = flags.has("work-dir");
    let workdir = match flags.get("work-dir") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("runvar-audit-{}", std::process::id())),
    };

    eprintln!(
        "audit: fault-free baseline, then {n_schedules} fault schedules (seed {seed}) in {}",
        workdir.display()
    );
    let report = rv_core::pipeline::audit(&config, n_schedules, seed, &workdir)
        .map_err(|e| e.to_string())?;

    for outcome in &report.schedules {
        let injected: u64 = outcome.injected.iter().map(|(_, v)| v).sum();
        let retries: u64 = outcome.retries.iter().map(|(_, v)| v).sum();
        let verdict = match &outcome.divergence {
            None => "byte-identical".to_string(),
            Some(d) => format!("DIVERGED: {d}"),
        };
        println!(
            "schedule seed={}: {injected} faults injected, {retries} retries -> {verdict}",
            outcome.seed
        );
        for (name, count) in outcome.injected.iter().chain(&outcome.retries) {
            println!("    {name}: {count}");
        }
    }

    if !report.converged() {
        return Err(format!(
            "artifacts diverged under fault injection (work dir kept at {})",
            workdir.display()
        ));
    }
    if report.total_injected() == 0 {
        return Err(
            "audit injected zero faults — the schedules never exercised a fault path; \
             try a different --fault-seed"
                .into(),
        );
    }
    println!(
        "audit: {}/{} fault schedules converged to byte-identical artifacts \
         ({} artifacts, {} faults injected, {} retries spent)",
        report.schedules.len(),
        n_schedules,
        report.n_artifacts,
        report.total_injected(),
        report.total_retries()
    );
    if !keep_workdir {
        let _ = std::fs::remove_dir_all(&workdir);
    }
    Ok(())
}

fn load_store(path: &str) -> Result<TelemetryStore, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    read_store(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
}

fn simulate(flags: &Flags) -> Result<(), String> {
    let out_path = flags.require("out")?;
    let n_templates: usize = flags
        .get_or("templates", "100")
        .parse()
        .map_err(|_| "bad --templates")?;
    let days: f64 = flags
        .get_or("days", "14")
        .parse()
        .map_err(|_| "bad --days")?;
    let seed: u64 = flags
        .get_or("seed", "1")
        .parse()
        .map_err(|_| "bad --seed")?;

    let generator = WorkloadGenerator::new(GeneratorConfig {
        n_templates,
        seed,
        window_days_hint: days,
        ..Default::default()
    });
    let cluster = Cluster::new(ClusterConfig::default());
    let sim = SimConfig {
        seed: seed ^ 0x51u64,
        ..Default::default()
    };
    let store = collect_telemetry(
        &generator,
        &cluster,
        &sim,
        &CampaignConfig {
            window_days: days,
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let file = File::create(out_path).map_err(|e| format!("create {out_path}: {e}"))?;
    let mut w = BufWriter::new(file);
    write_store(&store, &mut w).map_err(|e| e.to_string())?;
    println!(
        "simulated {} instances across {} groups over {days} days -> {out_path}",
        store.len(),
        store.n_groups()
    );
    Ok(())
}

fn run_characterize(flags: &Flags) -> Result<(), String> {
    let store = load_store(flags.require("telemetry")?)?;
    let out_path = flags.require("out")?;
    let normalization = match flags.get_or("normalization", "ratio") {
        "ratio" => Normalization::Ratio,
        "delta" => Normalization::Delta,
        other => return Err(format!("unknown normalization {other:?}")),
    };
    let k: usize = flags.get_or("k", "8").parse().map_err(|_| "bad --k")?;
    let support: usize = flags
        .get_or("support", "20")
        .parse()
        .map_err(|_| "bad --support")?;

    let ch = characterize(
        &store,
        &CharacterizeConfig {
            k,
            min_support: support,
            ..CharacterizeConfig::paper(normalization)
        },
    );
    println!("{}", ch.catalog.to_table());
    let file = File::create(out_path).map_err(|e| format!("create {out_path}: {e}"))?;
    let mut w = BufWriter::new(file);
    write_catalog(&ch.catalog, &mut w).map_err(|e| e.to_string())?;
    println!(
        "catalog with {k} shapes over {} groups -> {out_path}",
        ch.memberships.len()
    );
    Ok(())
}

fn assess(flags: &Flags) -> Result<(), String> {
    let store = load_store(flags.require("telemetry")?)?;
    let catalog_path = flags.require("catalog")?;
    let file = File::open(catalog_path).map_err(|e| format!("open {catalog_path}: {e}"))?;
    let catalog = read_catalog(BufReader::new(file)).map_err(|e| e.to_string())?;
    let threshold: f64 = flags
        .get_or("threshold", "2.0")
        .parse()
        .map_err(|_| "bad --threshold")?;

    println!(
        "{:<40} {:>6} {:>11} {:>8}",
        "group", "shape", "P(breach)", "risk"
    );
    let mut flagged = 0;
    let mut total = 0;
    // Assign each group from its observed runtimes (Eq. 9) and read the
    // breach probability off its shape.
    for key in store.group_keys() {
        let runtimes = store.group_runtimes(key);
        if runtimes.len() < 3 {
            continue;
        }
        total += 1;
        let med = median(&runtimes).expect("non-empty");
        let (shape, _) = assign_group(&catalog, &runtimes, med);
        let breach = breach_probability(&catalog, shape, threshold);
        let level = RiskLevel::from_probability(breach);
        if level != RiskLevel::Low {
            flagged += 1;
            println!(
                "{:<40} {:>6} {:>10.2}% {:>8}",
                key.normalized_name,
                shape,
                breach * 100.0,
                level
            );
        }
    }
    println!("\n{flagged} of {total} groups above the low-risk band");
    Ok(())
}

fn explain_plan(flags: &Flags) -> Result<(), String> {
    let store = load_store(flags.require("telemetry")?)?;
    let name = flags.require("group")?;
    let Some(key) = store
        .group_keys()
        .find(|k| k.normalized_name.contains(name))
        .cloned()
    else {
        return Err(format!("no group matching {name:?}"));
    };
    let rows = store.group_rows(&key);
    let row = rows.first().expect("group has rows");
    println!("group {key}: {} recurrences captured", rows.len());
    println!(
        "plan summary: {} stages, critical path {}, {} base vertices",
        row.n_stages, row.critical_path, row.total_base_vertices
    );
    println!(
        "operator counts: {:?}",
        row.operator_counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| format!("{}x{c}", rv_core::rv_scope::OperatorKind::ALL[i].name()))
            .collect::<Vec<_>>()
    );
    Ok(())
}
