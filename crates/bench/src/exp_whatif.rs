//! What-if experiments: §7 Scenarios 1–3, plus the simulator-replay
//! corroboration of Scenario 1 (the paper corroborates it against a
//! production policy change: "jobs with fewer spare tokens run slower but
//! with less variance").

use rv_core::report::write_csv_records;
use rv_core::rv_scope::{JobInstance, WorkloadGenerator};
use rv_core::rv_sim::exec::ExecOverrides;
use rv_core::rv_sim::{simulate_job, Cluster, SkuGeneration};
use rv_core::rv_stats::Summary;
use rv_core::whatif::{Scenario, WhatIfEngine};

use crate::ctx::Ctx;

fn run_scenario(ctx: &Ctx, scenario: Scenario, csv_name: &str) {
    let f = &ctx.framework;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for pipe in [&f.ratio, &f.delta] {
        let engine = WhatIfEngine::new(&pipe.predictor);
        let outcome = engine.evaluate(&f.d3.store, scenario);
        println!("[{}]", pipe.normalization);
        print!("{}", outcome.describe(&pipe.characterization.catalog, 5));
        for (from, to, count, pct) in outcome.transitions.top_transitions().into_iter().take(10) {
            rows.push(vec![
                pipe.normalization.to_string(),
                from.to_string(),
                to.to_string(),
                count.to_string(),
                format!("{pct:.2}"),
            ]);
        }
    }
    write_csv_records(
        &ctx.path(csv_name),
        &[
            "normalization",
            "from_cluster",
            "to_cluster",
            "n_jobs",
            "pct_of_from",
        ],
        rows,
    )
    .expect("write scenario csv");
}

/// Scenario 1 (§7.1): disable spare tokens.
pub fn scenario1(ctx: &Ctx) {
    ctx.banner("Scenario 1 — spare-token allocation (§7.1)");
    run_scenario(ctx, Scenario::DisableSpareTokens, "scenario1_spare.csv");
    replay_spare_validation(ctx);
}

/// Scenario 2 (§7.2): shift vertices Gen3.5 → Gen5.2.
pub fn scenario2(ctx: &Ctx) {
    ctx.banner("Scenario 2 — scheduling on later-generation machines (§7.2)");
    run_scenario(
        ctx,
        Scenario::ShiftSku {
            from: SkuGeneration::Gen3_5,
            to: SkuGeneration::Gen5_2,
        },
        "scenario2_sku.csv",
    );
}

/// Scenario 3 (§7.3): perfect load balance at the fleet's average level.
pub fn scenario3(ctx: &Ctx) {
    ctx.banner("Scenario 3 — improving load balance (§7.3)");
    let f = &ctx.framework;
    let level =
        f.d3.store
            .rows()
            .iter()
            .map(|r| r.cluster_load)
            .sum::<f64>()
            / f.d3.store.len().max(1) as f64;
    println!("balancing every machine at the fleet average utilization {level:.2}");
    run_scenario(
        ctx,
        Scenario::PerfectLoadBalance { level },
        "scenario3_load.csv",
    );
}

/// Replays the heaviest spare-using groups through the simulator with spare
/// tokens disabled — the ground-truth counterpart of Scenario 1's prediction.
/// Comparisons are *per group* (each group's own runs with vs without
/// spares), then summarized across groups; the paper's production
/// observation is that runs get *slower* but *less variable*.
fn replay_spare_validation(ctx: &Ctx) {
    let f = &ctx.framework;
    let mut generator_config = f.config.generator.clone();
    generator_config.window_days_hint = f.config.campaign.window_days;
    let generator = WorkloadGenerator::new(generator_config);
    let cluster = Cluster::new(f.config.cluster.clone());

    // The most spare-dependent groups, by the share of their token usage
    // that came from spares.
    let mut groups: Vec<_> = f
        .history
        .iter()
        .filter(|(_, s)| s.spare_avg > 0.5 && s.token_avg_avg > 0.0)
        .map(|(k, s)| (k.clone(), s.spare_avg / s.token_avg_avg))
        .collect();
    groups.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite spare usage"));
    groups.truncate(12);
    if groups.is_empty() {
        rv_obs::warn!("replay: no spare-using groups — skipping validation");
        return;
    }

    let mut median_changes = Vec::new();
    let mut std_changes = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for (key, _) in &groups {
        // Replay up to 40 of the group's recorded instances.
        let rows: Vec<_> = f.store.group_rows(key).into_iter().take(150).collect();
        if rows.len() < 10 {
            continue;
        }
        let mut base = Vec::with_capacity(rows.len());
        let mut nospare = Vec::with_capacity(rows.len());
        for r in &rows {
            let Some(template) = generator.template(r.template_id) else {
                // A stale cached artifact can reference templates this
                // generator never produced; skip rather than panic.
                eprintln!(
                    "warning: skipping row with unknown template id {}",
                    r.template_id
                );
                continue;
            };
            let instance = JobInstance {
                template_id: r.template_id,
                seq: r.seq,
                submit_time_s: r.submit_time_s,
                input_gb: r.data_read_gb,
            };
            let with = simulate_job(
                template,
                &instance,
                &cluster,
                &f.config.sim,
                ExecOverrides::default(),
            );
            let without = simulate_job(
                template,
                &instance,
                &cluster,
                &f.config.sim,
                ExecOverrides {
                    disable_spare: true,
                    ..Default::default()
                },
            );
            base.push(with.runtime_s);
            nospare.push(without.runtime_s);
        }
        let sb = Summary::compute(&base).expect("non-empty");
        let sn = Summary::compute(&nospare).expect("non-empty");
        median_changes.push(sn.median / sb.median - 1.0);
        // Relative dispersion via the robust IQR/median ratio: rare
        // disruption outliers would otherwise dominate a std-based COV on
        // finite samples.
        let disp_b = sb.iqr() / sb.median.max(1e-9);
        let disp_n = sn.iqr() / sn.median.max(1e-9);
        std_changes.push(if disp_b > 0.0 {
            disp_n / disp_b - 1.0
        } else {
            0.0
        });
        csv_rows.push(vec![
            key.to_string(),
            format!("{:.3}", sb.median),
            format!("{:.3}", sn.median),
            format!("{:.4}", sb.std_dev / sb.median.max(1e-9)),
            format!("{:.4}", sn.std_dev / sn.median.max(1e-9)),
        ]);
    }
    if median_changes.is_empty() {
        rv_obs::warn!("replay: spare-using groups too small — skipping validation");
        return;
    }
    let n = median_changes.len() as f64;
    let mean_median_change = median_changes.iter().sum::<f64>() / n * 100.0;
    let mean_std_change = std_changes.iter().sum::<f64>() / n * 100.0;
    println!(
        "replay over {} spare-heavy groups: disabling spares makes the median runtime \
         {mean_median_change:+.1}% and the relative IQR {mean_std_change:+.1}% on average \
         (paper: slower but less variance)",
        median_changes.len()
    );
    write_csv_records(
        &ctx.path("scenario1_replay_validation.csv"),
        &[
            "group",
            "median_with",
            "median_without",
            "cov_with",
            "cov_without",
        ],
        csv_rows,
    )
    .expect("write replay csv");
}
