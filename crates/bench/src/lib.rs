//! # rv-bench — experiment harness
//!
//! Regenerates every table and figure of *Runtime Variation in Big Data
//! Analytics* from the simulated substrate (see DESIGN.md for the
//! experiment index). The `experiments` binary drives the modules here:
//!
//! * [`ctx`] — shared run context (one [`rv_core::Framework`] run, output
//!   directory, scale selection);
//! * [`exp_descriptive`] — Table 1, Fig 1, Fig 3, Fig 4a/4b;
//! * [`exp_characterize`] — Fig 5, Table 2, Fig 6 and the §4.2
//!   design-choice ablations (bins, clustering algorithm, smoothing, k);
//! * [`exp_predict`] — Fig 7a/7b, Fig 8 and the §5.2 model ablation;
//! * [`exp_explain`] — Fig 9;
//! * [`exp_whatif`] — §7 Scenarios 1–3 (including the simulator-replay
//!   corroboration of Scenario 1).

pub mod ctx;
pub mod exp_characterize;
pub mod exp_descriptive;
pub mod exp_explain;
pub mod exp_predict;
pub mod exp_whatif;
