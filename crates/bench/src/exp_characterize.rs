//! Characterization experiments: Fig 5, Table 2, Fig 6, and the §4.2
//! design-choice ablations.

use rv_core::characterize::{characterize, group_distributions, CharacterizeConfig};
use rv_core::likelihood::{group_pmf, log_likelihoods, posterior_probs};
use rv_core::report::{write_csv, write_csv_records};
use rv_core::rv_cluster::{agglomerative, elbow_point, inertia_curve, KMeansConfig, Linkage};
use rv_core::rv_stats::{normalize_all, Normalization, SmoothingKernel};

use crate::ctx::Ctx;

/// Fig 5: the catalog PMFs for both normalizations.
pub fn fig5(ctx: &Ctx) {
    ctx.banner("Fig 5 — typical distributions of normalized runtime");
    let mut rows: Vec<Vec<String>> = Vec::new();
    for pipe in [&ctx.framework.ratio, &ctx.framework.delta] {
        let catalog = &pipe.characterization.catalog;
        println!(
            "{}: {} shapes over {} bins",
            pipe.normalization,
            catalog.n_shapes(),
            catalog.spec.n_bins
        );
        for cid in 0..catalog.n_shapes() {
            let pmf = catalog.pmf(cid);
            for (b, &p) in pmf.probs().iter().enumerate() {
                if p > 0.0 {
                    rows.push(vec![
                        pipe.normalization.to_string(),
                        cid.to_string(),
                        format!("{:.4}", catalog.spec.bin_center(b)),
                        format!("{p:.6}"),
                    ]);
                }
            }
        }
    }
    write_csv_records(
        &ctx.path("fig5_shape_pmfs.csv"),
        &["normalization", "cluster", "bin_center", "probability"],
        rows,
    )
    .expect("write fig5");
}

/// Table 2: per-cluster statistics for both normalizations.
pub fn table2(ctx: &Ctx) {
    ctx.banner("Table 2 — cluster statistics");
    let mut rows: Vec<Vec<String>> = Vec::new();
    for pipe in [&ctx.framework.ratio, &ctx.framework.delta] {
        let catalog = &pipe.characterization.catalog;
        println!("{}", catalog.to_table());
        for (cid, s) in catalog.all_stats().iter().enumerate() {
            rows.push(vec![
                pipe.normalization.to_string(),
                cid.to_string(),
                format!("{:.4}", s.outlier_prob * 100.0),
                format!("{:.4}", s.iqr()),
                format!("{:.4}", s.p95),
                format!("{:.4}", s.std),
                s.n_groups.to_string(),
                s.n_instances.to_string(),
            ]);
        }
    }
    write_csv_records(
        &ctx.path("table2_cluster_stats.csv"),
        &[
            "normalization",
            "cluster",
            "outlier_pct",
            "iqr",
            "p95",
            "std",
            "n_groups",
            "n_instances",
        ],
        rows,
    )
    .expect("write table2");
}

/// Fig 6: posterior likelihood of one group against its best and worst
/// catalog shapes.
pub fn fig6(ctx: &Ctx) {
    ctx.banner("Fig 6 — posterior likelihood examples");
    let f = &ctx.framework;
    let pipe = &f.delta; // the paper's Fig 6 uses Delta-normalization
    let catalog = &pipe.characterization.catalog;

    // A group with ~10 observations in D3, like the paper's example.
    let key =
        f.d3.store
            .group_keys()
            .min_by_key(|k| (f.d3.store.group_rows(k).len() as i64 - 10).abs())
            .expect("d3 non-empty")
            .clone();
    let runtimes = f.d3.store.group_runtimes(&key);
    let median = f
        .history
        .median_or(&key, &runtimes)
        .expect("group has runtimes");
    let normalized = normalize_all(catalog.normalization, &runtimes, median);
    let lls = log_likelihoods(catalog, &normalized);
    let posterior = posterior_probs(&lls);
    let best = (0..lls.len())
        .max_by(|&a, &b| lls[a].partial_cmp(&lls[b]).expect("finite"))
        .expect("non-empty");
    let worst = (0..lls.len())
        .min_by(|&a, &b| lls[a].partial_cmp(&lls[b]).expect("finite"))
        .expect("non-empty");
    println!(
        "group {key} ({} observations): best = cluster {best} (log-likelihood {:.1}), \
         worst = cluster {worst} (log-likelihood {:.1})",
        runtimes.len(),
        lls[best],
        lls[worst]
    );
    println!("posterior over shapes: {posterior:.3?}");

    // Export the group PMF and the best/worst catalog PMFs for plotting.
    let phi = group_pmf(catalog, &normalized);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (b, ((&pg, &pb), &pw)) in phi
        .probs()
        .iter()
        .zip(catalog.pmf(best).probs())
        .zip(catalog.pmf(worst).probs())
        .enumerate()
    {
        if pg > 0.0 || pb > 0.0 || pw > 0.0 {
            rows.push(vec![
                format!("{:.4}", catalog.spec.bin_center(b)),
                format!("{pg:.6}"),
                format!("{pb:.6}"),
                format!("{pw:.6}"),
            ]);
        }
    }
    write_csv_records(
        &ctx.path("fig6_likelihood_example.csv"),
        &[
            "bin_center",
            "group_pmf",
            "best_cluster_pmf",
            "worst_cluster_pmf",
        ],
        rows,
    )
    .expect("write fig6");
}

/// Ablation A1: bin-count choice (50 / 100 / 200 / 500, §4.2).
pub fn ablation_bins(ctx: &Ctx) {
    ctx.banner("Ablation — histogram bin count (§4.2)");
    let f = &ctx.framework;
    let mut rows = Vec::new();
    for n_bins in [50usize, 100, 200, 500] {
        let cfg = CharacterizeConfig {
            n_bins,
            k: f.config.k,
            min_support: f.config.characterize_support,
            ..CharacterizeConfig::paper(Normalization::Ratio)
        };
        let ch = characterize(&f.d1.store, &cfg);
        // Normalize inertia by the bin count so scales are comparable.
        let per_dim = ch.inertia / n_bins as f64;
        println!(
            "{n_bins:>4} bins: inertia {:.5} ({:.2e}/bin), largest-cluster share {:.2}",
            ch.inertia,
            per_dim,
            largest_share(&ch.memberships, f.config.k)
        );
        rows.push(vec![
            n_bins as f64,
            ch.inertia,
            per_dim,
            largest_share(&ch.memberships, f.config.k),
        ]);
    }
    write_csv(
        &ctx.path("ablation_bins.csv"),
        &[
            "n_bins",
            "inertia",
            "inertia_per_bin",
            "largest_cluster_share",
        ],
        rows,
    )
    .expect("write ablation_bins");
}

fn largest_share(
    memberships: &std::collections::BTreeMap<rv_core::rv_scope::JobGroupKey, usize>,
    k: usize,
) -> f64 {
    let mut counts = vec![0usize; k];
    for &c in memberships.values() {
        counts[c] += 1;
    }
    let max = counts.into_iter().max().unwrap_or(0);
    max as f64 / memberships.len().max(1) as f64
}

/// Ablation A2: clustering algorithm — k-means vs agglomerative linkages.
/// Reproduces the paper's finding that hierarchical methods produce
/// imbalanced clusters (">90% of the data in one cluster").
pub fn ablation_cluster(ctx: &Ctx) {
    ctx.banner("Ablation — clustering algorithm (§4.2)");
    let f = &ctx.framework;
    let cfg = CharacterizeConfig {
        k: f.config.k,
        min_support: f.config.characterize_support,
        ..CharacterizeConfig::paper(Normalization::Ratio)
    };
    let dists = group_distributions(&f.d1.store, &cfg);
    let vectors: Vec<Vec<f64>> = dists.pmfs.iter().map(|p| p.probs().to_vec()).collect();

    let mut rows: Vec<Vec<String>> = Vec::new();
    // k-means baseline.
    let km = rv_core::rv_cluster::kmeans(
        &vectors,
        &KMeansConfig {
            k: cfg.k,
            ..Default::default()
        },
    );
    let km_share = km.max_cluster_share();
    println!("k-means           : largest-cluster share {km_share:.2}");
    rows.push(vec!["kmeans".into(), format!("{km_share:.4}")]);

    for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
        let dendro = agglomerative(&vectors, linkage);
        let labels = dendro.cut(cfg.k);
        let mut counts = vec![0usize; cfg.k];
        for &l in &labels {
            counts[l] += 1;
        }
        let share = *counts.iter().max().expect("k >= 1") as f64 / labels.len() as f64;
        println!("agglomerative {linkage:?}: largest-cluster share {share:.2}");
        rows.push(vec![
            format!("agglomerative-{linkage:?}"),
            format!("{share:.4}"),
        ]);
    }
    write_csv_records(
        &ctx.path("ablation_cluster_algorithm.csv"),
        &["algorithm", "largest_cluster_share"],
        rows,
    )
    .expect("write ablation_cluster");
}

/// Ablation A3: PMF smoothing on/off (§4.2).
pub fn ablation_smooth(ctx: &Ctx) {
    ctx.banner("Ablation — PMF smoothing (§4.2)");
    let f = &ctx.framework;
    let mut rows = Vec::new();
    for (name, kernel) in [
        ("none", SmoothingKernel::None),
        ("box-2", SmoothingKernel::Box { radius: 2 }),
        ("gauss-2", SmoothingKernel::Gaussian { sigma_bins: 2.0 }),
        ("gauss-4", SmoothingKernel::Gaussian { sigma_bins: 4.0 }),
    ] {
        let cfg = CharacterizeConfig {
            smoothing: kernel,
            k: f.config.k,
            min_support: f.config.characterize_support,
            ..CharacterizeConfig::paper(Normalization::Ratio)
        };
        let ch = characterize(&f.d1.store, &cfg);
        println!(
            "smoothing {name:>7}: inertia {:.5}, largest-cluster share {:.2}",
            ch.inertia,
            largest_share(&ch.memberships, f.config.k)
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.6}", ch.inertia),
            format!("{:.4}", largest_share(&ch.memberships, f.config.k)),
        ]);
    }
    write_csv_records(
        &ctx.path("ablation_smoothing.csv"),
        &["kernel", "inertia", "largest_cluster_share"],
        rows,
    )
    .expect("write ablation_smooth");
}

/// Ablation A4: number of clusters via the inertia elbow (§4.2).
pub fn ablation_k(ctx: &Ctx) {
    ctx.banner("Ablation — number of clusters (inertia elbow, §4.2)");
    let f = &ctx.framework;
    let cfg = CharacterizeConfig {
        min_support: f.config.characterize_support,
        ..CharacterizeConfig::paper(Normalization::Ratio)
    };
    let dists = group_distributions(&f.d1.store, &cfg);
    let vectors: Vec<Vec<f64>> = dists.pmfs.iter().map(|p| p.probs().to_vec()).collect();
    let max_k = 12.min(vectors.len());
    let curve = inertia_curve(&vectors, 1..=max_k, &KMeansConfig::default());
    for &(k, inertia) in &curve {
        println!("k = {k:>2}: inertia {inertia:.5}");
    }
    if let Some(elbow) = elbow_point(&curve) {
        println!("elbow at k = {elbow} (paper selected k = 8 on its population)");
    }
    write_csv(
        &ctx.path("ablation_k_inertia.csv"),
        &["k", "inertia"],
        curve.iter().map(|&(k, i)| vec![k as f64, i]),
    )
    .expect("write ablation_k");
}
