//! Explanation experiments: Fig 9 (Shapley value distributions).

use rv_core::explain::explain_shape;
use rv_core::report::write_csv_records;
use rv_core::rv_shap::ShapConfig;
use rv_core::rv_telemetry::JobTelemetry;

use crate::ctx::Ctx;

/// Fig 9: Shapley attributions toward the high-variance Delta shape
/// (the paper's "Cluster 6") and the stable Ratio shape.
pub fn fig9(ctx: &Ctx) {
    ctx.banner("Fig 9 — Shapley value distributions");
    let f = &ctx.framework;
    let shap_cfg = ShapConfig {
        n_permutations: 24,
        seed: 0xf19,
    };
    let mut rows: Vec<Vec<String>> = Vec::new();

    // Delta: explain the shape with the highest outlier probability among
    // shapes that actually have members (paper's Cluster 6 insight: larger
    // inputs and fewer tokens push jobs there).
    {
        let pipe = &f.delta;
        let catalog = &pipe.characterization.catalog;
        let target = (0..catalog.n_shapes())
            .filter(|&i| catalog.stats(i).n_groups > 0)
            .max_by(|&a, &b| {
                catalog
                    .stats(a)
                    .outlier_prob
                    .partial_cmp(&catalog.stats(b).outlier_prob)
                    .expect("finite")
            })
            .expect("catalog non-empty");
        let (sample, background) = sample_rows(f, 60, 40);
        let explanation = explain_shape(&pipe.predictor, &sample, &background, target, &shap_cfg);
        println!(
            "Delta, high-variance shape {target} (outlier {:.2}%):",
            catalog.stats(target).outlier_prob * 100.0
        );
        println!("{}", explanation.to_table(10));
        for (name, s) in explanation.features.iter().take(20) {
            rows.push(vec![
                "Delta".into(),
                target.to_string(),
                (*name).to_string(),
                format!("{:.6}", s.mean_abs),
                format!("{:.4}", s.value_correlation),
            ]);
        }
    }

    // Ratio: explain the most stable shape (smallest IQR) — §6 finds lower
    // CPU utilization / less spare usage / newer SKUs push jobs there.
    {
        let pipe = &f.ratio;
        let (sample, background) = sample_rows(f, 60, 40);
        let explanation = explain_shape(&pipe.predictor, &sample, &background, 0, &shap_cfg);
        println!("Ratio, most-stable shape 0:");
        println!("{}", explanation.to_table(10));
        for (name, s) in explanation.features.iter().take(20) {
            rows.push(vec![
                "Ratio".into(),
                "0".into(),
                (*name).to_string(),
                format!("{:.6}", s.mean_abs),
                format!("{:.4}", s.value_correlation),
            ]);
        }
    }

    write_csv_records(
        &ctx.path("fig9_shap.csv"),
        &[
            "normalization",
            "target_shape",
            "feature",
            "mean_abs_shap",
            "value_correlation",
        ],
        rows,
    )
    .expect("write fig9");
}

/// Deterministically samples explanation and background rows from D3,
/// stratified across groups (every nth row).
fn sample_rows(
    f: &rv_core::framework::Framework,
    n_sample: usize,
    n_background: usize,
) -> (Vec<&JobTelemetry>, Vec<&JobTelemetry>) {
    let rows = f.d3.store.rows();
    let stride = (rows.len() / (n_sample + n_background)).max(1);
    let picked: Vec<&JobTelemetry> = rows.iter().step_by(stride).collect();
    let sample: Vec<&JobTelemetry> = picked.iter().copied().take(n_sample).collect();
    let background: Vec<&JobTelemetry> = picked
        .iter()
        .copied()
        .skip(n_sample)
        .take(n_background)
        .collect();
    let background = if background.is_empty() {
        sample.clone()
    } else {
        background
    };
    (sample, background)
}
