//! # rv-shap — Monte-Carlo Shapley values for model explanation
//!
//! §6 of the paper explains the shape predictor with Shapley values \[66\],
//! "explaining the contribution of each feature by randomly permuting other
//! feature values and evaluating the marginal changes of the predictions".
//! That is precisely the Štrumbelj–Kononenko sampling estimator, which we
//! implement over any [`rv_learn::Classifier`]:
//!
//! for each sampled permutation `π` and background row `z`, walk the
//! features in `π`-order switching them from `z`'s values to the explained
//! instance's values, and credit each feature with the induced change in the
//! predicted probability of the target class. Within one permutation the
//! credits telescope exactly to `f(x) − f(z)`, so the averaged values
//! satisfy the Shapley efficiency axiom in expectation (and exactly against
//! the sampled background mean — verified in tests).

pub mod exact;
pub mod shapley;
pub mod summary;

pub use exact::exact_shapley_values;
pub use shapley::{shapley_values, ShapConfig};
pub use summary::{shap_summary, FeatureShapStats};
