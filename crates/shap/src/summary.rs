//! Aggregating Shapley values across many instances (the Fig 9 view).
//!
//! Fig 9 plots, per feature, the distribution of Shapley values against the
//! feature's value (a beeswarm): "jobs with large input size are more likely
//! to be in Cluster 6". We aggregate `(feature value, shap value)` pairs per
//! feature into summary statistics that capture both magnitude and
//! direction.

use rv_learn::feature_select::pearson;

/// Per-feature summary of Shapley values over a population of instances.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureShapStats {
    /// Feature index.
    pub feature: usize,
    /// Mean of |φ| — global importance magnitude.
    pub mean_abs: f64,
    /// Mean of φ (signed).
    pub mean: f64,
    /// Pearson correlation between the feature's value and its Shapley
    /// value — the "direction": positive means larger values push the
    /// prediction toward the target class.
    pub value_correlation: f64,
    /// Minimum and maximum φ observed.
    pub min: f64,
    /// Maximum φ observed.
    pub max: f64,
}

/// Summarizes Shapley values.
///
/// `shap_rows[i][f]` is instance `i`'s Shapley value for feature `f`;
/// `feature_rows[i][f]` is the corresponding raw feature value. Output is
/// sorted by `mean_abs` descending.
///
/// # Panics
/// Panics if shapes disagree or inputs are empty.
pub fn shap_summary(shap_rows: &[Vec<f64>], feature_rows: &[Vec<f64>]) -> Vec<FeatureShapStats> {
    assert!(!shap_rows.is_empty(), "need at least one instance");
    assert_eq!(
        shap_rows.len(),
        feature_rows.len(),
        "instance count mismatch"
    );
    let d = shap_rows[0].len();
    assert!(
        shap_rows.iter().all(|r| r.len() == d) && feature_rows.iter().all(|r| r.len() == d),
        "ragged rows"
    );
    let n = shap_rows.len() as f64;
    let mut out: Vec<FeatureShapStats> = (0..d)
        .map(|f| {
            let phis: Vec<f64> = shap_rows.iter().map(|r| r[f]).collect();
            let vals: Vec<f64> = feature_rows.iter().map(|r| r[f]).collect();
            FeatureShapStats {
                feature: f,
                mean_abs: phis.iter().map(|v| v.abs()).sum::<f64>() / n,
                mean: phis.iter().sum::<f64>() / n,
                value_correlation: pearson(&vals, &phis),
                min: phis.iter().cloned().fold(f64::INFINITY, f64::min),
                max: phis.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.mean_abs
            .partial_cmp(&a.mean_abs)
            .expect("finite importances")
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_by_magnitude_and_reports_direction() {
        // Feature 0: φ follows value (positive direction, large magnitude).
        // Feature 1: φ is tiny noise.
        let n = 50;
        let feature_rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let shap_rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    (i as f64 - 25.0) * 0.1,
                    if i % 2 == 0 { 0.001 } else { -0.001 },
                ]
            })
            .collect();
        let summary = shap_summary(&shap_rows, &feature_rows);
        assert_eq!(summary[0].feature, 0);
        assert!(summary[0].mean_abs > summary[1].mean_abs);
        assert!(summary[0].value_correlation > 0.99);
        assert!(summary[1].value_correlation.abs() < 0.5);
        assert!(summary[0].min < 0.0 && summary[0].max > 0.0);
    }

    #[test]
    fn negative_direction_detected() {
        let feature_rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let shap_rows: Vec<Vec<f64>> = (0..20).map(|i| vec![-(i as f64) * 0.2]).collect();
        let summary = shap_summary(&shap_rows, &feature_rows);
        assert!(summary[0].value_correlation < -0.99);
    }

    #[test]
    #[should_panic(expected = "instance count mismatch")]
    fn shape_mismatch_panics() {
        shap_summary(&[vec![1.0]], &[]);
    }
}
