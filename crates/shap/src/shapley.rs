//! The sampling Shapley estimator.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use rv_learn::Classifier;

/// Configuration of the Monte-Carlo Shapley estimator.
#[derive(Debug, Clone, Copy)]
pub struct ShapConfig {
    /// Sampled permutations (each costs `n_features + 1` model calls).
    pub n_permutations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ShapConfig {
    fn default() -> Self {
        Self {
            n_permutations: 64,
            seed: 0x54a9,
        }
    }
}

/// Estimates per-feature Shapley values of `model`'s predicted probability
/// for `target_class` at instance `x`, against a `background` dataset
/// representing the feature distribution.
///
/// Returns one value per feature. The values sum (exactly, by telescoping)
/// to `f(x) − mean_z f(z)` over the sampled background rows.
///
/// # Panics
/// Panics if `background` is empty, widths disagree, or `target_class` is
/// out of range.
pub fn shapley_values(
    model: &dyn Classifier,
    x: &[f64],
    target_class: usize,
    background: &[Vec<f64>],
    config: &ShapConfig,
) -> Vec<f64> {
    assert!(!background.is_empty(), "background must be non-empty");
    assert!(
        background.iter().all(|z| z.len() == x.len()),
        "background width mismatch"
    );
    assert!(
        target_class < model.n_classes(),
        "target class out of range"
    );
    assert!(config.n_permutations >= 1, "need at least one permutation");

    let d = x.len();
    let f = |row: &[f64]| model.predict_proba(row)[target_class];

    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut phi = vec![0.0f64; d];
    let mut order: Vec<usize> = (0..d).collect();
    let mut hybrid = vec![0.0f64; d];

    for _ in 0..config.n_permutations {
        let z = &background[rng.gen_range(0..background.len())];
        order.shuffle(&mut rng);
        hybrid.copy_from_slice(z);
        let mut prev = f(&hybrid);
        for &j in &order {
            hybrid[j] = x[j];
            let cur = f(&hybrid);
            phi[j] += cur - prev;
            prev = cur;
        }
    }
    for v in &mut phi {
        *v /= config.n_permutations as f64;
    }
    phi
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-written additive "model": p(class 1) = sigmoid(w·x), for which
    /// Shapley values have a known structure.
    struct Linear {
        w: Vec<f64>,
    }

    impl Classifier for Linear {
        fn n_classes(&self) -> usize {
            2
        }
        fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
            let s: f64 = self.w.iter().zip(x).map(|(&w, &v)| w * v).sum();
            let p = 1.0 / (1.0 + (-s).exp());
            vec![1.0 - p, p]
        }
    }

    fn grid_background() -> Vec<Vec<f64>> {
        (0..16)
            .map(|i| vec![(i % 4) as f64, (i / 4) as f64, 0.5])
            .collect()
    }

    #[test]
    fn efficiency_axiom_holds_in_expectation() {
        let model = Linear {
            w: vec![1.0, -0.5, 0.0],
        };
        let x = vec![3.0, 1.0, 0.5];
        let background = grid_background();
        let cfg = ShapConfig {
            n_permutations: 4000,
            seed: 1,
        };
        let phi = shapley_values(&model, &x, 1, &background, &cfg);
        let fx = model.predict_proba(&x)[1];
        let mean_fz: f64 = background
            .iter()
            .map(|z| model.predict_proba(z)[1])
            .sum::<f64>()
            / background.len() as f64;
        let total: f64 = phi.iter().sum();
        assert!(
            (total - (fx - mean_fz)).abs() < 0.02,
            "sum {total} vs {}",
            fx - mean_fz
        );
    }

    #[test]
    fn irrelevant_feature_gets_zero() {
        let model = Linear {
            w: vec![2.0, 0.0, 0.0],
        };
        let x = vec![3.0, 9.0, -4.0];
        let phi = shapley_values(
            &model,
            &x,
            1,
            &grid_background(),
            &ShapConfig {
                n_permutations: 500,
                seed: 2,
            },
        );
        assert!(phi[1].abs() < 1e-9, "dead feature phi {}", phi[1]);
        assert!(phi[2].abs() < 1e-9);
        assert!(phi[0].abs() > 0.01);
    }

    #[test]
    fn sign_tracks_direction() {
        let model = Linear {
            w: vec![1.0, -1.0, 0.0],
        };
        // x0 above background mean (1.5) → positive contribution to class 1;
        // x1 above mean with negative weight → negative contribution.
        let x = vec![3.0, 3.0, 0.5];
        let phi = shapley_values(
            &model,
            &x,
            1,
            &grid_background(),
            &ShapConfig {
                n_permutations: 800,
                seed: 3,
            },
        );
        assert!(phi[0] > 0.0);
        assert!(phi[1] < 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let model = Linear {
            w: vec![1.0, 1.0, 1.0],
        };
        let x = vec![1.0, 2.0, 3.0];
        let cfg = ShapConfig {
            n_permutations: 50,
            seed: 11,
        };
        let a = shapley_values(&model, &x, 1, &grid_background(), &cfg);
        let b = shapley_values(&model, &x, 1, &grid_background(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn complement_class_mirrors() {
        let model = Linear {
            w: vec![1.5, 0.0, 0.0],
        };
        let x = vec![2.5, 0.0, 0.0];
        let cfg = ShapConfig {
            n_permutations: 300,
            seed: 4,
        };
        let phi1 = shapley_values(&model, &x, 1, &grid_background(), &cfg);
        let phi0 = shapley_values(&model, &x, 0, &grid_background(), &cfg);
        // For a two-class model, contributions to the classes are opposite.
        assert!((phi1[0] + phi0[0]).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "background must be non-empty")]
    fn empty_background_panics() {
        let model = Linear { w: vec![1.0] };
        shapley_values(&model, &[1.0], 1, &[], &ShapConfig::default());
    }
}
