//! Exact Shapley values by subset enumeration.
//!
//! For small feature counts (`d ≤ 20`) the Shapley value can be computed
//! exactly: enumerate every coalition `S ⊆ F \ {j}` and weight feature
//! `j`'s marginal contribution by `|S|! (d - |S| - 1)! / d!`. The value
//! function is the standard interventional one: features in the coalition
//! take the explained instance's values, the rest are averaged over the
//! background set.
//!
//! Exponential in `d` — this exists to *validate* the Monte-Carlo sampler
//! ([`crate::shapley`]) against ground truth, and for genuinely small
//! models.

use rv_learn::Classifier;

/// Exact Shapley values for `model`'s probability of `target_class` at `x`,
/// against the `background` set.
///
/// Cost: `O(2^d × |background|)` model evaluations.
///
/// # Panics
/// Panics if `x.len() > 20` (use the sampler instead), if `background` is
/// empty or widths disagree, or if `target_class` is out of range.
pub fn exact_shapley_values(
    model: &dyn Classifier,
    x: &[f64],
    target_class: usize,
    background: &[Vec<f64>],
) -> Vec<f64> {
    let d = x.len();
    assert!(
        d <= 20,
        "exact Shapley is exponential; d = {d} is too large"
    );
    assert!(!background.is_empty(), "background must be non-empty");
    assert!(
        background.iter().all(|z| z.len() == d),
        "background width mismatch"
    );
    assert!(
        target_class < model.n_classes(),
        "target class out of range"
    );

    // v(S) = E_z[ f(x_S, z_{\S}) ], cached for every subset bitmask.
    // Coalitions are independent, so the cache fills in parallel chunks
    // (one hybrid-row buffer per worker); each v[mask] is element-local,
    // so chunking cannot reassociate any float sum. Small problems stay
    // serial — the gate depends only on problem size, so the decision is
    // deterministic.
    let n_subsets = 1usize << d;
    let coalition_threads = if n_subsets * background.len() < PAR_MIN_EVALS {
        1
    } else {
        0
    };
    let mut v = vec![0.0f64; n_subsets];
    rv_par::par_chunks(&mut v, coalition_threads, |start, chunk| {
        let mut hybrid = vec![0.0f64; d];
        for (offset, value) in chunk.iter_mut().enumerate() {
            let mask = start + offset;
            let mut acc = 0.0;
            for z in background {
                for j in 0..d {
                    hybrid[j] = if mask & (1 << j) != 0 { x[j] } else { z[j] };
                }
                acc += model.predict_proba(&hybrid)[target_class];
            }
            *value = acc / background.len() as f64;
        }
    });

    // Precompute factorial weights w[s] = s! (d - s - 1)! / d!.
    let mut fact = vec![1.0f64; d + 1];
    for i in 1..=d {
        fact[i] = fact[i - 1] * i as f64;
    }
    let weight = |s: usize| fact[s] * fact[d - s - 1] / fact[d];

    // One task per feature; within a task the coalition scan keeps the
    // serial mask order, so each phi[j] is bit-identical to the serial
    // accumulation.
    let feature_threads = if d * n_subsets < PAR_MIN_EVALS { 1 } else { 0 };
    rv_par::par_map(d, feature_threads, |j| {
        let bit = 1usize << j;
        let mut slot = 0.0f64;
        for mask in 0..n_subsets {
            if mask & bit != 0 {
                continue;
            }
            let s = (mask as u32).count_ones() as usize;
            slot += weight(s) * (v[mask | bit] - v[mask]);
        }
        slot
    })
}

/// Minimum evaluation count (`coalitions × background`, or
/// `features × coalitions`) before a stage fans out across workers.
const PAR_MIN_EVALS: usize = 1 << 12;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapley::{shapley_values, ShapConfig};

    struct Linear {
        w: Vec<f64>,
    }

    impl Classifier for Linear {
        fn n_classes(&self) -> usize {
            2
        }
        fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
            let s: f64 = self.w.iter().zip(x).map(|(&w, &v)| w * v).sum();
            let p = 1.0 / (1.0 + (-s).exp());
            vec![1.0 - p, p]
        }
    }

    /// A model with an interaction term, where Shapley values are
    /// non-trivial: p(1) = sigmoid(x0 * x1).
    struct Interaction;
    impl Classifier for Interaction {
        fn n_classes(&self) -> usize {
            2
        }
        fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
            let s = x[0] * x[1];
            let p = 1.0 / (1.0 + (-s).exp());
            vec![1.0 - p, p]
        }
    }

    fn background() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![0.0, 2.0, 1.0],
            vec![1.0, 2.0, 1.0],
        ]
    }

    #[test]
    fn efficiency_axiom_holds_exactly() {
        let model = Linear {
            w: vec![1.2, -0.4, 0.3],
        };
        let x = vec![2.0, 1.0, 3.0];
        let bg = background();
        let phi = exact_shapley_values(&model, &x, 1, &bg);
        let fx = model.predict_proba(&x)[1];
        let mean_fz: f64 =
            bg.iter().map(|z| model.predict_proba(z)[1]).sum::<f64>() / bg.len() as f64;
        let total: f64 = phi.iter().sum();
        assert!(
            (total - (fx - mean_fz)).abs() < 1e-12,
            "sum {total} vs {}",
            fx - mean_fz
        );
    }

    #[test]
    fn symmetry_axiom_for_identical_features() {
        // Two features with identical weights and identical background
        // columns must receive identical Shapley values.
        let model = Linear {
            w: vec![0.7, 0.7, 0.0],
        };
        let bg = vec![vec![0.0, 0.0, 0.5], vec![1.0, 1.0, 0.5]];
        let x = vec![2.0, 2.0, 9.0];
        let phi = exact_shapley_values(&model, &x, 1, &bg);
        assert!((phi[0] - phi[1]).abs() < 1e-12);
    }

    #[test]
    fn dummy_feature_gets_exact_zero() {
        let model = Linear {
            w: vec![1.0, 0.0, 0.0],
        };
        let phi = exact_shapley_values(&model, &[1.5, 4.0, -2.0], 1, &background());
        assert!(phi[1].abs() < 1e-12);
        assert!(phi[2].abs() < 1e-12);
    }

    #[test]
    fn interaction_credit_is_split() {
        // x = (2, 2) vs background where both coordinates are 0: the
        // interaction's credit must split evenly by symmetry.
        let bg = vec![vec![0.0, 0.0]];
        let phi = exact_shapley_values(&Interaction, &[2.0, 2.0], 1, &bg);
        assert!((phi[0] - phi[1]).abs() < 1e-12);
        let f_x = Interaction.predict_proba(&[2.0, 2.0])[1];
        let f_z = Interaction.predict_proba(&[0.0, 0.0])[1];
        assert!((phi[0] + phi[1] - (f_x - f_z)).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_converges_to_exact() {
        let model = Linear {
            w: vec![0.9, -0.6, 0.2],
        };
        let x = vec![1.0, 2.0, -1.0];
        let bg = background();
        let exact = exact_shapley_values(&model, &x, 1, &bg);
        let mc = shapley_values(
            &model,
            &x,
            1,
            &bg,
            &ShapConfig {
                n_permutations: 20_000,
                seed: 3,
            },
        );
        for (e, m) in exact.iter().zip(&mc) {
            assert!((e - m).abs() < 0.01, "exact {e} vs MC {m}");
        }
    }

    #[test]
    fn wide_model_clears_parallel_gate_and_stays_exact() {
        // d = 13 → 8192 coalitions: both stages run on the pool, and the
        // efficiency axiom must still hold to float precision.
        let d = 13;
        let w: Vec<f64> = (0..d).map(|j| 0.3 - 0.05 * j as f64).collect();
        let model = Linear { w };
        let x: Vec<f64> = (0..d).map(|j| (j % 3) as f64).collect();
        let bg = vec![vec![0.0; d], vec![1.0; d]];
        assert!((1usize << d) * bg.len() >= PAR_MIN_EVALS);
        let phi = exact_shapley_values(&model, &x, 1, &bg);
        let fx = model.predict_proba(&x)[1];
        let mean_fz: f64 =
            bg.iter().map(|z| model.predict_proba(z)[1]).sum::<f64>() / bg.len() as f64;
        let total: f64 = phi.iter().sum();
        assert!(
            (total - (fx - mean_fz)).abs() < 1e-10,
            "sum {total} vs {}",
            fx - mean_fz
        );
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn rejects_wide_inputs() {
        let model = Linear { w: vec![0.0; 25] };
        exact_shapley_values(&model, &[0.0; 25], 1, &[vec![0.0; 25]]);
    }
}
