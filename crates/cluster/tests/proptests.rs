//! Property-based tests for the clustering substrate.

use proptest::prelude::*;

use rv_cluster::{agglomerative, kmeans, nearest_centroid, KMeansConfig, Linkage};

fn points(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0..100.0f64, dim..=dim), 2..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kmeans_assignments_are_valid(pts in points(40, 3), k in 1usize..4) {
        let k = k.min(pts.len());
        let r = kmeans(&pts, &KMeansConfig { k, n_init: 1, ..Default::default() });
        prop_assert_eq!(r.assignments.len(), pts.len());
        prop_assert!(r.assignments.iter().all(|&a| a < k));
        prop_assert_eq!(r.centroids.len(), k);
        prop_assert!(r.inertia >= 0.0);
        // Every point's assigned centroid is its nearest centroid.
        for (p, &a) in pts.iter().zip(&r.assignments) {
            let (nearest, _) = nearest_centroid(p, &r.centroids);
            let d_a: f64 = p.iter().zip(&r.centroids[a]).map(|(x, c)| (x - c).powi(2)).sum();
            let d_n: f64 = p.iter().zip(&r.centroids[nearest]).map(|(x, c)| (x - c).powi(2)).sum();
            prop_assert!(d_a <= d_n + 1e-9);
        }
    }

    #[test]
    fn kmeans_inertia_bounded_by_k1(pts in points(30, 2)) {
        let r1 = kmeans(&pts, &KMeansConfig { k: 1, n_init: 1, ..Default::default() });
        let r2 = kmeans(&pts, &KMeansConfig { k: 2.min(pts.len()), n_init: 4, ..Default::default() });
        prop_assert!(r2.inertia <= r1.inertia + 1e-6);
    }

    #[test]
    fn dendrogram_cut_is_a_partition(pts in points(25, 2), linkage_idx in 0usize..3) {
        let linkage = [Linkage::Single, Linkage::Complete, Linkage::Average][linkage_idx];
        let d = agglomerative(&pts, linkage);
        for k in 1..=pts.len().min(5) {
            let labels = d.cut(k);
            prop_assert_eq!(labels.len(), pts.len());
            let mut seen: Vec<usize> = labels.clone();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen.len(), k, "cut({}) produced wrong cluster count", k);
            // Labels are dense 0..k.
            prop_assert!(labels.iter().all(|&l| l < k));
        }
    }
}
