//! Agglomerative (bottom-up hierarchical) clustering.
//!
//! The baseline the paper evaluated and rejected for shape clustering
//! (§4.2): with single/complete/average linkage it "resulted in imbalanced
//! clusters (some with >90% of the data in one cluster)". We implement it
//! (a) to reproduce that design-choice ablation and (b) as a general
//! substrate utility. Uses the O(n² log n)-ish naive scheme with a
//! distance matrix and Lance–Williams updates — adequate for the thousands
//! of job groups we cluster.

use crate::dendrogram::{Dendrogram, Merge};

/// Linkage criteria.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance between clusters (chains easily).
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

#[inline]
fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Runs agglomerative clustering to a full hierarchy and returns the
/// dendrogram (cut it to get flat clusters).
///
/// # Panics
/// Panics on empty input or ragged dimensions.
pub fn agglomerative(points: &[Vec<f64>], linkage: Linkage) -> Dendrogram {
    let n = points.len();
    assert!(n >= 1, "need at least one point");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "all points must share a dimension"
    );
    if n == 1 {
        return Dendrogram::new(1, Vec::new());
    }

    // active[i] = Some(node_id, size); distance matrix over active slots.
    let mut node_id: Vec<usize> = (0..n).collect();
    let mut size: Vec<f64> = vec![1.0; n];
    let mut alive: Vec<bool> = vec![true; n];
    let mut dist = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = euclid(&points[i], &points[j]);
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }

    let mut merges = Vec::with_capacity(n - 1);
    let mut next_id = n;
    for _ in 0..n - 1 {
        // Find the closest pair of alive slots.
        let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !alive[j] {
                    continue;
                }
                if dist[i][j] < best.2 {
                    best = (i, j, dist[i][j]);
                }
            }
        }
        let (i, j, d) = best;
        merges.push(Merge {
            a: node_id[i],
            b: node_id[j],
            distance: d,
        });
        // Merge j into i (Lance–Williams updates for the chosen linkage).
        for k in 0..n {
            if !alive[k] || k == i || k == j {
                continue;
            }
            let dik = dist[i][k];
            let djk = dist[j][k];
            dist[i][k] = match linkage {
                Linkage::Single => dik.min(djk),
                Linkage::Complete => dik.max(djk),
                Linkage::Average => (size[i] * dik + size[j] * djk) / (size[i] + size[j]),
            };
            dist[k][i] = dist[i][k];
        }
        size[i] += size[j];
        alive[j] = false;
        node_id[i] = next_id;
        next_id += 1;
    }
    Dendrogram::new(n, merges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        let mut rng = SmallRng::seed_from_u64(5);
        for &(cx, cy) in &[(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)] {
            for _ in 0..20 {
                pts.push(vec![
                    cx + rng.gen_range(-0.4..0.4),
                    cy + rng.gen_range(-0.4..0.4),
                ]);
            }
        }
        pts
    }

    #[test]
    fn recovers_blobs_any_linkage() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = agglomerative(&blobs(), linkage);
            let labels = d.cut(3);
            // Each blob of 20 should be uniform.
            for blob in 0..3 {
                let first = labels[blob * 20];
                for i in 0..20 {
                    assert_eq!(labels[blob * 20 + i], first, "{linkage:?}");
                }
            }
        }
    }

    #[test]
    fn merge_distances_non_decreasing_for_complete() {
        // Complete/average linkage (reducible) yields monotone merges here.
        let d = agglomerative(&blobs(), Linkage::Complete);
        for w in d.merges().windows(2) {
            assert!(w[1].distance >= w[0].distance - 1e-9);
        }
    }

    #[test]
    fn single_linkage_chains_elongated_data() {
        // An elongated chain of points plus a tight blob: single linkage
        // absorbs the chain into one giant cluster — the imbalance failure
        // mode the paper reports for hierarchical clustering.
        let mut pts: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 * 0.5, 0.0]).collect();
        for i in 0..5 {
            pts.push(vec![100.0 + i as f64 * 0.01, 0.0]);
        }
        let d = agglomerative(&pts, Linkage::Single);
        let labels = d.cut(2);
        let count0 = labels.iter().filter(|&&l| l == labels[0]).count();
        let share = count0.max(labels.len() - count0) as f64 / labels.len() as f64;
        assert!(share > 0.85, "expected imbalance, share {share}");
    }

    #[test]
    fn single_point() {
        let d = agglomerative(&[vec![1.0, 2.0]], Linkage::Average);
        assert_eq!(d.cut(1), vec![0]);
    }

    #[test]
    fn two_points() {
        let d = agglomerative(&[vec![0.0], vec![3.0]], Linkage::Average);
        assert_eq!(d.merges().len(), 1);
        assert!((d.merges()[0].distance - 3.0).abs() < 1e-12);
        assert_eq!(d.cut(1), vec![0, 0]);
        let two = d.cut(2);
        assert_ne!(two[0], two[1]);
    }

    #[test]
    #[should_panic(expected = "share a dimension")]
    fn ragged_input_panics() {
        agglomerative(&[vec![1.0], vec![1.0, 2.0]], Linkage::Single);
    }
}
