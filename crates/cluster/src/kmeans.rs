//! K-means clustering with k-means++ seeding.
//!
//! The paper chose k-means over hierarchical alternatives because it
//! produced balanced clusters of runtime-distribution shapes (§4.2). The
//! inputs here are smoothed PMF vectors (one per job group), but the
//! implementation is generic over any equal-length `f64` vectors.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for one k-means run.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement (squared L2).
    pub tol: f64,
    /// Number of k-means++ restarts; the best (lowest-inertia) run wins.
    pub n_init: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads (`0` = auto via `rv-par`, `1` = serial). Restarts
    /// fan out first; a lone restart parallelizes its assignment loop
    /// instead. Thread count never changes the clustering.
    pub n_threads: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 8,
            max_iters: 200,
            tol: 1e-10,
            n_init: 4,
            seed: 0x5eed,
            n_threads: 0,
        }
    }
}

/// Minimum `points × centroids` before the assignment loop fans out;
/// below this the scan is cheaper than spawning workers. Data-size only,
/// so the serial/parallel decision is deterministic.
const PAR_ASSIGN_MIN_WORK: usize = 1 << 12;

/// The outcome of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids, `k × dim`.
    pub centroids: Vec<Vec<f64>>,
    /// Per-point cluster assignment.
    pub assignments: Vec<usize>,
    /// Sum of squared distances from each point to its centroid.
    pub inertia: f64,
    /// Lloyd iterations executed in the winning restart.
    pub iterations: usize,
}

impl KMeansResult {
    /// Points per cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Ratio of the largest cluster to the total — the imbalance measure the
    /// paper used to reject hierarchical clustering (">90% of the data in
    /// one cluster").
    pub fn max_cluster_share(&self) -> f64 {
        let sizes = self.cluster_sizes();
        let max = sizes.iter().copied().max().unwrap_or(0);
        if self.assignments.is_empty() {
            0.0
        } else {
            max as f64 / self.assignments.len() as f64
        }
    }
}

#[inline]
fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Runs k-means over `points` (each an equal-length vector).
///
/// # Panics
/// Panics if `points` is empty, dimensions are ragged, `k` is zero, or `k`
/// exceeds the number of points.
pub fn kmeans(points: &[Vec<f64>], config: &KMeansConfig) -> KMeansResult {
    assert!(!points.is_empty(), "need at least one point");
    assert!(config.k >= 1, "k must be at least 1");
    assert!(
        config.k <= points.len(),
        "k ({}) exceeds point count ({})",
        config.k,
        points.len()
    );
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "all points must share a dimension"
    );

    // Restarts are independent (each derives its own RNG from the seed and
    // restart index), so they fan out across workers; when they do, each
    // restart runs its inner loops serially rather than nesting pools.
    let n_init = config.n_init.max(1);
    let inner_threads = if rv_par::resolve_threads(config.n_threads).min(n_init) > 1 {
        1
    } else {
        config.n_threads
    };
    let results = rv_par::par_map(n_init, config.n_threads, |init| {
        let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(init as u64));
        kmeans_once(points, config, &mut rng, inner_threads)
    });
    // Strict `<` over restart-index order replicates the serial pick
    // exactly (first of equals wins).
    let mut best: Option<KMeansResult> = None;
    for result in results {
        if best.as_ref().map_or(true, |b| result.inertia < b.inertia) {
            best = Some(result);
        }
    }
    let best = best.expect("at least one restart ran");
    if rv_obs::enabled() {
        rv_obs::counter("cluster.kmeans.runs").inc();
        rv_obs::counter("cluster.kmeans.iterations").add(best.iterations as u64);
        rv_obs::emit(
            "cluster.kmeans",
            &[
                ("k", rv_obs::FieldValue::from(config.k)),
                ("points", rv_obs::FieldValue::from(points.len())),
                ("iterations", rv_obs::FieldValue::from(best.iterations)),
                (
                    "converged",
                    rv_obs::FieldValue::from(best.iterations < config.max_iters),
                ),
                ("inertia", rv_obs::FieldValue::from(best.inertia)),
            ],
        );
    }
    best
}

fn kmeans_once(
    points: &[Vec<f64>],
    config: &KMeansConfig,
    rng: &mut SmallRng,
    threads: usize,
) -> KMeansResult {
    let mut centroids = plus_plus_init(points, config.k, rng);
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    let assign_threads = if points.len() * config.k < PAR_ASSIGN_MIN_WORK {
        1
    } else {
        threads
    };

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step: each point's nearest centroid is independent, so
        // the loop fans out over contiguous chunks of the assignment slice.
        {
            let centroids = &centroids;
            rv_par::par_chunks(&mut assignments, assign_threads, |start, chunk| {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = nearest(&points[start + j], centroids).0;
                }
            });
        }
        // Update step.
        let dim = points[0].len();
        let mut sums = vec![vec![0.0; dim]; config.k];
        let mut counts = vec![0usize; config.k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &v) in sums[a].iter_mut().zip(p) {
                *s += v;
            }
        }
        let mut movement = 0.0;
        for c in 0..config.k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the point farthest from its
                // centroid (standard remedy; keeps k clusters alive).
                // `total_cmp` keeps the comparison total if a NaN feature
                // slips through (NaN ranks farthest) instead of panicking
                // mid-clustering.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        dist_sq(a, &centroids[assignments[0]])
                            .total_cmp(&dist_sq(b, &centroids[assignments[0]]))
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(rng.gen_range(0..points.len()));
                centroids[c] = points[far].clone();
                movement += 1.0;
                continue;
            }
            let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
            movement += dist_sq(&new, &centroids[c]);
            centroids[c] = new;
        }
        if movement < config.tol {
            break;
        }
    }
    // Final assignment + inertia: distances in parallel, then a serial
    // index-order fold — float addition is order-sensitive, so the sum
    // must associate exactly like the serial loop.
    let nearest_all = rv_par::par_map(points.len(), assign_threads, |i| {
        nearest(&points[i], &centroids)
    });
    let mut inertia = 0.0;
    for (slot, (a, d)) in assignments.iter_mut().zip(nearest_all) {
        *slot = a;
        inertia += d;
    }
    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = dist_sq(p, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// k-means++ seeding: first centroid uniform, subsequent centroids sampled
/// proportionally to squared distance from the nearest chosen centroid.
fn plus_plus_init(points: &[Vec<f64>], k: usize, rng: &mut SmallRng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| dist_sq(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let idx = if total <= 0.0 {
            rng.gen_range(0..points.len())
        } else {
            let mut x = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if x < d {
                    chosen = i;
                    break;
                }
                x -= d;
            }
            chosen
        };
        centroids.push(points[idx].clone());
        for (i, p) in points.iter().enumerate() {
            let d = dist_sq(p, centroids.last().expect("non-empty"));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian-ish blobs in 2D.
    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let mut rng = SmallRng::seed_from_u64(1);
        for &(cx, cy) in &centers {
            for _ in 0..50 {
                pts.push(vec![
                    cx + rng.gen_range(-0.5..0.5),
                    cy + rng.gen_range(-0.5..0.5),
                ]);
            }
        }
        pts
    }

    #[test]
    fn recovers_separated_blobs() {
        let pts = blobs();
        let r = kmeans(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        let sizes = r.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 150);
        for s in sizes {
            assert_eq!(s, 50, "blobs should split evenly");
        }
        assert!(r.inertia < 150.0 * 0.5, "inertia {}", r.inertia);
    }

    #[test]
    fn balanced_on_blobs() {
        let r = kmeans(
            &blobs(),
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        assert!(r.max_cluster_share() < 0.4);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blobs();
        let cfg = KMeansConfig {
            k: 3,
            seed: 42,
            ..Default::default()
        };
        let a = kmeans(&pts, &cfg);
        let b = kmeans(&pts, &cfg);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn parallel_restarts_match_serial() {
        let pts = blobs();
        let run = |n_threads: usize| {
            kmeans(
                &pts,
                &KMeansConfig {
                    k: 3,
                    n_threads,
                    ..Default::default()
                },
            )
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.assignments, parallel.assignments);
        assert_eq!(serial.centroids, parallel.centroids);
        assert_eq!(serial.inertia.to_bits(), parallel.inertia.to_bits());
        assert_eq!(serial.iterations, parallel.iterations);
    }

    #[test]
    fn parallel_assignment_matches_serial() {
        // One restart, enough points × k to clear the assignment work
        // gate, so the Lloyd loop itself runs on the pool.
        let mut rng = SmallRng::seed_from_u64(9);
        let pts: Vec<Vec<f64>> = (0..2000)
            .map(|i| {
                let c = (i % 4) as f64 * 8.0;
                vec![c + rng.gen_range(-1.0..1.0), c + rng.gen_range(-1.0..1.0)]
            })
            .collect();
        assert!(pts.len() * 4 >= PAR_ASSIGN_MIN_WORK);
        let run = |n_threads: usize| {
            kmeans(
                &pts,
                &KMeansConfig {
                    k: 4,
                    n_init: 1,
                    n_threads,
                    ..Default::default()
                },
            )
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.assignments, parallel.assignments);
        assert_eq!(serial.centroids, parallel.centroids);
        assert_eq!(serial.inertia.to_bits(), parallel.inertia.to_bits());
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64, 0.0]).collect();
        let r = kmeans(
            &pts,
            &KMeansConfig {
                k: 5,
                ..Default::default()
            },
        );
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let pts = vec![vec![0.0], vec![2.0], vec![4.0]];
        let r = kmeans(
            &pts,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
        );
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-9);
        assert!((r.inertia - 8.0).abs() < 1e-9);
    }

    #[test]
    fn inertia_non_increasing_in_k() {
        let pts = blobs();
        let mut last = f64::INFINITY;
        for k in 1..=6 {
            let r = kmeans(
                &pts,
                &KMeansConfig {
                    k,
                    n_init: 6,
                    ..Default::default()
                },
            );
            assert!(
                r.inertia <= last + 1e-6,
                "k={k}: inertia {} > previous {last}",
                r.inertia
            );
            last = r.inertia;
        }
    }

    #[test]
    fn identical_points_handled() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let r = kmeans(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        assert!(r.inertia < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds point count")]
    fn k_too_large_panics() {
        kmeans(
            &[vec![1.0]],
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "share a dimension")]
    fn ragged_points_panic() {
        kmeans(
            &[vec![1.0], vec![1.0, 2.0]],
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
        );
    }
}
