//! Nearest-centroid assignment for new vectors.

/// Returns `(cluster_index, squared_distance)` of the centroid nearest to
/// `point`.
///
/// # Panics
/// Panics if `centroids` is empty or any centroid's dimension differs from
/// the point's.
pub fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    assert!(!centroids.is_empty(), "need at least one centroid");
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        assert_eq!(c.len(), point.len(), "dimension mismatch");
        let d: f64 = point.iter().zip(c).map(|(&x, &y)| (x - y) * (x - y)).sum();
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_closest() {
        let centroids = vec![vec![0.0, 0.0], vec![10.0, 0.0]];
        assert_eq!(nearest_centroid(&[1.0, 0.0], &centroids).0, 0);
        assert_eq!(nearest_centroid(&[9.0, 0.0], &centroids).0, 1);
    }

    #[test]
    fn reports_squared_distance() {
        let centroids = vec![vec![0.0, 0.0]];
        let (_, d) = nearest_centroid(&[3.0, 4.0], &centroids);
        assert!((d - 25.0).abs() < 1e-12);
    }

    #[test]
    fn tie_goes_to_first() {
        let centroids = vec![vec![-1.0], vec![1.0]];
        assert_eq!(nearest_centroid(&[0.0], &centroids).0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one centroid")]
    fn empty_centroids_panic() {
        nearest_centroid(&[0.0], &[]);
    }
}
