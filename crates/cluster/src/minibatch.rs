//! Mini-batch k-means (Sculley, WWW 2010 — the paper's citation \[62\]).
//!
//! The paper's k-means reference is specifically the *web-scale* mini-batch
//! variant, which scales to millions of PMF vectors: each iteration samples
//! a small batch, assigns it to the nearest centroids, and moves each
//! centroid toward its batch members with a per-centroid learning rate
//! `1 / n_assigned`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::kmeans::KMeansResult;

/// Mini-batch k-means configuration.
#[derive(Debug, Clone, Copy)]
pub struct MiniBatchConfig {
    /// Number of clusters.
    pub k: usize,
    /// Batch size per iteration.
    pub batch_size: usize,
    /// Number of mini-batch iterations.
    pub n_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MiniBatchConfig {
    fn default() -> Self {
        Self {
            k: 8,
            batch_size: 64,
            n_iters: 300,
            seed: 0x5c11e7,
        }
    }
}

/// Runs mini-batch k-means over `points` and returns the same result type
/// as the exact algorithm (with a final full assignment pass for the
/// inertia).
///
/// # Panics
/// Panics if `points` is empty, ragged, or `k` exceeds the point count.
pub fn minibatch_kmeans(points: &[Vec<f64>], config: &MiniBatchConfig) -> KMeansResult {
    assert!(!points.is_empty(), "need at least one point");
    assert!(config.k >= 1, "k must be at least 1");
    assert!(
        config.k <= points.len(),
        "k ({}) exceeds point count ({})",
        config.k,
        points.len()
    );
    assert!(config.batch_size >= 1, "batch size must be positive");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "all points must share a dimension"
    );

    let mut rng = SmallRng::seed_from_u64(config.seed);
    // Initialize centroids at random distinct-ish points.
    let mut centroids: Vec<Vec<f64>> = (0..config.k)
        .map(|_| points[rng.gen_range(0..points.len())].clone())
        .collect();
    let mut counts = vec![0u64; config.k];
    let mut batch_assign = vec![0usize; config.batch_size];

    for _ in 0..config.n_iters {
        // Sample the batch and cache its assignments.
        let batch: Vec<usize> = (0..config.batch_size)
            .map(|_| rng.gen_range(0..points.len()))
            .collect();
        for (slot, &i) in batch_assign.iter_mut().zip(&batch) {
            *slot = nearest(&points[i], &centroids);
        }
        // Gradient step per batch member.
        for (&i, &c) in batch.iter().zip(&batch_assign) {
            counts[c] += 1;
            let lr = 1.0 / counts[c] as f64;
            for (cv, &pv) in centroids[c].iter_mut().zip(&points[i]) {
                *cv += lr * (pv - *cv);
            }
        }
    }

    // Full assignment pass for the final labels and inertia.
    let mut assignments = vec![0usize; points.len()];
    let mut inertia = 0.0;
    for (i, p) in points.iter().enumerate() {
        let c = nearest(p, &centroids);
        assignments[i] = c;
        inertia += dist_sq(p, &centroids[c]);
    }
    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations: config.n_iters,
    }
}

#[inline]
fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = dist_sq(p, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans, KMeansConfig};

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        let mut rng = SmallRng::seed_from_u64(3);
        for &(cx, cy) in &[(0.0, 0.0), (12.0, 0.0), (0.0, 12.0)] {
            for _ in 0..60 {
                pts.push(vec![
                    cx + rng.gen_range(-0.5..0.5),
                    cy + rng.gen_range(-0.5..0.5),
                ]);
            }
        }
        pts
    }

    #[test]
    fn recovers_blobs() {
        let r = minibatch_kmeans(
            &blobs(),
            &MiniBatchConfig {
                k: 3,
                ..Default::default()
            },
        );
        let sizes = {
            let mut s = vec![0usize; 3];
            for &a in &r.assignments {
                s[a] += 1;
            }
            s
        };
        for s in sizes {
            assert_eq!(s, 60, "blobs should split evenly");
        }
    }

    #[test]
    fn close_to_exact_kmeans_inertia() {
        let pts = blobs();
        let exact = kmeans(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        let mb = minibatch_kmeans(
            &pts,
            &MiniBatchConfig {
                k: 3,
                ..Default::default()
            },
        );
        // Sculley reports mini-batch lands within a few percent of full
        // Lloyd on well-separated data.
        assert!(
            mb.inertia < exact.inertia * 1.2 + 1e-9,
            "minibatch {} vs exact {}",
            mb.inertia,
            exact.inertia
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blobs();
        let cfg = MiniBatchConfig {
            k: 3,
            seed: 42,
            ..Default::default()
        };
        let a = minibatch_kmeans(&pts, &cfg);
        let b = minibatch_kmeans(&pts, &cfg);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    #[should_panic(expected = "exceeds point count")]
    fn k_too_large_panics() {
        minibatch_kmeans(
            &[vec![1.0]],
            &MiniBatchConfig {
                k: 2,
                ..Default::default()
            },
        );
    }
}
