//! Inertia curves and elbow detection for choosing the number of clusters.
//!
//! §4.2: "we pick an elbow point where adding more clusters does not
//! significantly decrease the inertia". We compute the inertia curve by
//! running k-means at each candidate `k`, then find the elbow as the point
//! of maximum distance from the chord connecting the curve's endpoints
//! (the "kneedle" construction).

use crate::kmeans::{kmeans, KMeansConfig};

/// Computes `(k, inertia)` pairs for `k` in `k_range` (inclusive).
pub fn inertia_curve(
    points: &[Vec<f64>],
    k_range: std::ops::RangeInclusive<usize>,
    base: &KMeansConfig,
) -> Vec<(usize, f64)> {
    let lo = *k_range.start();
    let hi = *k_range.end();
    assert!(lo >= 1 && hi >= lo, "invalid k range");
    (lo..=hi.min(points.len()))
        .map(|k| {
            let cfg = KMeansConfig { k, ..*base };
            (k, kmeans(points, &cfg).inertia)
        })
        .collect()
}

/// Finds the elbow of an inertia curve: the `k` whose point is farthest from
/// the straight line joining the first and last points of the curve.
///
/// Returns `None` for curves with fewer than three points (no interior
/// point can be an elbow).
pub fn elbow_point(curve: &[(usize, f64)]) -> Option<usize> {
    if curve.len() < 3 {
        return None;
    }
    let (x0, y0) = (curve[0].0 as f64, curve[0].1);
    let (x1, y1) = (curve[curve.len() - 1].0 as f64, curve[curve.len() - 1].1);
    // Normalize both axes so the chord distance is scale-free.
    let dx = (x1 - x0).abs().max(1e-12);
    let dy = (y0 - y1).abs().max(1e-12);
    let mut best: Option<(usize, f64)> = None;
    for &(k, inertia) in &curve[1..curve.len() - 1] {
        let nx = (k as f64 - x0) / dx;
        let ny = (y0 - inertia) / dy; // flipped so the curve rises 0→1
                                      // Distance from (nx, ny) to the chord y = x (after normalization the
                                      // endpoints are (0,0) and (1,1)).
        let d = (ny - nx) / std::f64::consts::SQRT_2;
        if best.map_or(true, |(_, bd)| d > bd) {
            best = Some((k, d));
        }
    }
    best.map(|(k, _)| k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n_blobs: usize) -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        let mut rng = SmallRng::seed_from_u64(11);
        for b in 0..n_blobs {
            let cx = (b % 3) as f64 * 10.0;
            let cy = (b / 3) as f64 * 10.0;
            for _ in 0..30 {
                pts.push(vec![
                    cx + rng.gen_range(-0.5..0.5),
                    cy + rng.gen_range(-0.5..0.5),
                ]);
            }
        }
        pts
    }

    #[test]
    fn curve_is_monotone_decreasing() {
        let pts = blobs(4);
        let curve = inertia_curve(&pts, 1..=8, &KMeansConfig::default());
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-6);
        }
    }

    #[test]
    fn elbow_finds_true_blob_count() {
        let pts = blobs(4);
        let curve = inertia_curve(
            &pts,
            1..=10,
            &KMeansConfig {
                n_init: 6,
                ..Default::default()
            },
        );
        let elbow = elbow_point(&curve).expect("curve long enough");
        assert!(
            (3..=5).contains(&elbow),
            "elbow {elbow} should be near the true 4 blobs"
        );
    }

    #[test]
    fn short_curves_have_no_elbow() {
        assert_eq!(elbow_point(&[]), None);
        assert_eq!(elbow_point(&[(1, 10.0)]), None);
        assert_eq!(elbow_point(&[(1, 10.0), (2, 5.0)]), None);
    }

    #[test]
    fn synthetic_knee() {
        // Inertia with a sharp knee at k = 3.
        let curve = vec![
            (1, 100.0),
            (2, 50.0),
            (3, 10.0),
            (4, 9.0),
            (5, 8.5),
            (6, 8.2),
        ];
        assert_eq!(elbow_point(&curve), Some(3));
    }
}
