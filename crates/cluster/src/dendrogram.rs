//! Dendrograms: the merge tree produced by agglomerative clustering.
//!
//! §4.2 evaluates "hierarchy clustering based on dendrogram" as a candidate
//! method. The dendrogram records every pairwise merge with its distance; a
//! *cut* at any cluster count reconstructs flat assignments.

/// One merge step: clusters `a` and `b` (node ids) merge at `distance` into
/// a new node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged node (leaf ids are `0..n`, internal ids continue upward).
    pub a: usize,
    /// Second merged node.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
}

/// A full agglomerative merge history over `n_leaves` points.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Creates a dendrogram from a merge sequence.
    ///
    /// # Panics
    /// Panics if the number of merges is not `n_leaves - 1` (a full
    /// hierarchy) and not fewer (a partial one is allowed), or if any merge
    /// references an id that does not exist yet.
    pub fn new(n_leaves: usize, merges: Vec<Merge>) -> Self {
        assert!(n_leaves >= 1, "need at least one leaf");
        assert!(
            merges.len() <= n_leaves.saturating_sub(1),
            "too many merges for {n_leaves} leaves"
        );
        for (step, m) in merges.iter().enumerate() {
            let max_id = n_leaves + step;
            assert!(
                m.a < max_id && m.b < max_id && m.a != m.b,
                "merge {step} references invalid nodes"
            );
        }
        Self { n_leaves, merges }
    }

    /// Number of leaf points.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merge sequence, in merge order (increasing distance for standard
    /// linkages).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the dendrogram into `k` flat clusters by undoing the last
    /// `k - 1` merges. Returns per-leaf assignments labelled `0..k`.
    ///
    /// # Panics
    /// Panics if `k` is zero or larger than the number of leaves.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1 && k <= self.n_leaves, "invalid cut size {k}");
        // Union-find over leaves, applying merges until only k clusters remain.
        let n_merges_applied = self.n_leaves.saturating_sub(k).min(self.merges.len());
        let mut parent: Vec<usize> = (0..self.n_leaves + n_merges_applied).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for (step, m) in self.merges.iter().take(n_merges_applied).enumerate() {
            let new_id = self.n_leaves + step;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = new_id;
            parent[rb] = new_id;
        }
        // Relabel roots densely.
        let mut labels = vec![usize::MAX; self.n_leaves];
        let mut next_label = 0usize;
        let mut root_label: Vec<(usize, usize)> = Vec::new();
        for (leaf, slot) in labels.iter_mut().enumerate() {
            let r = find(&mut parent, leaf);
            let label = match root_label.iter().find(|&&(root, _)| root == r) {
                Some(&(_, l)) => l,
                None => {
                    let l = next_label;
                    root_label.push((r, l));
                    next_label += 1;
                    l
                }
            };
            *slot = label;
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 leaves: (0,1) merge first, then (2,3), then the two pairs.
    fn sample() -> Dendrogram {
        Dendrogram::new(
            4,
            vec![
                Merge {
                    a: 0,
                    b: 1,
                    distance: 1.0,
                },
                Merge {
                    a: 2,
                    b: 3,
                    distance: 2.0,
                },
                Merge {
                    a: 4,
                    b: 5,
                    distance: 5.0,
                },
            ],
        )
    }

    #[test]
    fn cut_to_one_cluster() {
        let labels = sample().cut(1);
        assert!(labels.iter().all(|&l| l == labels[0]));
    }

    #[test]
    fn cut_to_two_clusters() {
        let labels = sample().cut(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn cut_to_leaves() {
        let labels = sample().cut(4);
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cut_to_three() {
        let labels = sample().cut(3);
        // Only the first merge applies: {0,1} together, 2 and 3 separate.
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    #[should_panic(expected = "invalid cut size")]
    fn zero_cut_panics() {
        sample().cut(0);
    }

    #[test]
    #[should_panic(expected = "references invalid nodes")]
    fn invalid_merge_rejected() {
        Dendrogram::new(
            2,
            vec![Merge {
                a: 0,
                b: 5,
                distance: 1.0,
            }],
        );
    }
}
