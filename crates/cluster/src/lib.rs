//! # rv-cluster — clustering algorithms
//!
//! The unsupervised half of the paper's 2-step approach (§4.2): cluster the
//! smoothed PMF vectors of job groups into a small catalog of typical
//! distribution shapes.
//!
//! * [`mod@kmeans`] — k-means with k-means++ seeding (the paper's choice: it
//!   produced balanced clusters);
//! * [`mod@agglomerative`] — bottom-up agglomerative clustering with
//!   single/complete/average linkage (the paper's rejected baseline: it
//!   produced clusters with >90% of the data in one cluster);
//! * [`dendrogram`] — the merge tree recorded by agglomerative clustering,
//!   cuttable at any cluster count;
//! * [`elbow`] — inertia curves and elbow detection for choosing `k`;
//! * [`minibatch`] — Sculley's web-scale mini-batch k-means (the paper's
//!   actual k-means citation \[62\]), for populations too large for Lloyd;
//! * [`silhouette`] — silhouette scores quantifying §4.2's "clusters are
//!   sufficiently different from each other" check;
//! * [`assign`] — nearest-centroid assignment for new vectors.

pub mod agglomerative;
pub mod assign;
pub mod dendrogram;
pub mod elbow;
pub mod kmeans;
pub mod minibatch;
pub mod silhouette;

pub use agglomerative::{agglomerative, Linkage};
pub use assign::nearest_centroid;
pub use dendrogram::Dendrogram;
pub use elbow::{elbow_point, inertia_curve};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use minibatch::{minibatch_kmeans, MiniBatchConfig};
pub use silhouette::{silhouette_samples, silhouette_score};
