//! Silhouette scores: cluster-quality measurement beyond inertia.
//!
//! §4.2 validates the cluster count "by visually examining the clustering
//! results to check if the clusters are sufficiently different from each
//! other". The silhouette coefficient quantifies that check: for each point,
//! `(b - a) / max(a, b)` where `a` is the mean distance to its own cluster
//! and `b` the mean distance to the nearest other cluster; +1 means crisp
//! separation, 0 a boundary point, negative a likely misassignment.

#[inline]
fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Per-point silhouette coefficients. Points in singleton clusters score 0
/// by convention (scikit-learn's choice).
///
/// # Panics
/// Panics if lengths disagree, fewer than 2 clusters are present, or points
/// are ragged.
pub fn silhouette_samples(points: &[Vec<f64>], assignments: &[usize]) -> Vec<f64> {
    assert_eq!(points.len(), assignments.len(), "length mismatch");
    assert!(!points.is_empty(), "need points");
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "ragged points");
    let k = assignments.iter().copied().max().expect("non-empty") + 1;
    assert!(
        assignments
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len()
            >= 2,
        "need at least two clusters"
    );

    let mut cluster_sizes = vec![0usize; k];
    for &a in assignments {
        cluster_sizes[a] += 1;
    }

    points
        .iter()
        .zip(assignments)
        .map(|(p, &own)| {
            if cluster_sizes[own] <= 1 {
                return 0.0;
            }
            // Mean distance to each cluster.
            let mut sums = vec![0.0f64; k];
            for (q, &c) in points.iter().zip(assignments) {
                sums[c] += euclid(p, q);
            }
            let a = sums[own] / (cluster_sizes[own] - 1) as f64;
            let b = (0..k)
                .filter(|&c| c != own && cluster_sizes[c] > 0)
                .map(|c| sums[c] / cluster_sizes[c] as f64)
                .fold(f64::INFINITY, f64::min);
            if a.max(b) == 0.0 {
                0.0
            } else {
                (b - a) / a.max(b)
            }
        })
        .collect()
}

/// Mean silhouette over all points.
pub fn silhouette_score(points: &[Vec<f64>], assignments: &[usize]) -> f64 {
    let s = silhouette_samples(points, assignments);
    s.iter().sum::<f64>() / s.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            pts.push(vec![i as f64 * 0.01, 0.0]);
            labels.push(0);
            pts.push(vec![100.0 + i as f64 * 0.01, 0.0]);
            labels.push(1);
        }
        (pts, labels)
    }

    #[test]
    fn separated_blobs_score_near_one() {
        let (pts, labels) = two_blobs();
        let s = silhouette_score(&pts, &labels);
        assert!(s > 0.99, "score {s}");
    }

    #[test]
    fn shuffled_labels_score_poorly() {
        let (pts, mut labels) = two_blobs();
        // Swap half the labels: many points now sit in the wrong cluster.
        for l in labels.iter_mut().step_by(4) {
            *l = 1 - *l;
        }
        let good = silhouette_score(&pts, &two_blobs().1);
        let bad = silhouette_score(&pts, &labels);
        assert!(bad < good - 0.5, "bad {bad} vs good {good}");
    }

    #[test]
    fn boundary_point_scores_low() {
        let pts = vec![
            vec![0.0],
            vec![1.0],
            vec![10.0],
            vec![11.0],
            vec![5.5], // equidistant boundary point
        ];
        let labels = vec![0, 0, 1, 1, 0];
        let s = silhouette_samples(&pts, &labels);
        assert!(s[4] < 0.35, "boundary silhouette {}", s[4]);
        assert!(s[0] > 0.5);
    }

    #[test]
    fn singleton_cluster_scores_zero() {
        let pts = vec![vec![0.0], vec![0.1], vec![9.0]];
        let labels = vec![0, 0, 1];
        let s = silhouette_samples(&pts, &labels);
        assert_eq!(s[2], 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two clusters")]
    fn single_cluster_panics() {
        silhouette_samples(&[vec![0.0], vec![1.0]], &[0, 0]);
    }
}
