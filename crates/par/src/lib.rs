//! # rv-par — deterministic data parallelism
//!
//! A std-only scoped worker pool for the pipeline's embarrassingly parallel
//! sweeps: one simulated run per job instance, one restart per k-means
//! seeding, one feature per split search, one coalition per Shapley value.
//! Generalized from the ad-hoc `parallel_fit` that the random forest
//! trainer started with.
//!
//! ## Determinism contract
//!
//! Parallelism here changes wall-clock time, never results:
//!
//! * [`par_map`] hands out work by an atomic ticket (dynamic load balance)
//!   but returns results **in input-index order**, so a caller that reduces
//!   over the returned vector associates floating-point operations exactly
//!   as the serial loop would;
//! * [`par_chunks`] splits a slice into contiguous, never-empty chunks —
//!   each element is written by exactly one worker, and workers only
//!   compute element-local values;
//! * the serial path is the same code run by a one-worker pool
//!   (`threads = 1`), not a separate implementation.
//!
//! Callers that fold floats across items must therefore reduce over the
//! returned, index-ordered values — never accumulate across items inside
//! workers, where completion order is scheduling-dependent.
//!
//! ## Thread-count resolution
//!
//! Every entry point takes `threads: usize` where `0` means *auto*,
//! resolved by [`Threads`]: the process-wide override
//! ([`set_global_threads`], wired to `--threads` on the binaries), else the
//! `RUNVAR_THREADS` environment variable, else the machine's available
//! parallelism.
//!
//! ## Observability
//!
//! When `rv-obs` is enabled, each parallel dispatch records pool counters
//! (`par.dispatches`, `par.tasks`, `par.workers`) and folds per-worker busy
//! and idle wall time into the span aggregates (`par.worker_busy`,
//! `par.worker_idle`). The counters are exact and deterministic for a
//! given configuration; busy/idle are wall-clock quantities and live in
//! the span layer, where timings are expected to vary run to run.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

pub mod fault;

/// Process-wide thread-count override; `0` means "not set".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// A worker-count request.
///
/// `requested == 0` means *auto*; [`Threads::get`] resolves it through the
/// override → `RUNVAR_THREADS` → CPU-count chain described in the crate
/// docs. Non-zero requests are taken literally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threads {
    /// Requested worker count; `0` resolves automatically.
    pub requested: usize,
}

impl Threads {
    /// Automatic resolution (override → env → CPU count).
    pub const AUTO: Threads = Threads { requested: 0 };

    /// A fixed worker count (`0` falls back to auto).
    pub fn fixed(n: usize) -> Self {
        Self { requested: n }
    }

    /// Resolves to a concrete worker count (always ≥ 1).
    pub fn get(self) -> usize {
        if self.requested > 0 {
            return self.requested;
        }
        let global = GLOBAL_THREADS.load(Ordering::Relaxed);
        if global > 0 {
            return global;
        }
        if let Some(n) = env_threads() {
            return n;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

impl Default for Threads {
    fn default() -> Self {
        Self::AUTO
    }
}

fn env_threads() -> Option<usize> {
    std::env::var("RUNVAR_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

/// Sets the process-wide worker-count override (the `--threads` flag);
/// `0` clears it back to `RUNVAR_THREADS`/CPU-count resolution.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// Resolves `requested` (`0` = auto) to a concrete worker count, ≥ 1.
pub fn resolve_threads(requested: usize) -> usize {
    Threads { requested }.get()
}

/// Maps `f` over `0..n_items` on up to `threads` workers (`0` = auto) and
/// returns the results in **input-index order**.
///
/// Work is distributed by an atomic ticket, so a slow item does not stall
/// the other workers; determinism comes from the reduction side — every
/// result lands at its input index regardless of which worker computed it
/// or when. With one resolved worker (or fewer than two items) this is a
/// plain serial loop over the same closure.
pub fn par_map<T, F>(n_items: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n_workers = resolve_threads(threads).min(n_items);
    if n_workers <= 1 {
        return (0..n_items).map(f).collect();
    }
    let obs = rv_obs::enabled();
    let ticket = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n_items).map(|_| None).collect();
    let mut busy = vec![0.0f64; n_workers];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                let ticket = &ticket;
                let f = &f;
                scope.spawn(move || {
                    let start = obs.then(Instant::now);
                    let mut done: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = ticket.fetch_add(1, Ordering::Relaxed);
                        if i >= n_items {
                            break;
                        }
                        done.push((i, f(i)));
                    }
                    (done, start.map_or(0.0, |s| s.elapsed().as_secs_f64()))
                })
            })
            .collect();
        for (w, handle) in handles.into_iter().enumerate() {
            let (done, secs) = handle
                .join()
                .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
            busy[w] = secs;
            for (i, v) in done {
                debug_assert!(slots[i].is_none(), "index {i} computed twice");
                slots[i] = Some(v);
            }
        }
    });
    if obs {
        record_dispatch(n_items, &busy);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index computed exactly once"))
        .collect()
}

/// A task that unwound inside an isolated parallel map.
///
/// Carries the input index the task was computing and the panic payload's
/// message (when it was a string — the overwhelmingly common case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The input index whose task panicked.
    pub index: usize,
    /// The panic payload rendered as text.
    pub message: String,
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Runs `f` under `catch_unwind`, converting a panic into a [`TaskPanic`]
/// for item `index` instead of unwinding into the caller.
///
/// Every caught panic bumps the `fault.task_panic` counter, injected or
/// organic — the count is the audit trail that isolation actually engaged.
pub fn catch_task<T>(index: usize, f: impl FnOnce() -> T) -> Result<T, TaskPanic> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            rv_obs::counter("fault.task_panic").inc();
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(TaskPanic { index, message })
        }
    }
}

/// [`par_map`] with per-task panic isolation: a panicking task fails its
/// own item as `Err(TaskPanic)` and every other item still completes. The
/// index-order determinism contract is unchanged.
pub fn par_map_isolated<T, F>(n_items: usize, threads: usize, f: F) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map(n_items, threads, |i| catch_task(i, || f(i)))
}

/// Splits `items` into contiguous chunks and runs `f(start_index, chunk)`
/// on up to `threads` workers (`0` = auto).
///
/// Chunks are never empty: the worker count is clamped to `items.len()`,
/// so `n_items < n_threads` simply spawns fewer workers. With one resolved
/// worker (or an empty slice) the closure runs inline on the whole slice.
pub fn par_chunks<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = items.len();
    let n_workers = resolve_threads(threads).min(n);
    if n_workers <= 1 {
        if n > 0 {
            f(0, items);
        }
        return;
    }
    let obs = rv_obs::enabled();
    let chunk = n.div_ceil(n_workers);
    let busy: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let f = &f;
                scope.spawn(move || {
                    let start = obs.then(Instant::now);
                    f(ci * chunk, slice);
                    start.map_or(0.0, |s| s.elapsed().as_secs_f64())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });
    if obs {
        record_dispatch(n, &busy);
    }
}

/// Folds one dispatch's pool activity into the obs layer. Idle time is
/// measured against the slowest worker of the dispatch — the time each
/// other worker spent waiting at the scope join.
fn record_dispatch(n_tasks: usize, busy: &[f64]) {
    rv_obs::counter("par.dispatches").inc();
    rv_obs::counter("par.tasks").add(n_tasks as u64);
    rv_obs::counter("par.workers").add(busy.len() as u64);
    let slowest = busy.iter().fold(0.0f64, |a, &b| a.max(b));
    for &b in busy {
        rv_obs::record_span_seconds("par.worker_busy", b);
        rv_obs::record_span_seconds("par.worker_idle", slowest - b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(i: usize) -> usize {
        i * i
    }

    #[test]
    fn par_map_empty_input() {
        let out: Vec<usize> = par_map(0, 4, square);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_single_item() {
        assert_eq!(par_map(1, 4, square), vec![0]);
    }

    #[test]
    fn par_map_fewer_items_than_threads() {
        // n_items = n_threads - 1: the worker count clamps to the item
        // count, so no worker ever sees an empty range.
        assert_eq!(par_map(3, 4, square), vec![0, 1, 4]);
    }

    #[test]
    fn par_map_preserves_index_order() {
        for threads in [1, 2, 3, 4, 7, 16] {
            let out = par_map(257, threads, |i| i.wrapping_mul(0x9e37_79b9));
            let expected: Vec<usize> = (0..257usize).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_empty_and_small() {
        let mut empty: [usize; 0] = [];
        par_chunks(&mut empty, 4, |_, _| panic!("no chunk for empty input"));

        for n in [1usize, 3] {
            let mut items = vec![0usize; n];
            par_chunks(&mut items, 4, |start, chunk| {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = start + j;
                }
            });
            let expected: Vec<usize> = (0..n).collect();
            assert_eq!(items, expected, "n={n}");
        }
    }

    #[test]
    fn par_chunks_covers_every_element_once() {
        let mut items = vec![0u32; 1000];
        par_chunks(&mut items, 8, |_, chunk| {
            for slot in chunk.iter_mut() {
                *slot += 1;
            }
        });
        assert!(items.iter().all(|&v| v == 1));
    }

    #[test]
    fn explicit_request_wins_resolution() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(Threads::fixed(7).get(), 7);
        assert!(Threads::AUTO.get() >= 1);
    }

    #[test]
    fn isolated_map_contains_panics_to_their_item() {
        fault::install_quiet_panic_filter();
        for threads in [1, 4] {
            let before = rv_obs::counter("fault.task_panic").get();
            let out = par_map_isolated(40, threads, |i| {
                if i % 7 == 3 {
                    panic!("injected fault: test task {i}");
                }
                i * 2
            });
            assert_eq!(out.len(), 40);
            for (i, r) in out.iter().enumerate() {
                if i % 7 == 3 {
                    let p = r.as_ref().expect_err("task should have panicked");
                    assert_eq!(p.index, i);
                    assert!(p.message.contains(&format!("test task {i}")), "{p}");
                } else {
                    assert_eq!(
                        r.as_ref().expect("healthy task"),
                        &(i * 2),
                        "threads={threads}"
                    );
                }
            }
            let caught = out.iter().filter(|r| r.is_err()).count() as u64;
            assert!(
                rv_obs::counter("fault.task_panic").get() >= before + caught,
                "every caught panic must be counted"
            );
        }
    }

    #[test]
    fn catch_task_passes_values_and_string_payloads() {
        fault::install_quiet_panic_filter();
        assert_eq!(catch_task(9, || 42), Ok(42));
        let owned = catch_task(1, || -> u32 { panic!("injected fault: {}", "owned") });
        assert_eq!(
            owned.expect_err("panicked").message,
            "injected fault: owned"
        );
    }

    #[test]
    fn global_override_applies_to_auto_only() {
        set_global_threads(2);
        assert_eq!(resolve_threads(0), 2);
        assert_eq!(resolve_threads(5), 5);
        set_global_threads(0);
        assert!(resolve_threads(0) >= 1);
    }
}
