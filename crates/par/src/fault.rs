//! Low-level fault hook for worker-pool tasks.
//!
//! The pool itself stays policy-free: a higher layer (in practice
//! `rv_core::pipeline::fault`) installs a process-global hook mapping a
//! `(site, index)` pair to an optional [`TaskFault`], and fault-aware task
//! bodies consult [`check`] at their entry point. With no hook installed
//! the check is a single relaxed atomic load, so production paths pay
//! nothing for the capability.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A fault to inject into one task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskFault {
    /// The task should panic (exercises `catch_unwind` isolation).
    Panic,
    /// The task should fail with a typed error (exercises retry paths).
    Error,
}

/// Hook mapping `(site, index)` to an optional fault for this attempt.
pub type Hook = Arc<dyn Fn(&str, u64) -> Option<TaskFault> + Send + Sync>;

static HOOK_ON: AtomicBool = AtomicBool::new(false);

fn hook_cell() -> &'static RwLock<Option<Hook>> {
    static CELL: OnceLock<RwLock<Option<Hook>>> = OnceLock::new();
    CELL.get_or_init(|| RwLock::new(None))
}

/// Installs (or, with `None`, removes) the process-global task-fault hook.
pub fn set_hook(hook: Option<Hook>) {
    let is_some = hook.is_some();
    *hook_cell().write().expect("fault hook lock poisoned") = hook;
    HOOK_ON.store(is_some, Ordering::Release);
}

/// Asks the installed hook whether this `(site, index)` attempt should
/// fault. Returns `None` — at the cost of one atomic load — when no hook
/// is installed.
pub fn check(site: &str, index: u64) -> Option<TaskFault> {
    if !HOOK_ON.load(Ordering::Acquire) {
        return None;
    }
    let guard = hook_cell().read().expect("fault hook lock poisoned");
    guard.as_ref().and_then(|h| h(site, index))
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// stderr backtrace for panics whose message starts with `injected fault:`.
/// All other panics still print through the previously installed hook.
/// Keeps fault-injection runs and tests readable without hiding organic
/// failures.
pub fn install_quiet_panic_filter() {
    static FILTER: OnceLock<()> = OnceLock::new();
    FILTER.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|m| m.starts_with("injected fault:"));
            if !injected {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_hook_means_no_fault() {
        assert_eq!(check("nowhere", 0), None);
    }

    #[test]
    fn hook_round_trip() {
        set_hook(Some(Arc::new(|site, idx| {
            (site == "t" && idx == 3).then_some(TaskFault::Panic)
        })));
        assert_eq!(check("t", 3), Some(TaskFault::Panic));
        assert_eq!(check("t", 4), None);
        assert_eq!(check("u", 3), None);
        set_hook(None);
        assert_eq!(check("t", 3), None);
    }
}
