//! Property-based tests for the SCOPE workload substrate.

use proptest::prelude::*;

use rv_scope::job::stream_rng;
use rv_scope::{
    GeneratorConfig, JobGroupKey, OperatorKind, PlanBuilder, PlanSignature, SubmissionSchedule,
    WorkloadGenerator,
};

fn op_kind() -> impl Strategy<Value = OperatorKind> {
    (0usize..OperatorKind::COUNT).prop_map(|i| OperatorKind::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn signature_depends_only_on_structure(
        kinds in prop::collection::vec(op_kind(), 1..8),
        vertices_a in 1u32..100,
        vertices_b in 1u32..100,
    ) {
        let build = |vertices: u32| {
            let mut b = PlanBuilder::new();
            let mut prev = None;
            for &k in &kinds {
                let inputs = prev.map(|p| vec![p]).unwrap_or_default();
                prev = Some(b.simple_stage(k, vertices, inputs));
            }
            b.build()
        };
        // Parallelism is a parameter, not structure: signatures agree.
        prop_assert_eq!(
            PlanSignature::of(&build(vertices_a)),
            PlanSignature::of(&build(vertices_b))
        );
    }

    #[test]
    fn name_normalization_is_idempotent(name in "[A-Za-z0-9_ @#./-]{1,40}") {
        let once = JobGroupKey::normalize_name(&name);
        let twice = JobGroupKey::normalize_name(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn schedule_times_in_window(
        period in 600.0..90_000.0f64,
        jitter in 0.0..500.0f64,
        phase in 0.0..80_000.0f64,
        window_hours in 1.0..200.0f64,
        seed in 0u64..50,
    ) {
        let schedule = SubmissionSchedule { period_s: period, jitter_s: jitter, phase_s: phase };
        let window = window_hours * 3600.0;
        let times = schedule.submissions_within(window, &mut stream_rng(seed, 0));
        for &t in &times {
            prop_assert!((0.0..window).contains(&t));
        }
        // Count bound: at most ceil((window + jitter) / period) + 1.
        let bound = ((window + jitter) / period).ceil() as usize + 1;
        prop_assert!(times.len() <= bound);
    }

    #[test]
    fn generated_inputs_are_positive(n in 1usize..20, seed in 0u64..20) {
        let g = WorkloadGenerator::new(GeneratorConfig {
            n_templates: n,
            seed,
            ..Default::default()
        });
        let instances = g.instances_within(86_400.0);
        for i in &instances {
            prop_assert!(i.input_gb > 0.0 && i.input_gb.is_finite());
            prop_assert!((i.template_id as usize) < g.templates().len());
        }
    }
}
