//! EXPLAIN-style plan rendering.
//!
//! SCOPE (like every SQL engine) can dump its compiled plan; a readable
//! rendering is indispensable when debugging why two jobs share (or fail to
//! share) a signature. Renders the stage DAG bottom-up with indentation
//! following the *first* consumer path and explicit references for shared
//! subtrees.

use crate::plan::Plan;

/// Renders the plan as an indented tree, sinks first.
///
/// Stages consumed by more than one downstream stage are printed once and
/// referenced as `[stage N]` afterwards, so diamonds stay readable.
pub fn explain(plan: &Plan) -> String {
    let stages = plan.stages();
    // Find sinks (stages nobody consumes).
    let mut consumed_by = vec![0usize; stages.len()];
    for s in stages {
        for &i in &s.inputs {
            consumed_by[i] += 1;
        }
    }
    let mut out = String::new();
    let mut printed = vec![false; stages.len()];
    for (i, &c) in consumed_by.iter().enumerate().rev() {
        if c == 0 {
            render(plan, i, 0, &mut printed, &mut out);
        }
    }
    out
}

fn render(plan: &Plan, idx: usize, depth: usize, printed: &mut [bool], out: &mut String) {
    let stage = &plan.stages()[idx];
    let indent = "  ".repeat(depth);
    let ops: Vec<&str> = stage.operators.iter().map(|o| o.kind.name()).collect();
    if printed[idx] {
        out.push_str(&format!("{indent}[stage {idx}] (shared, see above)\n"));
        return;
    }
    printed[idx] = true;
    let jitter = if stage.is_jittery() {
        "  [jittery]"
    } else {
        ""
    };
    out.push_str(&format!(
        "{indent}stage {idx}: {} (x{} vertices){jitter}\n",
        ops.join(" -> "),
        stage.base_vertices
    ));
    for &input in &stage.inputs {
        render(plan, input, depth + 1, printed, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::OperatorKind;
    use crate::plan::PlanBuilder;

    #[test]
    fn renders_linear_chain() {
        let mut b = PlanBuilder::new();
        let e = b.simple_stage(OperatorKind::Extract, 8, vec![]);
        let f = b.simple_stage(OperatorKind::Filter, 4, vec![e]);
        b.simple_stage(OperatorKind::Output, 1, vec![f]);
        let text = explain(&b.build());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("stage 2: Output"));
        assert!(lines[1].trim_start().starts_with("stage 1: Filter"));
        assert!(lines[2].trim_start().starts_with("stage 0: Extract"));
        // Indentation deepens along the chain.
        assert!(lines[1].starts_with("  "));
        assert!(lines[2].starts_with("    "));
    }

    #[test]
    fn diamond_prints_shared_stage_once() {
        let mut b = PlanBuilder::new();
        let e = b.simple_stage(OperatorKind::Extract, 8, vec![]);
        let f = b.simple_stage(OperatorKind::Filter, 4, vec![e]);
        let w = b.simple_stage(OperatorKind::Window, 4, vec![e]);
        b.simple_stage(OperatorKind::HashJoin, 4, vec![f, w]);
        let text = explain(&b.build());
        assert_eq!(
            text.matches("stage 0: Extract").count(),
            1,
            "shared stage printed once:\n{text}"
        );
        assert!(text.contains("[stage 0] (shared, see above)"));
        assert!(text.contains("[jittery]"), "window stage flagged:\n{text}");
    }

    #[test]
    fn fused_operators_render_as_pipeline() {
        let mut b = PlanBuilder::new();
        b.stage(
            vec![
                crate::operator::Operator::new(OperatorKind::Extract, 1.0, 1.0),
                crate::operator::Operator::new(OperatorKind::Filter, 1.0, 1.0),
                crate::operator::Operator::new(OperatorKind::Project, 1.0, 1.0),
            ],
            16,
            vec![],
        );
        let text = explain(&b.build());
        assert!(text.contains("Extract -> Filter -> Project (x16 vertices)"));
    }

    #[test]
    fn multiple_sinks_all_rendered() {
        let mut b = PlanBuilder::new();
        let e = b.simple_stage(OperatorKind::Extract, 4, vec![]);
        b.simple_stage(OperatorKind::Output, 1, vec![e]);
        b.simple_stage(OperatorKind::TopN, 1, vec![e]);
        let text = explain(&b.build());
        assert!(text.contains("stage 1: Output"));
        assert!(text.contains("stage 2: TopN"));
    }
}
