//! # rv-scope — SCOPE-like workload model
//!
//! A faithful stand-in for the SCOPE job model described in §3 of *Runtime
//! Variation in Big Data Analytics*:
//!
//! * jobs are authored as operator DAGs ([`operator`], [`plan`]) compiled into
//!   stages of *vertices* — individual processes that each run in one
//!   container/token on one machine;
//! * recurrences are identified by a *job group key* ([`group`]): the
//!   normalized job name plus a *signature* ([`signature`]) hashed recursively
//!   over the operator DAG, deliberately excluding input parameters and
//!   dataset sizes (§3.1);
//! * a query [`optimizer`] produces cardinality/cost estimates that can be
//!   "quite off" (§5.1), with configurable mis-estimation;
//! * a [`generator`] fabricates a population of recurring job templates whose
//!   archetypes ([`archetype`]) span the variance regimes that give rise to
//!   the paper's catalog of runtime-distribution shapes: stable, bimodal,
//!   heavy-tailed, load-sensitive, spare-token-dependent, drifting.
//!
//! The generator is the workload side of the substitution documented in
//! DESIGN.md: real Cosmos telemetry is proprietary, so we synthesize job
//! populations whose *causal structure* matches the paper's findings.

pub mod archetype;
pub mod explain_plan;
pub mod generator;
pub mod group;
pub mod job;
pub mod operator;
pub mod optimizer;
pub mod plan;
pub mod signature;

pub use archetype::{Archetype, VarianceProfile};
pub use explain_plan::explain;
pub use generator::{GeneratorConfig, WorkloadGenerator};
pub use group::JobGroupKey;
pub use job::{JobInstance, JobTemplate, SubmissionSchedule};
pub use operator::{Operator, OperatorKind};
pub use optimizer::{CardinalityEstimator, PlanEstimate};
pub use plan::{Plan, PlanBuilder, Stage};
pub use signature::PlanSignature;
