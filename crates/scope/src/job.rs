//! Job templates and job instances.
//!
//! A [`JobTemplate`] is the definition of a *recurring* job: its plan, its
//! submission cadence, its resource request, and its variance profile. Each
//! realized run is a [`JobInstance`] — the unit whose runtime the paper
//! studies. Instances of one template share a [`JobGroupKey`] (name +
//! signature) but differ in parameters and input sizes (§3.2, "Intrinsic
//! characteristics").

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::archetype::Archetype;
use crate::group::JobGroupKey;
use crate::plan::Plan;
use crate::signature::PlanSignature;

/// How often a recurring job is submitted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubmissionSchedule {
    /// Seconds between consecutive submissions.
    pub period_s: f64,
    /// Uniform jitter applied to each submission time, in seconds.
    pub jitter_s: f64,
    /// Offset of the first submission from the start of the window, seconds.
    pub phase_s: f64,
}

impl SubmissionSchedule {
    /// Hourly schedule with moderate jitter.
    pub fn hourly() -> Self {
        Self {
            period_s: 3_600.0,
            jitter_s: 120.0,
            phase_s: 0.0,
        }
    }

    /// Daily schedule with moderate jitter.
    pub fn daily() -> Self {
        Self {
            period_s: 86_400.0,
            jitter_s: 600.0,
            phase_s: 0.0,
        }
    }

    /// All submission times within `[0, window_s)`, jittered deterministically
    /// by `rng`.
    pub fn submissions_within(&self, window_s: f64, rng: &mut SmallRng) -> Vec<f64> {
        assert!(self.period_s > 0.0, "period must be positive");
        let mut times = Vec::new();
        let mut t = self.phase_s;
        while t < window_s {
            let jitter = if self.jitter_s > 0.0 {
                rng.gen_range(-self.jitter_s..self.jitter_s)
            } else {
                0.0
            };
            let st = (t + jitter).max(0.0);
            if st < window_s {
                times.push(st);
            }
            t += self.period_s;
        }
        times
    }
}

/// The definition of one recurring job.
#[derive(Debug, Clone)]
pub struct JobTemplate {
    /// Unique template id (dense, assigned by the generator).
    pub id: u32,
    /// Raw submitted name (before normalization).
    pub raw_name: String,
    /// The compiled plan.
    pub plan: Plan,
    /// The plan's signature (cached).
    pub signature: PlanSignature,
    /// Archetype that pinned this template's variance profile.
    pub archetype: Archetype,
    /// Reference input size in GB at the start of the window.
    pub base_input_gb: f64,
    /// Guaranteed token allocation requested at submission (§3.2). Users
    /// frequently over-allocate; the generator encodes that bias.
    pub allocated_tokens: u32,
    /// Submission cadence.
    pub schedule: SubmissionSchedule,
    /// Optional SKU-generation affinity (index into the fleet's generation
    /// list, oldest = 0): legacy jobs are often pinned near their data on
    /// older machine pools, which couples their vertex placement — and hence
    /// their runtime stability (§3.2, §7.2) — to that generation.
    pub sku_affinity: Option<usize>,
}

impl JobTemplate {
    /// The group key shared by all instances of this template.
    pub fn group_key(&self) -> JobGroupKey {
        JobGroupKey::from_raw(&self.raw_name, self.signature)
    }

    /// Samples the input size (GB) for a run submitted at `submit_time_s`,
    /// applying log-normal intrinsic variation, the optional second mode, and
    /// archetype drift. Deterministic given `rng` state.
    pub fn sample_input_gb(&self, submit_time_s: f64, rng: &mut SmallRng) -> f64 {
        let profile = self.archetype.profile();
        // Log-normal multiplicative noise around the base size.
        let z: f64 = sample_standard_normal(rng);
        let mut size = self.base_input_gb * (profile.input_log_sigma * z).exp();
        if let Some((factor, prob)) = profile.input_second_mode {
            if rng.gen_bool(prob) {
                size *= factor;
            }
        }
        let drift = self.archetype.input_drift_per_day() * submit_time_s / 86_400.0;
        size * (1.0 + drift)
    }
}

/// One realized run of a template.
#[derive(Debug, Clone, PartialEq)]
pub struct JobInstance {
    /// Template this instance was spawned from.
    pub template_id: u32,
    /// Recurrence index within the template (0-based).
    pub seq: u32,
    /// Submission time, seconds from the start of the observation window.
    pub submit_time_s: f64,
    /// Realized input size in GB.
    pub input_gb: f64,
}

impl JobInstance {
    /// Scaling factor of this run relative to the template's reference size.
    pub fn input_scale(&self, template: &JobTemplate) -> f64 {
        self.input_gb / template.base_input_gb
    }
}

/// Samples a standard normal deviate via Box–Muller (avoids the
/// `rand_distr` dependency).
pub fn sample_standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Seeds a [`SmallRng`] from a master seed and a stream id, so independent
/// entities get decorrelated deterministic streams.
pub fn stream_rng(master_seed: u64, stream: u64) -> SmallRng {
    // SplitMix64 over (seed, stream) — standard seed-derivation trick.
    let mut z =
        master_seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    SmallRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::OperatorKind;
    use crate::plan::PlanBuilder;

    fn template(archetype: Archetype) -> JobTemplate {
        let mut b = PlanBuilder::new();
        let e = b.simple_stage(OperatorKind::Extract, 10, vec![]);
        b.simple_stage(OperatorKind::Output, 1, vec![e]);
        let plan = b.build();
        let signature = PlanSignature::of(&plan);
        JobTemplate {
            id: 0,
            raw_name: "T@1".into(),
            plan,
            signature,
            archetype,
            base_input_gb: 100.0,
            allocated_tokens: 50,
            schedule: SubmissionSchedule::hourly(),
            sku_affinity: None,
        }
    }

    #[test]
    fn schedule_covers_window() {
        let mut rng = stream_rng(1, 1);
        let times = SubmissionSchedule::hourly().submissions_within(86_400.0, &mut rng);
        assert_eq!(times.len(), 24);
        assert!(times.iter().all(|&t| (0.0..86_400.0).contains(&t)));
    }

    #[test]
    fn schedule_zero_jitter_is_exact() {
        let mut rng = stream_rng(1, 2);
        let s = SubmissionSchedule {
            period_s: 100.0,
            jitter_s: 0.0,
            phase_s: 10.0,
        };
        let times = s.submissions_within(500.0, &mut rng);
        assert_eq!(times, vec![10.0, 110.0, 210.0, 310.0, 410.0]);
    }

    #[test]
    fn input_sampling_is_deterministic() {
        let t = template(Archetype::StableShort);
        let a = t.sample_input_gb(0.0, &mut stream_rng(7, 3));
        let b = t.sample_input_gb(0.0, &mut stream_rng(7, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn stable_inputs_are_tight() {
        let t = template(Archetype::StableShort);
        let mut rng = stream_rng(11, 0);
        let sizes: Vec<f64> = (0..200).map(|_| t.sample_input_gb(0.0, &mut rng)).collect();
        let min = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sizes.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max / min < 1.3, "stable archetype inputs too spread");
    }

    #[test]
    fn bimodal_inputs_have_two_regimes() {
        let t = template(Archetype::BimodalInput);
        let mut rng = stream_rng(11, 1);
        let sizes: Vec<f64> = (0..500).map(|_| t.sample_input_gb(0.0, &mut rng)).collect();
        let big = sizes.iter().filter(|&&s| s > 180.0).count();
        // Second mode multiplies by 2.4 with prob 0.35.
        assert!(big > 100 && big < 250, "got {big} large runs");
    }

    #[test]
    fn drifting_inputs_grow() {
        let t = template(Archetype::DriftingInput);
        let mut rng = stream_rng(11, 2);
        let early: f64 = (0..100)
            .map(|_| t.sample_input_gb(0.0, &mut rng))
            .sum::<f64>()
            / 100.0;
        let late: f64 = (0..100)
            .map(|_| t.sample_input_gb(90.0 * 86_400.0, &mut rng))
            .sum::<f64>()
            / 100.0;
        assert!(late > early * 1.2, "early {early}, late {late}");
    }

    #[test]
    fn group_key_ignores_raw_decorations() {
        let mut t1 = template(Archetype::StableShort);
        let mut t2 = template(Archetype::StableShort);
        t1.raw_name = "Pipeline@20230101".into();
        t2.raw_name = "pipeline@20230301".into();
        assert_eq!(t1.group_key(), t2.group_key());
    }

    #[test]
    fn stream_rngs_decorrelated() {
        let a: u64 = stream_rng(5, 1).gen();
        let b: u64 = stream_rng(5, 2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = stream_rng(42, 0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
