//! Execution plans: operator DAGs compiled into stages of vertices.
//!
//! A SCOPE job compiles to a DAG of operators that is partitioned into
//! *stages*; each stage is executed by many parallel *vertices*, each vertex
//! being one process on one container (token) on one machine (§3). Our plan
//! is a DAG of [`Stage`]s; each stage carries its operator pipeline, a base
//! degree of parallelism, and the indices of the stages it consumes.

use crate::operator::{Operator, OperatorCounts, OperatorKind};

/// One pipeline stage of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Operators fused into this stage, in pipeline order.
    pub operators: Vec<Operator>,
    /// Degree of parallelism at the reference input size (1 GB): the number
    /// of vertices this stage launches scales from this with input size.
    pub base_vertices: u32,
    /// Indices (into [`Plan::stages`]) of upstream stages whose output this
    /// stage consumes. Empty for leaf (extract) stages.
    pub inputs: Vec<usize>,
}

impl Stage {
    /// Sum of `cost_per_row` over the stage's operators — the per-row work
    /// multiplier used by the simulator.
    pub fn cost_per_row(&self) -> f64 {
        self.operators.iter().map(|o| o.kind.cost_per_row()).sum()
    }

    /// Whether any operator in the stage is variance-increasing (§6).
    pub fn is_jittery(&self) -> bool {
        self.operators.iter().any(|o| o.kind.is_jittery())
    }
}

/// A compiled execution plan: a DAG of stages.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    stages: Vec<Stage>,
}

impl Plan {
    /// The stages in topological order (guaranteed by [`PlanBuilder`]).
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Number of stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Per-kind operator counts across the whole plan (a §5.1 feature block).
    pub fn operator_counts(&self) -> OperatorCounts {
        let mut counts = OperatorCounts::new();
        for s in &self.stages {
            for op in &s.operators {
                counts.add(op.kind);
            }
        }
        counts
    }

    /// Total base vertices across stages (parallelism at 1 GB input).
    pub fn total_base_vertices(&self) -> u32 {
        self.stages.iter().map(|s| s.base_vertices).sum()
    }

    /// Sum of optimizer-estimated rows over all operators.
    pub fn total_estimated_rows(&self) -> f64 {
        self.stages
            .iter()
            .flat_map(|s| &s.operators)
            .map(|o| o.estimated_rows)
            .sum()
    }

    /// Sum of optimizer-estimated cost over all operators.
    pub fn total_estimated_cost(&self) -> f64 {
        self.stages
            .iter()
            .flat_map(|s| &s.operators)
            .map(|o| o.estimated_cost)
            .sum()
    }

    /// Length of the longest stage chain (the critical path in stages).
    pub fn critical_path_len(&self) -> usize {
        let mut depth = vec![0usize; self.stages.len()];
        for (i, s) in self.stages.iter().enumerate() {
            depth[i] = 1 + s.inputs.iter().map(|&j| depth[j]).max().unwrap_or(0);
        }
        depth.into_iter().max().unwrap_or(0)
    }
}

/// Builder enforcing the DAG invariant: a stage may only consume stages that
/// were added before it, so [`Plan::stages`] is always topologically sorted.
#[derive(Debug, Default)]
pub struct PlanBuilder {
    stages: Vec<Stage>,
}

impl PlanBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a stage and returns its index for wiring downstream stages.
    ///
    /// # Panics
    /// Panics if any input index refers to a stage not yet added (which would
    /// break the topological-order invariant) or if `operators` is empty or
    /// `base_vertices` is zero.
    pub fn stage(
        &mut self,
        operators: Vec<Operator>,
        base_vertices: u32,
        inputs: Vec<usize>,
    ) -> usize {
        assert!(!operators.is_empty(), "stage needs at least one operator");
        assert!(base_vertices > 0, "stage needs at least one vertex");
        let idx = self.stages.len();
        for &i in &inputs {
            assert!(i < idx, "stage input {i} must precede stage {idx}");
        }
        self.stages.push(Stage {
            operators,
            base_vertices,
            inputs,
        });
        idx
    }

    /// Convenience: adds a single-operator stage with unit estimates.
    pub fn simple_stage(
        &mut self,
        kind: OperatorKind,
        base_vertices: u32,
        inputs: Vec<usize>,
    ) -> usize {
        self.stage(vec![Operator::new(kind, 1.0, 1.0)], base_vertices, inputs)
    }

    /// Finalizes the plan.
    ///
    /// # Panics
    /// Panics if no stage was added.
    pub fn build(self) -> Plan {
        assert!(!self.stages.is_empty(), "plan needs at least one stage");
        Plan {
            stages: self.stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond_plan() -> Plan {
        // extract -> {filter, window} -> join -> output
        let mut b = PlanBuilder::new();
        let e = b.simple_stage(OperatorKind::Extract, 10, vec![]);
        let f = b.simple_stage(OperatorKind::Filter, 8, vec![e]);
        let w = b.simple_stage(OperatorKind::Window, 4, vec![e]);
        let j = b.simple_stage(OperatorKind::HashJoin, 6, vec![f, w]);
        let _o = b.simple_stage(OperatorKind::Output, 1, vec![j]);
        b.build()
    }

    #[test]
    fn diamond_structure() {
        let p = diamond_plan();
        assert_eq!(p.n_stages(), 5);
        assert_eq!(p.total_base_vertices(), 29);
        assert_eq!(p.critical_path_len(), 4);
    }

    #[test]
    fn operator_counts_across_stages() {
        let p = diamond_plan();
        let c = p.operator_counts();
        assert_eq!(c.get(OperatorKind::Extract), 1);
        assert_eq!(c.get(OperatorKind::Window), 1);
        assert_eq!(c.total(), 5);
        assert_eq!(c.jittery_total(), 1);
    }

    #[test]
    fn stage_cost_and_jitter() {
        let p = diamond_plan();
        assert!(p.stages()[2].is_jittery()); // window stage
        assert!(!p.stages()[1].is_jittery()); // filter stage
        assert!(p.stages()[3].cost_per_row() > 1.0); // hash join
    }

    #[test]
    fn estimates_aggregate() {
        let mut b = PlanBuilder::new();
        b.stage(
            vec![
                Operator::new(OperatorKind::Extract, 1000.0, 5.0),
                Operator::new(OperatorKind::Filter, 100.0, 1.0),
            ],
            4,
            vec![],
        );
        let p = b.build();
        assert_eq!(p.total_estimated_rows(), 1100.0);
        assert_eq!(p.total_estimated_cost(), 6.0);
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn forward_reference_panics() {
        let mut b = PlanBuilder::new();
        b.simple_stage(OperatorKind::Extract, 1, vec![3]);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_plan_panics() {
        PlanBuilder::new().build();
    }

    #[test]
    fn linear_chain_critical_path() {
        let mut b = PlanBuilder::new();
        let mut prev = b.simple_stage(OperatorKind::Extract, 2, vec![]);
        for _ in 0..6 {
            prev = b.simple_stage(OperatorKind::Project, 2, vec![prev]);
        }
        assert_eq!(b.build().critical_path_len(), 7);
    }
}
