//! Plan signatures: recursive hashes over the operator DAG (§3.1).
//!
//! The paper identifies job recurrences with "a hash value computed
//! recursively over the DAG of operators in the compiled plan"; crucially the
//! signature *excludes* job input parameters (predicate constants, dataset
//! sizes), so instances whose parameters change but whose plan shape stays
//! identical land in the same job group.
//!
//! We implement the hash with FNV-1a (implemented inline — no dependency),
//! combining each stage's operator kinds with the signatures of its inputs,
//! bottom-up.

use crate::plan::Plan;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

#[inline]
fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A 64-bit recursive plan-DAG signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanSignature(pub u64);

impl PlanSignature {
    /// Computes the signature of `plan`.
    ///
    /// Only structural information enters the hash: per-stage operator
    /// *kinds* (in pipeline order) and the DAG wiring via input-stage
    /// signatures. Cardinality estimates, costs, vertex counts, and any
    /// parameters are deliberately excluded so that recurrences with varying
    /// parameters/sizes share a signature, exactly as in §3.1/§3.2.
    pub fn of(plan: &Plan) -> Self {
        let stages = plan.stages();
        let mut sigs: Vec<u64> = Vec::with_capacity(stages.len());
        for stage in stages {
            let mut h = FNV_OFFSET;
            for op in &stage.operators {
                h = fnv1a(h, &[op.kind.index() as u8]);
            }
            // Fold in upstream signatures (recursive part). Order matters:
            // join(a, b) differs from join(b, a).
            for &input in &stage.inputs {
                h = fnv1a(h, &sigs[input].to_le_bytes());
            }
            sigs.push(h);
        }
        // Combine sink signatures (stages nobody consumes) for the plan hash.
        let mut consumed = vec![false; stages.len()];
        for stage in stages {
            for &i in &stage.inputs {
                consumed[i] = true;
            }
        }
        let mut h = FNV_OFFSET;
        for (i, sig) in sigs.iter().enumerate() {
            if !consumed[i] {
                h = fnv1a(h, &sig.to_le_bytes());
            }
        }
        PlanSignature(h)
    }
}

impl std::fmt::Display for PlanSignature {
    /// Formats the signature as a 16-hex-digit string, the way job
    /// signatures appear in Cosmos telemetry.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Operator, OperatorKind};
    use crate::plan::PlanBuilder;

    fn chain(kinds: &[OperatorKind]) -> Plan {
        let mut b = PlanBuilder::new();
        let mut prev: Option<usize> = None;
        for &k in kinds {
            let inputs = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(b.simple_stage(k, 4, inputs));
        }
        b.build()
    }

    #[test]
    fn identical_plans_same_signature() {
        let a = chain(&[OperatorKind::Extract, OperatorKind::Filter]);
        let b = chain(&[OperatorKind::Extract, OperatorKind::Filter]);
        assert_eq!(PlanSignature::of(&a), PlanSignature::of(&b));
    }

    #[test]
    fn different_operators_differ() {
        let a = chain(&[OperatorKind::Extract, OperatorKind::Filter]);
        let b = chain(&[OperatorKind::Extract, OperatorKind::Window]);
        assert_ne!(PlanSignature::of(&a), PlanSignature::of(&b));
    }

    #[test]
    fn estimates_do_not_affect_signature() {
        // Same structure, wildly different cardinality estimates (parameters
        // and input sizes change across recurrences): same signature.
        let mut b1 = PlanBuilder::new();
        b1.stage(
            vec![Operator::new(OperatorKind::Extract, 10.0, 1.0)],
            4,
            vec![],
        );
        let mut b2 = PlanBuilder::new();
        b2.stage(
            vec![Operator::new(OperatorKind::Extract, 1e9, 5e6)],
            4,
            vec![],
        );
        assert_eq!(
            PlanSignature::of(&b1.build()),
            PlanSignature::of(&b2.build())
        );
    }

    #[test]
    fn vertex_count_does_not_affect_signature() {
        let mut b1 = PlanBuilder::new();
        b1.simple_stage(OperatorKind::Extract, 4, vec![]);
        let mut b2 = PlanBuilder::new();
        b2.simple_stage(OperatorKind::Extract, 400, vec![]);
        assert_eq!(
            PlanSignature::of(&b1.build()),
            PlanSignature::of(&b2.build())
        );
    }

    #[test]
    fn dag_wiring_affects_signature() {
        // join(filter, window) vs join(window, filter)
        let make = |swap: bool| {
            let mut b = PlanBuilder::new();
            let e = b.simple_stage(OperatorKind::Extract, 4, vec![]);
            let f = b.simple_stage(OperatorKind::Filter, 4, vec![e]);
            let w = b.simple_stage(OperatorKind::Window, 4, vec![e]);
            let inputs = if swap { vec![w, f] } else { vec![f, w] };
            b.simple_stage(OperatorKind::HashJoin, 4, inputs);
            b.build()
        };
        assert_ne!(
            PlanSignature::of(&make(false)),
            PlanSignature::of(&make(true))
        );
    }

    #[test]
    fn chain_length_affects_signature() {
        let a = chain(&[OperatorKind::Extract, OperatorKind::Project]);
        let b = chain(&[
            OperatorKind::Extract,
            OperatorKind::Project,
            OperatorKind::Project,
        ]);
        assert_ne!(PlanSignature::of(&a), PlanSignature::of(&b));
    }

    #[test]
    fn display_is_hex() {
        let p = chain(&[OperatorKind::Extract]);
        let s = PlanSignature::of(&p).to_string();
        assert_eq!(s.len(), 16);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
