//! The query optimizer's estimates (Peregrine-style compile-time info, §5.1).
//!
//! The paper's predictor consumes compile-time information from the SCOPE
//! optimizer: per-operator cardinality estimates and costs. It also notes
//! that "the estimated cardinality can be quite off" \[82\], which is why
//! historic actuals are added as features. We model an estimator whose
//! estimates deviate from the truth by a log-normal error factor with
//! configurable spread, plus a systematic bias.

use rand::rngs::SmallRng;

use crate::job::sample_standard_normal;
use crate::plan::Plan;

/// Compile-time estimates for one plan at one (estimated) input size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEstimate {
    /// Estimated total rows flowing through the plan.
    pub estimated_rows: f64,
    /// Estimated total cost (cost units).
    pub estimated_cost: f64,
    /// Estimated input bytes read, GB.
    pub estimated_input_gb: f64,
}

/// A cardinality/cost estimator with controllable inaccuracy.
#[derive(Debug, Clone, Copy)]
pub struct CardinalityEstimator {
    /// Rows assumed per GB of input (schema-dependent constant).
    pub rows_per_gb: f64,
    /// Log-normal sigma of the multiplicative estimation error.
    pub error_log_sigma: f64,
    /// Systematic multiplicative bias (optimizers commonly under- or
    /// over-estimate; 1.0 = unbiased).
    pub bias: f64,
}

impl Default for CardinalityEstimator {
    fn default() -> Self {
        Self {
            rows_per_gb: 1.0e6,
            error_log_sigma: 0.6,
            bias: 0.85,
        }
    }
}

impl CardinalityEstimator {
    /// Estimates plan-level cardinality and cost for a run whose *true*
    /// input is `true_input_gb`. The optimizer does not see the truth; its
    /// estimate deviates by bias × log-normal error, drawn from `rng`.
    pub fn estimate(&self, plan: &Plan, true_input_gb: f64, rng: &mut SmallRng) -> PlanEstimate {
        assert!(true_input_gb > 0.0, "input size must be positive");
        let err = (self.error_log_sigma * sample_standard_normal(rng)).exp();
        let estimated_input_gb = true_input_gb * self.bias * err;
        let estimated_rows = estimated_input_gb * self.rows_per_gb;
        // Cost model: rows × Σ cost_per_row over stages, damped by base
        // parallelism (more vertices → less cost per vertex).
        let estimated_cost: f64 = plan
            .stages()
            .iter()
            .map(|s| estimated_rows * s.cost_per_row() / s.base_vertices.max(1) as f64)
            .sum();
        PlanEstimate {
            estimated_rows,
            estimated_cost,
            estimated_input_gb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::stream_rng;
    use crate::operator::OperatorKind;
    use crate::plan::PlanBuilder;

    fn plan() -> Plan {
        let mut b = PlanBuilder::new();
        let e = b.simple_stage(OperatorKind::Extract, 10, vec![]);
        let f = b.simple_stage(OperatorKind::Filter, 10, vec![e]);
        b.simple_stage(OperatorKind::Output, 1, vec![f]);
        b.build()
    }

    #[test]
    fn estimates_scale_with_input() {
        let est = CardinalityEstimator {
            error_log_sigma: 0.0,
            ..Default::default()
        };
        let p = plan();
        let small = est.estimate(&p, 1.0, &mut stream_rng(1, 0));
        let large = est.estimate(&p, 100.0, &mut stream_rng(1, 0));
        assert!((large.estimated_rows / small.estimated_rows - 100.0).abs() < 1e-6);
        assert!(large.estimated_cost > small.estimated_cost);
    }

    #[test]
    fn zero_sigma_is_pure_bias() {
        let est = CardinalityEstimator {
            rows_per_gb: 1e6,
            error_log_sigma: 0.0,
            bias: 0.85,
        };
        let e = est.estimate(&plan(), 10.0, &mut stream_rng(2, 0));
        assert!((e.estimated_input_gb - 8.5).abs() < 1e-9);
    }

    #[test]
    fn estimates_can_be_quite_off() {
        // With the default sigma, a non-trivial fraction of estimates are
        // >2x off — matching the paper's observation.
        let est = CardinalityEstimator::default();
        let p = plan();
        let mut rng = stream_rng(3, 0);
        let mut off = 0;
        let n = 1000;
        for _ in 0..n {
            let e = est.estimate(&p, 10.0, &mut rng);
            let ratio = e.estimated_input_gb / 10.0;
            if !(0.5..=2.0).contains(&ratio) {
                off += 1;
            }
        }
        assert!(off > n / 10, "only {off} / {n} estimates were >2x off");
        assert!(off < n, "all estimates off is implausible");
    }

    #[test]
    fn deterministic_given_stream() {
        let est = CardinalityEstimator::default();
        let p = plan();
        let a = est.estimate(&p, 5.0, &mut stream_rng(9, 4));
        let b = est.estimate(&p, 5.0, &mut stream_rng(9, 4));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "input size must be positive")]
    fn rejects_non_positive_input() {
        CardinalityEstimator::default().estimate(&plan(), 0.0, &mut stream_rng(1, 1));
    }
}
