//! SCOPE relational operators.
//!
//! SCOPE compiles a SQL-like script (plus C# UDFs) into an optimized DAG of
//! operators (§3). The paper's feature set includes *per-kind operator
//! counts*, and §6 singles out Index-Lookup, Window, and Range operators as
//! variance-increasing. We model the operator vocabulary as a closed enum so
//! per-kind counts form a fixed-width feature block.

/// The operator vocabulary of our SCOPE-like plans.
///
/// The set covers the kinds the paper names explicitly (Extract, Filter,
/// Index-Lookup, Window, Range) plus the usual relational/dataflow suspects
/// present in SCOPE plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum OperatorKind {
    /// Reads and parses input streams (SCOPE `EXTRACT`).
    Extract = 0,
    /// Row filter on a predicate.
    Filter,
    /// Column projection / computed columns.
    Project,
    /// Hash-based aggregation.
    HashAggregate,
    /// Stream (sort-based) aggregation.
    StreamAggregate,
    /// Hash join.
    HashJoin,
    /// Merge join.
    MergeJoin,
    /// Broadcast join (small build side replicated).
    BroadcastJoin,
    /// Full sort.
    Sort,
    /// Top-N selection.
    TopN,
    /// Data exchange / repartition (shuffle).
    Exchange,
    /// Point lookups against an index — variance-increasing per §6.
    IndexLookup,
    /// Window functions over partitions — variance-increasing per §6.
    Window,
    /// Range partitioning / range scans — variance-increasing per §6.
    Range,
    /// User-defined C# processor (row-wise UDF).
    Process,
    /// User-defined reducer.
    Reduce,
    /// Union of inputs.
    Union,
    /// Writes final output (SCOPE `OUTPUT`).
    Output,
}

impl OperatorKind {
    /// Every operator kind, in discriminant order. The index of a kind in
    /// this array is its feature-column offset.
    pub const ALL: [OperatorKind; 18] = [
        OperatorKind::Extract,
        OperatorKind::Filter,
        OperatorKind::Project,
        OperatorKind::HashAggregate,
        OperatorKind::StreamAggregate,
        OperatorKind::HashJoin,
        OperatorKind::MergeJoin,
        OperatorKind::BroadcastJoin,
        OperatorKind::Sort,
        OperatorKind::TopN,
        OperatorKind::Exchange,
        OperatorKind::IndexLookup,
        OperatorKind::Window,
        OperatorKind::Range,
        OperatorKind::Process,
        OperatorKind::Reduce,
        OperatorKind::Union,
        OperatorKind::Output,
    ];

    /// Number of distinct operator kinds.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable feature-column index of this kind.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short name as it would appear in a plan dump.
    pub fn name(self) -> &'static str {
        match self {
            OperatorKind::Extract => "Extract",
            OperatorKind::Filter => "Filter",
            OperatorKind::Project => "Project",
            OperatorKind::HashAggregate => "HashAggregate",
            OperatorKind::StreamAggregate => "StreamAggregate",
            OperatorKind::HashJoin => "HashJoin",
            OperatorKind::MergeJoin => "MergeJoin",
            OperatorKind::BroadcastJoin => "BroadcastJoin",
            OperatorKind::Sort => "Sort",
            OperatorKind::TopN => "TopN",
            OperatorKind::Exchange => "Exchange",
            OperatorKind::IndexLookup => "IndexLookup",
            OperatorKind::Window => "Window",
            OperatorKind::Range => "Range",
            OperatorKind::Process => "Process",
            OperatorKind::Reduce => "Reduce",
            OperatorKind::Union => "Union",
            OperatorKind::Output => "Output",
        }
    }

    /// Whether §6 of the paper identifies this kind as variance-increasing
    /// (Index-Lookup, Window, Range). The simulator gives vertices dominated
    /// by these operators extra service-time jitter.
    #[inline]
    pub fn is_jittery(self) -> bool {
        matches!(
            self,
            OperatorKind::IndexLookup | OperatorKind::Window | OperatorKind::Range
        )
    }

    /// Relative CPU cost per row processed, used by the simulator to convert
    /// data volume into work. Unitless; Extract = 1.0 is the reference.
    pub fn cost_per_row(self) -> f64 {
        match self {
            OperatorKind::Extract => 1.0,
            OperatorKind::Filter => 0.2,
            OperatorKind::Project => 0.15,
            OperatorKind::HashAggregate => 0.9,
            OperatorKind::StreamAggregate => 0.6,
            OperatorKind::HashJoin => 1.4,
            OperatorKind::MergeJoin => 1.1,
            OperatorKind::BroadcastJoin => 0.8,
            OperatorKind::Sort => 1.6,
            OperatorKind::TopN => 0.5,
            OperatorKind::Exchange => 0.7,
            OperatorKind::IndexLookup => 2.0,
            OperatorKind::Window => 1.8,
            OperatorKind::Range => 1.2,
            OperatorKind::Process => 2.5,
            OperatorKind::Reduce => 1.7,
            OperatorKind::Union => 0.1,
            OperatorKind::Output => 0.6,
        }
    }
}

impl std::fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One operator instance inside a plan, carrying the optimizer's estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct Operator {
    /// What kind of operator this is.
    pub kind: OperatorKind,
    /// Optimizer-estimated output cardinality (rows).
    pub estimated_rows: f64,
    /// Optimizer-estimated cost (arbitrary cost units).
    pub estimated_cost: f64,
}

impl Operator {
    /// Creates an operator with estimates.
    pub fn new(kind: OperatorKind, estimated_rows: f64, estimated_cost: f64) -> Self {
        Self {
            kind,
            estimated_rows,
            estimated_cost,
        }
    }
}

/// Fixed-width per-kind operator count vector (a feature block in §5.1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OperatorCounts {
    counts: [u32; OperatorKind::COUNT],
}

impl OperatorCounts {
    /// Empty (all-zero) counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the count for `kind`.
    #[inline]
    pub fn add(&mut self, kind: OperatorKind) {
        self.counts[kind.index()] += 1;
    }

    /// Count for one kind.
    #[inline]
    pub fn get(&self, kind: OperatorKind) -> u32 {
        self.counts[kind.index()]
    }

    /// Total operators across kinds.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// The raw fixed-width vector, indexable by [`OperatorKind::index`].
    pub fn as_slice(&self) -> &[u32] {
        &self.counts
    }

    /// Number of jitter-prone operators (Index-Lookup + Window + Range).
    pub fn jittery_total(&self) -> u32 {
        OperatorKind::ALL
            .iter()
            .filter(|k| k.is_jittery())
            .map(|k| self.get(*k))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_have_unique_indices() {
        let mut seen = [false; OperatorKind::COUNT];
        for k in OperatorKind::ALL {
            assert!(!seen[k.index()], "duplicate index for {k}");
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn jittery_kinds_match_paper() {
        let jittery: Vec<OperatorKind> = OperatorKind::ALL
            .into_iter()
            .filter(|k| k.is_jittery())
            .collect();
        assert_eq!(
            jittery,
            vec![
                OperatorKind::IndexLookup,
                OperatorKind::Window,
                OperatorKind::Range
            ]
        );
    }

    #[test]
    fn costs_positive() {
        for k in OperatorKind::ALL {
            assert!(k.cost_per_row() > 0.0, "{k} must have positive cost");
        }
    }

    #[test]
    fn counts_accumulate() {
        let mut c = OperatorCounts::new();
        c.add(OperatorKind::Extract);
        c.add(OperatorKind::Extract);
        c.add(OperatorKind::Window);
        assert_eq!(c.get(OperatorKind::Extract), 2);
        assert_eq!(c.get(OperatorKind::Window), 1);
        assert_eq!(c.get(OperatorKind::Sort), 0);
        assert_eq!(c.total(), 3);
        assert_eq!(c.jittery_total(), 1);
    }

    #[test]
    fn display_names_nonempty() {
        for k in OperatorKind::ALL {
            assert!(!k.name().is_empty());
        }
    }
}
