//! Workload archetypes: the variance regimes behind the shape catalog.
//!
//! The paper finds that the runtime distributions of thousands of different
//! job groups collapse onto a *small* catalog of typical shapes (Fig 5):
//! tight unimodal, wider unimodal, bimodal, heavy-tailed, …. Each shape
//! arises from an identifiable causal regime (§3.2, §6): input-size
//! variability, spare-token dependence, machine-load sensitivity, jittery
//! operators, rare service disruptions.
//!
//! Since production telemetry is unavailable, the generator fabricates job
//! templates drawn from the archetypes below; each archetype pins a
//! [`VarianceProfile`] that the simulator's physics then turns into the
//! corresponding distribution shape — the same causal chain the paper
//! observes, run forwards.

/// Knobs describing how a job template's runtime responds to each source of
/// variation from §3.2. All multipliers are relative to a neutral 1.0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarianceProfile {
    /// Log-normal sigma of the per-run input-size multiplier ("intrinsic"
    /// variation; the paper observed inputs varying up to 50× in a group).
    pub input_log_sigma: f64,
    /// Optional second input regime: with probability `.1`, the input is
    /// multiplied by `.0` (produces bimodal runtime distributions).
    pub input_second_mode: Option<(f64, f64)>,
    /// How aggressively the job consumes preemptive spare tokens when the
    /// cluster has them (0 = never, 1 = up to the spare cap). Spare usage
    /// speeds runs up but couples the runtime to unpredictable cluster
    /// conditions, widening the distribution.
    pub spare_affinity: f64,
    /// Multiplier on the probability of rare service disruptions hitting the
    /// job's vertices (heavy tails / outliers).
    pub disruption_sensitivity: f64,
    /// Multiplier on the contention penalty from machine load (noisy
    /// neighbours).
    pub load_sensitivity: f64,
    /// Extra per-vertex service-time jitter from UDFs (Process/Reduce-heavy
    /// plans), on top of the operator-kind jitter.
    pub udf_jitter: f64,
}

impl VarianceProfile {
    /// A neutral profile: modest intrinsic variation, no special couplings.
    pub fn neutral() -> Self {
        Self {
            input_log_sigma: 0.05,
            input_second_mode: None,
            spare_affinity: 0.3,
            disruption_sensitivity: 1.0,
            load_sensitivity: 1.0,
            udf_jitter: 0.0,
        }
    }

    /// Validates that all knobs are in sane ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.input_log_sigma >= 0.0 && self.input_log_sigma.is_finite()) {
            return Err("input_log_sigma must be non-negative and finite".into());
        }
        if let Some((factor, prob)) = self.input_second_mode {
            if factor <= 0.0 || !factor.is_finite() {
                return Err("second-mode factor must be positive".into());
            }
            if !(0.0..=1.0).contains(&prob) {
                return Err("second-mode probability must be in [0, 1]".into());
            }
        }
        if !(0.0..=1.0).contains(&self.spare_affinity) {
            return Err("spare_affinity must be in [0, 1]".into());
        }
        for (name, v) in [
            ("disruption_sensitivity", self.disruption_sensitivity),
            ("load_sensitivity", self.load_sensitivity),
            ("udf_jitter", self.udf_jitter),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("{name} must be non-negative and finite"));
            }
        }
        Ok(())
    }
}

/// The archetype palette the generator samples from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Archetype {
    /// Short, deterministic ETL: tight unimodal ratio distribution.
    StableShort,
    /// Long batch aggregation: tight in ratio terms, moderate delta spread.
    StableLong,
    /// Parameter-driven input regimes: bimodal runtime distribution.
    BimodalInput,
    /// UDF-heavy pipeline prone to occasional disruptions: heavy tail.
    HeavyTailUdf,
    /// Chases spare tokens aggressively: fast when the cluster is idle, slow
    /// when it is busy — wide distribution coupled to spare availability.
    SpareTokenRider,
    /// Submitted at peak hours onto hot machines: load-sensitive skew.
    LoadSensitive,
    /// Index-Lookup / Window / Range heavy plans: persistent jitter (§6).
    JitteryOperators,
    /// Input grows steadily over the collection window: drifting mode.
    DriftingInput,
}

impl Archetype {
    /// Every archetype.
    pub const ALL: [Archetype; 8] = [
        Archetype::StableShort,
        Archetype::StableLong,
        Archetype::BimodalInput,
        Archetype::HeavyTailUdf,
        Archetype::SpareTokenRider,
        Archetype::LoadSensitive,
        Archetype::JitteryOperators,
        Archetype::DriftingInput,
    ];

    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Archetype::StableShort => "StableShort",
            Archetype::StableLong => "StableLong",
            Archetype::BimodalInput => "BimodalInput",
            Archetype::HeavyTailUdf => "HeavyTailUdf",
            Archetype::SpareTokenRider => "SpareTokenRider",
            Archetype::LoadSensitive => "LoadSensitive",
            Archetype::JitteryOperators => "JitteryOperators",
            Archetype::DriftingInput => "DriftingInput",
        }
    }

    /// The variance profile this archetype pins.
    pub fn profile(self) -> VarianceProfile {
        let base = VarianceProfile::neutral();
        match self {
            Archetype::StableShort => VarianceProfile {
                input_log_sigma: 0.02,
                spare_affinity: 0.05,
                disruption_sensitivity: 0.3,
                load_sensitivity: 0.1,
                ..base
            },
            Archetype::StableLong => VarianceProfile {
                input_log_sigma: 0.03,
                spare_affinity: 0.1,
                disruption_sensitivity: 0.5,
                load_sensitivity: 0.15,
                ..base
            },
            Archetype::BimodalInput => VarianceProfile {
                input_log_sigma: 0.04,
                input_second_mode: Some((4.0, 0.3)),
                spare_affinity: 0.2,
                load_sensitivity: 0.3,
                ..base
            },
            Archetype::HeavyTailUdf => VarianceProfile {
                input_log_sigma: 0.10,
                disruption_sensitivity: 6.0,
                udf_jitter: 0.25,
                ..base
            },
            Archetype::SpareTokenRider => VarianceProfile {
                input_log_sigma: 0.06,
                spare_affinity: 0.95,
                disruption_sensitivity: 1.5,
                ..base
            },
            Archetype::LoadSensitive => VarianceProfile {
                input_log_sigma: 0.05,
                load_sensitivity: 3.5,
                spare_affinity: 0.4,
                disruption_sensitivity: 1.5,
                ..base
            },
            Archetype::JitteryOperators => VarianceProfile {
                input_log_sigma: 0.05,
                udf_jitter: 0.12,
                disruption_sensitivity: 1.8,
                load_sensitivity: 1.5,
                ..base
            },
            Archetype::DriftingInput => VarianceProfile {
                input_log_sigma: 0.08,
                spare_affinity: 0.3,
                ..base
            },
        }
    }

    /// Per-run drift rate of the input size (fraction per day); only
    /// [`Archetype::DriftingInput`] drifts.
    pub fn input_drift_per_day(self) -> f64 {
        match self {
            Archetype::DriftingInput => 0.004,
            _ => 0.0,
        }
    }
}

impl std::fmt::Display for Archetype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_valid() {
        for a in Archetype::ALL {
            a.profile().validate().unwrap_or_else(|e| {
                panic!("archetype {a} has invalid profile: {e}");
            });
        }
    }

    #[test]
    fn bimodal_has_second_mode() {
        assert!(Archetype::BimodalInput
            .profile()
            .input_second_mode
            .is_some());
        assert!(Archetype::StableShort.profile().input_second_mode.is_none());
    }

    #[test]
    fn heavy_tail_most_disruption_sensitive() {
        let heavy = Archetype::HeavyTailUdf.profile().disruption_sensitivity;
        for a in Archetype::ALL {
            if a != Archetype::HeavyTailUdf {
                assert!(a.profile().disruption_sensitivity < heavy);
            }
        }
    }

    #[test]
    fn spare_rider_highest_affinity() {
        let rider = Archetype::SpareTokenRider.profile().spare_affinity;
        for a in Archetype::ALL {
            if a != Archetype::SpareTokenRider {
                assert!(a.profile().spare_affinity < rider);
            }
        }
    }

    #[test]
    fn only_drifting_drifts() {
        for a in Archetype::ALL {
            let d = a.input_drift_per_day();
            if a == Archetype::DriftingInput {
                assert!(d > 0.0);
            } else {
                assert_eq!(d, 0.0);
            }
        }
    }

    #[test]
    fn validate_rejects_bad_profiles() {
        let mut p = VarianceProfile::neutral();
        p.spare_affinity = 1.5;
        assert!(p.validate().is_err());
        let mut p = VarianceProfile::neutral();
        p.input_log_sigma = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = VarianceProfile::neutral();
        p.input_second_mode = Some((0.0, 0.5));
        assert!(p.validate().is_err());
        let mut p = VarianceProfile::neutral();
        p.input_second_mode = Some((2.0, 1.5));
        assert!(p.validate().is_err());
    }
}
