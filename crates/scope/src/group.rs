//! Job groups: the unit of recurrence analysis (§3.1).
//!
//! Variation is only meaningful across repeated runs, so the paper assembles
//! job instances into *job groups* keyed by the pair:
//!
//! 1. the **normalized job name** — the submitted name with volatile parts
//!    (submission time, input dataset) stripped; and
//! 2. the **plan signature** — the recursive DAG hash of
//!    [`crate::signature::PlanSignature`], which excludes input parameters.

use crate::signature::PlanSignature;

/// The composite key identifying a recurring job group.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobGroupKey {
    /// Normalized job name (volatile substrings removed).
    pub normalized_name: String,
    /// Recursive hash of the compiled plan DAG.
    pub signature: PlanSignature,
}

impl JobGroupKey {
    /// Creates a key from an already-normalized name and a signature.
    pub fn new(normalized_name: impl Into<String>, signature: PlanSignature) -> Self {
        Self {
            normalized_name: normalized_name.into(),
            signature,
        }
    }

    /// Normalizes a raw submitted job name by stripping volatile decorations,
    /// mirroring the normalization of \[32, 82\] referenced in §3.1:
    ///
    /// * a trailing `@<digits>` submission-timestamp suffix;
    /// * a trailing `#<anything>` input-dataset suffix;
    /// * surrounding whitespace; case is folded to lowercase.
    pub fn normalize_name(raw: &str) -> String {
        let mut s = raw.trim();
        // Strip decorations to a fixpoint so normalization is idempotent
        // (names can carry several layers, e.g. `job@20230101#ds`).
        loop {
            let before = s;
            if let Some(pos) = s.find('#') {
                s = s[..pos].trim_end();
            }
            if let Some(pos) = s.rfind('@') {
                if pos + 1 < s.len() && s[pos + 1..].chars().all(|c| c.is_ascii_digit()) {
                    s = s[..pos].trim_end();
                }
            }
            if s == before {
                break;
            }
        }
        s.to_ascii_lowercase()
    }

    /// Builds a key from a raw job name (normalizing it) and a signature.
    pub fn from_raw(raw_name: &str, signature: PlanSignature) -> Self {
        Self::new(Self::normalize_name(raw_name), signature)
    }
}

impl std::fmt::Display for JobGroupKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.normalized_name, self.signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_timestamp_suffix() {
        assert_eq!(
            JobGroupKey::normalize_name("DailyRevenue@20230401"),
            "dailyrevenue"
        );
    }

    #[test]
    fn strips_dataset_suffix() {
        assert_eq!(
            JobGroupKey::normalize_name("DailyRevenue#/shares/input/2023-04-01.ss"),
            "dailyrevenue"
        );
    }

    #[test]
    fn strips_both_and_whitespace() {
        assert_eq!(
            JobGroupKey::normalize_name("  Daily Revenue@123#ds  "),
            "daily revenue"
        );
    }

    #[test]
    fn keeps_non_numeric_at_suffix() {
        // An '@' followed by non-digits is part of the real name.
        assert_eq!(
            JobGroupKey::normalize_name("team@contoso-pipeline"),
            "team@contoso-pipeline"
        );
    }

    #[test]
    fn same_inputs_same_key() {
        let sig = PlanSignature(42);
        let a = JobGroupKey::from_raw("Job@111", sig);
        let b = JobGroupKey::from_raw("JOB@222", sig);
        assert_eq!(a, b);
    }

    #[test]
    fn different_signature_different_key() {
        let a = JobGroupKey::from_raw("Job", PlanSignature(1));
        let b = JobGroupKey::from_raw("Job", PlanSignature(2));
        assert_ne!(a, b);
    }

    #[test]
    fn display_contains_both_parts() {
        let k = JobGroupKey::from_raw("MyJob@1", PlanSignature(0xabc));
        let s = k.to_string();
        assert!(s.starts_with("myjob:"));
        assert!(s.ends_with("0000000000000abc"));
    }
}
