//! Workload generator: fabricates a recurring-job population.
//!
//! Produces [`JobTemplate`]s spread over the [`Archetype`] palette with
//! plausible plans, names, cadences, and token requests, then realizes
//! [`JobInstance`]s over an observation window. This is the synthetic
//! counterpart of the Cosmos production workload (substitution documented in
//! DESIGN.md): job groups recur with different frequencies (hourly … daily,
//! Fig 1), input sizes vary within groups (§3.2), and users over-allocate
//! tokens (§5.1, \[63\]).

use rand::rngs::SmallRng;
use rand::Rng;

use crate::archetype::Archetype;
use crate::job::{
    sample_standard_normal, stream_rng, JobInstance, JobTemplate, SubmissionSchedule,
};
use crate::operator::{Operator, OperatorKind};
use crate::plan::{Plan, PlanBuilder};
use crate::signature::PlanSignature;

/// Configuration of the synthetic workload.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of recurring job templates (job groups) to fabricate.
    pub n_templates: usize,
    /// Master seed; all randomness in the generator derives from it.
    pub seed: u64,
    /// Relative weights over [`Archetype::ALL`]; need not sum to 1.
    pub archetype_weights: [f64; 8],
    /// Median of the log-normal base-input-size distribution, GB.
    pub median_input_gb: f64,
    /// Log-sigma of the base-input-size distribution across templates.
    pub input_log_sigma: f64,
    /// Mean multiplicative over-allocation of tokens vs. what the job can
    /// actually use (users over-allocate, \[63\]); 1.0 = exact.
    pub overallocation: f64,
    /// Fraction of templates that are *new* jobs: they start submitting
    /// late in the campaign and therefore have little or no long-interval
    /// history (the low-occurrence groups of Fig 7b).
    pub late_start_fraction: f64,
    /// Whether lever-sensitive templates get a *twin* group: an identical
    /// plan and size submitted under the opposite condition (off-peak vs
    /// peak, new-SKU pool vs legacy pool). Production populations contain
    /// such near-duplicates at scale; they are what lets a model separate
    /// the causal levers (spare usage, utilization, SKU mix) from
    /// group-identity proxies — and hence what gives the §7 what-if
    /// scenarios their bite.
    pub twins: bool,
    /// Campaign length hint used to place late starters (days).
    pub window_days_hint: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            n_templates: 200,
            seed: 0x5ca1_ab1e,
            archetype_weights: [2.0, 1.5, 1.0, 1.0, 1.0, 1.0, 1.0, 0.8],
            median_input_gb: 50.0,
            input_log_sigma: 1.2,
            overallocation: 1.5,
            late_start_fraction: 0.05,
            window_days_hint: 28.0,
            twins: true,
        }
    }
}

/// Generates job templates and realizes their instances.
#[derive(Debug)]
pub struct WorkloadGenerator {
    config: GeneratorConfig,
    templates: Vec<JobTemplate>,
}

impl WorkloadGenerator {
    /// Builds the template population deterministically from the config.
    pub fn new(config: GeneratorConfig) -> Self {
        assert!(config.n_templates > 0, "need at least one template");
        assert!(
            config.archetype_weights.iter().all(|&w| w >= 0.0)
                && config.archetype_weights.iter().sum::<f64>() > 0.0,
            "archetype weights must be non-negative and not all zero"
        );
        let mut templates = Vec::with_capacity(config.n_templates * 2);
        for id in 0..config.n_templates {
            let mut rng = stream_rng(config.seed, 0x7e00_0000 + id as u64);
            let archetype = pick_archetype(&config.archetype_weights, &mut rng);
            templates.push(make_template(id as u32, archetype, &config, &mut rng));
        }
        if config.twins {
            let mut next_id = templates.len() as u32;
            let mut twin_templates = Vec::new();
            for t in &templates {
                if let Some(twin) = make_twin(t, next_id) {
                    twin_templates.push(twin);
                    next_id += 1;
                }
            }
            templates.extend(twin_templates);
        }
        Self { config, templates }
    }

    /// The generated templates.
    pub fn templates(&self) -> &[JobTemplate] {
        &self.templates
    }

    /// The template with id `id`, or `None` when no such template exists —
    /// e.g. an instance record deserialized from a stale artifact whose
    /// generator had more templates. The id/index invariant is re-checked
    /// so a template is never returned under the wrong id.
    pub fn template(&self, id: u32) -> Option<&JobTemplate> {
        self.templates.get(id as usize).filter(|t| t.id == id)
    }

    /// The configuration used.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Realizes every template's instances within `[0, window_s)` seconds,
    /// sampling submission jitter and input sizes. Instances are returned
    /// sorted by submission time (the order a cluster would see them).
    pub fn instances_within(&self, window_s: f64) -> Vec<JobInstance> {
        let mut out = Vec::new();
        for t in &self.templates {
            let mut rng = stream_rng(self.config.seed, 0x1a50_0000 + t.id as u64);
            let times = t.schedule.submissions_within(window_s, &mut rng);
            for (seq, &submit_time_s) in times.iter().enumerate() {
                let input_gb = t.sample_input_gb(submit_time_s, &mut rng);
                out.push(JobInstance {
                    template_id: t.id,
                    seq: seq as u32,
                    submit_time_s,
                    input_gb,
                });
            }
        }
        out.sort_by(|a, b| {
            a.submit_time_s
                .partial_cmp(&b.submit_time_s)
                .expect("times are finite")
        });
        out
    }
}

fn pick_archetype(weights: &[f64; 8], rng: &mut SmallRng) -> Archetype {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return Archetype::ALL[i];
        }
        x -= w;
    }
    Archetype::ALL[7]
}

fn make_template(
    id: u32,
    archetype: Archetype,
    config: &GeneratorConfig,
    rng: &mut SmallRng,
) -> JobTemplate {
    let plan = make_plan(archetype, rng);
    let signature = PlanSignature::of(&plan);
    // Base input: log-normal across templates; long-running archetypes skew
    // larger so the population spans seconds-to-hours like the paper's.
    let scale = match archetype {
        Archetype::StableShort => 0.15,
        Archetype::StableLong => 6.0,
        Archetype::HeavyTailUdf => 2.0,
        _ => 1.0,
    };
    let z = sample_standard_normal(rng);
    let base_input_gb =
        (config.median_input_gb * scale * (config.input_log_sigma * z).exp()).max(0.05);

    // Token request: roughly proportional to the work, then over-allocated.
    let usable = (base_input_gb.sqrt() * 6.0).clamp(4.0, 600.0);
    let over = config.overallocation * rng.gen_range(0.8..1.4);
    let allocated_tokens = (usable * over).round().max(1.0) as u32;

    let mut schedule = match archetype {
        // Load-sensitive pipelines are business-hours jobs: they submit at
        // the diurnal peak (~noon), so their instances systematically see
        // hot machines — the causal chain behind §7.3.
        Archetype::LoadSensitive => SubmissionSchedule {
            period_s: 86_400.0,
            jitter_s: 1_800.0,
            phase_s: 43_200.0 + rng.gen_range(-3_600.0..3_600.0),
        },
        // Spare-token riders are overnight batch jobs: they submit at the
        // trough, when idle capacity (spare tokens) is plentiful (§7.1).
        Archetype::SpareTokenRider => SubmissionSchedule {
            period_s: 86_400.0,
            jitter_s: 1_800.0,
            phase_s: rng.gen_range(0.0..7_200.0),
        },
        _ => match rng.gen_range(0..4u8) {
            0 => SubmissionSchedule::hourly(),
            1 => SubmissionSchedule {
                period_s: 6.0 * 3600.0,
                jitter_s: 300.0,
                phase_s: rng.gen_range(0.0..3600.0),
            },
            2 => SubmissionSchedule {
                period_s: 12.0 * 3600.0,
                jitter_s: 300.0,
                phase_s: rng.gen_range(0.0..3600.0),
            },
            _ => SubmissionSchedule::daily(),
        },
    };
    // New jobs: first submission lands late in the campaign, so the group
    // accumulates only a handful of occurrences and no long history.
    if rng.gen_bool(config.late_start_fraction.clamp(0.0, 1.0)) {
        schedule.phase_s += rng.gen_range(0.55..0.97) * config.window_days_hint * 86_400.0;
    }

    // Data-locality pinning: a fraction of jobs (more often the jittery /
    // heavy legacy pipelines) are pinned near their data on a specific
    // generation pool — the §7.2 lever.
    let sku_affinity = if rng.gen_bool(0.4) {
        // Indices into the fleet's generation list (0 = oldest). Legacy
        // pools dominate.
        let weights = [0.20, 0.30, 0.20, 0.10, 0.10, 0.10];
        let mut x: f64 = rng.gen_range(0.0..1.0);
        let mut idx = 0;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                idx = i;
                break;
            }
            x -= w;
            idx = i;
        }
        Some(idx)
    } else {
        None
    };

    JobTemplate {
        id,
        raw_name: format!("{}-{:04}@20230101", archetype.name(), id),
        plan,
        signature,
        archetype,
        base_input_gb,
        allocated_tokens,
        schedule,
        sku_affinity,
    }
}

/// Builds the counterfactual twin of a lever-sensitive template: the same
/// plan, size, and allocation submitted under the opposite condition. Twins
/// share everything *except* the lever, so the trained model can only
/// separate them through the causal feature the §7 scenarios manipulate.
fn make_twin(t: &JobTemplate, id: u32) -> Option<JobTemplate> {
    let mut twin = t.clone();
    twin.id = id;
    // Insert the twin marker before the submission-date decoration so the
    // normalized name stays tidy ("stableshort-0006-twin").
    twin.raw_name = match t.raw_name.find('@') {
        Some(pos) => format!("{}-twin{}", &t.raw_name[..pos], &t.raw_name[pos..]),
        None => format!("{}-twin", t.raw_name),
    };
    match t.archetype {
        // Peak-hour job re-scheduled overnight: low, steady load exposure.
        Archetype::LoadSensitive => {
            twin.schedule.phase_s = (t.schedule.phase_s - 43_200.0).rem_euclid(86_400.0);
        }
        // Overnight spare rider re-scheduled to the peak: no spare tokens
        // to grab there.
        Archetype::SpareTokenRider => {
            twin.schedule.phase_s = (t.schedule.phase_s + 43_200.0).rem_euclid(86_400.0);
        }
        _ => {
            // Legacy-pool-pinned jobs get a twin migrated to the newest
            // refresh pool (generation index 4 = Gen5.2 in the default
            // fleet).
            match t.sku_affinity {
                Some(idx) if idx <= 1 => twin.sku_affinity = Some(4),
                _ => return None,
            }
        }
    }
    Some(twin)
}

/// Builds a random plan whose operator mix reflects the archetype.
fn make_plan(archetype: Archetype, rng: &mut SmallRng) -> Plan {
    let mut b = PlanBuilder::new();
    let n_extracts = rng.gen_range(1..=3usize);
    // Vertex counts are large relative to token allocations, so execution
    // is typically token-limited: parallelism (and spare tokens) then have
    // real causal effect on runtimes, as on Cosmos.
    let mut frontier: Vec<usize> = (0..n_extracts)
        .map(|_| {
            b.stage(
                vec![Operator::new(OperatorKind::Extract, 1e6, 10.0)],
                rng.gen_range(30..120),
                vec![],
            )
        })
        .collect();

    // Middle stages: archetype-flavoured operator palette.
    let palette: &[OperatorKind] = match archetype {
        Archetype::HeavyTailUdf => &[
            OperatorKind::Process,
            OperatorKind::Reduce,
            OperatorKind::Filter,
            OperatorKind::Exchange,
            OperatorKind::HashAggregate,
        ],
        Archetype::JitteryOperators => &[
            OperatorKind::IndexLookup,
            OperatorKind::Window,
            OperatorKind::Range,
            OperatorKind::Filter,
            OperatorKind::Exchange,
        ],
        Archetype::StableShort => &[
            OperatorKind::Filter,
            OperatorKind::Project,
            OperatorKind::TopN,
        ],
        Archetype::StableLong => &[
            OperatorKind::HashAggregate,
            OperatorKind::Sort,
            OperatorKind::Exchange,
            OperatorKind::Project,
        ],
        _ => &[
            OperatorKind::Filter,
            OperatorKind::Project,
            OperatorKind::HashJoin,
            OperatorKind::HashAggregate,
            OperatorKind::Exchange,
            OperatorKind::Sort,
            OperatorKind::StreamAggregate,
            OperatorKind::Union,
        ],
    };

    let n_middle = rng.gen_range(2..=6usize);
    for m in 0..n_middle {
        let n_ops = rng.gen_range(1..=3usize);
        let mut ops: Vec<Operator> = (0..n_ops)
            .map(|_| {
                let kind = palette[rng.gen_range(0..palette.len())];
                Operator::new(kind, 1e5, 5.0)
            })
            .collect();
        // The jittery archetype is *defined* by its §6 operators; guarantee
        // at least one lands in the plan regardless of palette sampling.
        if m == 0 && archetype == Archetype::JitteryOperators {
            ops[0] = Operator::new(OperatorKind::IndexLookup, 1e5, 5.0);
        }
        // Consume 1..=2 frontier stages (joins consume two).
        let n_in = if frontier.len() >= 2 && rng.gen_bool(0.3) {
            2
        } else {
            1
        };
        let mut inputs = Vec::with_capacity(n_in);
        for _ in 0..n_in {
            let i = rng.gen_range(0..frontier.len());
            inputs.push(frontier.swap_remove(i));
        }
        let idx = b.stage(ops, rng.gen_range(16..80), inputs);
        frontier.push(idx);
    }

    // Single output stage consuming whatever remains.
    let inputs = std::mem::take(&mut frontier);
    b.stage(
        vec![Operator::new(OperatorKind::Output, 1e4, 2.0)],
        rng.gen_range(1..4),
        inputs,
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn generator(n: usize, seed: u64) -> WorkloadGenerator {
        WorkloadGenerator::new(GeneratorConfig {
            n_templates: n,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn generates_requested_template_count_plus_twins() {
        let g = generator(50, 1);
        // 50 primaries plus one twin per lever-sensitive template.
        assert!(g.templates().len() >= 50);
        let twins = g
            .templates()
            .iter()
            .filter(|t| t.raw_name.contains("-twin"))
            .count();
        assert_eq!(g.templates().len(), 50 + twins);
        assert!(
            twins > 5,
            "expected a meaningful twin population, got {twins}"
        );
        // Ids stay dense and unique.
        for (i, t) in g.templates().iter().enumerate() {
            assert_eq!(t.id as usize, i);
        }
    }

    #[test]
    fn template_lookup_validates_id() {
        let g = generator(20, 3);
        for t in g.templates() {
            let found = g.template(t.id).expect("every generated id resolves");
            assert_eq!(found.id, t.id);
        }
        assert!(
            g.template(g.templates().len() as u32).is_none(),
            "out-of-range id must be None, not a panic"
        );
        assert!(g.template(u32::MAX).is_none());
    }

    #[test]
    fn twins_share_plan_but_not_group() {
        let g = generator(80, 2);
        for twin in g
            .templates()
            .iter()
            .filter(|t| t.raw_name.contains("-twin"))
        {
            let base_name = twin.raw_name.replace("-twin", "");
            let primary = g
                .templates()
                .iter()
                .find(|t| t.raw_name == base_name)
                .expect("twin has a primary");
            assert_eq!(primary.signature, twin.signature, "same plan");
            assert_eq!(primary.base_input_gb, twin.base_input_gb);
            assert_eq!(primary.allocated_tokens, twin.allocated_tokens);
            assert_ne!(primary.group_key(), twin.group_key(), "distinct groups");
            // The twin differs in exactly one lever.
            let lever_differs = primary.schedule.phase_s != twin.schedule.phase_s
                || primary.sku_affinity != twin.sku_affinity;
            assert!(lever_differs);
        }
    }

    #[test]
    fn twins_can_be_disabled() {
        let cfg = GeneratorConfig {
            n_templates: 40,
            twins: false,
            ..Default::default()
        };
        let g = WorkloadGenerator::new(cfg);
        assert_eq!(g.templates().len(), 40);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generator(30, 99);
        let b = generator(30, 99);
        for (ta, tb) in a.templates().iter().zip(b.templates()) {
            assert_eq!(ta.signature, tb.signature);
            assert_eq!(ta.base_input_gb, tb.base_input_gb);
            assert_eq!(ta.allocated_tokens, tb.allocated_tokens);
        }
        let ia = a.instances_within(86_400.0);
        let ib = b.instances_within(86_400.0);
        assert_eq!(ia, ib);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generator(30, 1);
        let b = generator(30, 2);
        let same = a
            .templates()
            .iter()
            .zip(b.templates())
            .filter(|(x, y)| x.base_input_gb == y.base_input_gb)
            .count();
        assert!(same < 5);
    }

    #[test]
    fn covers_multiple_archetypes() {
        let g = generator(200, 3);
        let kinds: HashSet<Archetype> = g.templates().iter().map(|t| t.archetype).collect();
        assert!(kinds.len() >= 6, "only {} archetypes present", kinds.len());
    }

    #[test]
    fn zero_weight_excludes_archetype() {
        let mut cfg = GeneratorConfig {
            n_templates: 100,
            ..Default::default()
        };
        cfg.archetype_weights = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let g = WorkloadGenerator::new(cfg);
        assert!(g
            .templates()
            .iter()
            .all(|t| t.archetype == Archetype::StableShort));
    }

    #[test]
    fn instances_sorted_and_grouped() {
        let g = generator(20, 7);
        let instances = g.instances_within(2.0 * 86_400.0);
        assert!(!instances.is_empty());
        for w in instances.windows(2) {
            assert!(w[0].submit_time_s <= w[1].submit_time_s);
        }
        // Hourly templates should recur ~48 times over two days.
        let mut per_template: HashMap<u32, usize> = HashMap::new();
        for i in &instances {
            *per_template.entry(i.template_id).or_default() += 1;
        }
        let max = per_template.values().copied().max().unwrap();
        assert!(max >= 40, "max recurrences {max}");
    }

    #[test]
    fn tokens_overallocated_relative_to_usable() {
        let g = generator(100, 5);
        // On average the allocation should exceed sqrt(input)*6 (the usable
        // level) by roughly the configured overallocation factor.
        let mut ratio_sum = 0.0;
        for t in g.templates() {
            let usable = (t.base_input_gb.sqrt() * 6.0).clamp(4.0, 600.0);
            ratio_sum += t.allocated_tokens as f64 / usable;
        }
        let mean_ratio = ratio_sum / g.templates().len() as f64;
        assert!(mean_ratio > 1.2, "mean over-allocation {mean_ratio}");
    }

    #[test]
    fn jittery_archetype_has_jittery_plans() {
        let mut cfg = GeneratorConfig {
            n_templates: 20,
            ..Default::default()
        };
        cfg.archetype_weights = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0];
        let g = WorkloadGenerator::new(cfg);
        for t in g.templates() {
            assert_eq!(t.archetype, Archetype::JitteryOperators);
            assert!(
                t.plan.operator_counts().jittery_total() > 0,
                "jittery template without jittery operators"
            );
        }
    }

    #[test]
    fn plans_have_valid_structure() {
        let g = generator(50, 11);
        for t in g.templates() {
            assert!(t.plan.n_stages() >= 3);
            assert!(t.plan.critical_path_len() >= 2);
            assert!(t.plan.total_base_vertices() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "need at least one template")]
    fn rejects_empty_population() {
        generator(0, 1);
    }
}
