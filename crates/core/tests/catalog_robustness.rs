//! The catalog parser must reject — never panic on — arbitrary input.

use proptest::prelude::*;

use rv_core::persist::read_catalog;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn read_catalog_never_panics(input in "\\PC{0,400}") {
        let _ = read_catalog(std::io::BufReader::new(input.as_bytes()));
    }

    #[test]
    fn read_catalog_never_panics_on_recordish_noise(
        records in prop::collection::vec(
            ("(catalog|stats|pmf|junk)", prop::collection::vec("[-0-9a-zA-Z.]{0,8}", 0..10)),
            0..12,
        )
    ) {
        let text: String = records
            .iter()
            .map(|(kind, fields)| {
                let mut parts = vec![kind.clone()];
                parts.extend(fields.iter().cloned());
                parts.join(",")
            })
            .collect::<Vec<_>>()
            .join("\n");
        let _ = read_catalog(std::io::BufReader::new(text.as_bytes()));
    }
}
