//! Clustering analysis: from raw telemetry to the shape catalog (§4.2).
//!
//! Pipeline, exactly as the paper describes it:
//!
//! 1. take every job group in the characterization dataset (D1, support ≥20);
//! 2. normalize each group's runtimes against its historic median (computed
//!    from the group's own D1 observations — D1 *is* the history);
//! 3. histogram into the shared 200-bin grid with outlier-absorbing edges;
//! 4. smooth each PMF so adjacent bins share affinity;
//! 5. k-means-cluster the smoothed PMF vectors (k chosen by the inertia
//!    elbow, 8 in the paper);
//! 6. compute Table 2 statistics from the pooled normalized samples of each
//!    cluster's member groups, and rank clusters by IQR.

use std::collections::BTreeMap;

use rv_cluster::{kmeans, KMeansConfig};
use rv_scope::JobGroupKey;
use rv_stats::{
    median, normalize_all, smooth_pmf, BinSpec, Histogram, Normalization, Pmf, SmoothingKernel,
};
use rv_telemetry::TelemetryStore;

use crate::shapes::{ShapeCatalog, ShapeStats};

/// Configuration of the characterization step.
#[derive(Debug, Clone, Copy)]
pub struct CharacterizeConfig {
    /// Which normalization to characterize.
    pub normalization: Normalization,
    /// Number of clusters (the paper settles on 8 via the elbow).
    pub k: usize,
    /// Number of histogram bins (the paper evaluates 50/100/200/500 and
    /// picks 200). The bin *range* follows the normalization's footnote-3
    /// thresholds.
    pub n_bins: usize,
    /// PMF smoothing kernel.
    pub smoothing: SmoothingKernel,
    /// Minimum observations for a group to participate (the paper uses
    /// >20 for D1).
    pub min_support: usize,
    /// Seed for k-means restarts.
    pub seed: u64,
}

impl CharacterizeConfig {
    /// The paper's configuration for a normalization policy.
    pub fn paper(normalization: Normalization) -> Self {
        Self {
            normalization,
            k: 8,
            n_bins: 200,
            smoothing: SmoothingKernel::Gaussian { sigma_bins: 2.0 },
            min_support: 20,
            seed: 0xcafe,
        }
    }

    /// The bin grid implied by the normalization and bin count (footnote 3).
    pub fn bin_spec(&self) -> BinSpec {
        match self.normalization {
            Normalization::Ratio => BinSpec::new(0.0, 10.0, self.n_bins),
            Normalization::Delta => BinSpec::new(-900.0, 900.0, self.n_bins),
        }
    }
}

/// Intermediate product: each participating group's smoothed PMF and raw
/// normalized samples.
#[derive(Debug, Clone)]
pub struct GroupDistributions {
    /// The bin grid shared by all PMFs.
    pub spec: BinSpec,
    /// Group keys in deterministic order.
    pub keys: Vec<JobGroupKey>,
    /// Smoothed PMF per group (parallel to `keys`).
    pub pmfs: Vec<Pmf>,
    /// Normalized runtime samples per group (parallel to `keys`).
    pub samples: Vec<Vec<f64>>,
}

/// Computes normalized-runtime distributions for every group in `store`
/// with at least `config.min_support` observations.
pub fn group_distributions(
    store: &TelemetryStore,
    config: &CharacterizeConfig,
) -> GroupDistributions {
    let spec = config.bin_spec();
    let mut keys = Vec::new();
    let mut pmfs = Vec::new();
    let mut samples = Vec::new();
    for key in store.group_keys() {
        let runtimes = store.group_runtimes(key);
        if runtimes.len() < config.min_support {
            continue;
        }
        let hist_median = median(&runtimes).expect("non-empty group");
        let normalized = normalize_all(config.normalization, &runtimes, hist_median);
        let pmf = Histogram::from_samples(spec, normalized.iter().copied()).to_pmf();
        keys.push(key.clone());
        pmfs.push(smooth_pmf(&pmf, config.smoothing));
        samples.push(normalized);
    }
    GroupDistributions {
        spec,
        keys,
        pmfs,
        samples,
    }
}

/// The characterization outcome: the catalog plus each participating
/// group's k-means cluster membership (in catalog-rank order).
#[derive(Debug, Clone)]
pub struct Characterization {
    /// The shape catalog (IQR-ranked).
    pub catalog: ShapeCatalog,
    /// Shape id per participating group.
    pub memberships: BTreeMap<JobGroupKey, usize>,
    /// k-means inertia of the final clustering.
    pub inertia: f64,
}

/// Runs the full §4.2 clustering analysis over `store`.
///
/// # Panics
/// Panics if fewer than `config.k` groups meet the support threshold.
pub fn characterize(store: &TelemetryStore, config: &CharacterizeConfig) -> Characterization {
    let dists = group_distributions(store, config);
    assert!(
        dists.keys.len() >= config.k,
        "only {} groups with support >= {}, need at least k = {}",
        dists.keys.len(),
        config.min_support,
        config.k
    );
    let vectors: Vec<Vec<f64>> = dists.pmfs.iter().map(|p| p.probs().to_vec()).collect();
    let km = kmeans(
        &vectors,
        &KMeansConfig {
            k: config.k,
            seed: config.seed,
            ..Default::default()
        },
    );

    // Pool normalized samples per cluster for Table 2 statistics, and build
    // the reference PMF from the pooled samples (smoothed), which is better
    // estimated than the centroid for small clusters.
    let mut pooled: Vec<Vec<f64>> = vec![Vec::new(); config.k];
    let mut n_groups = vec![0usize; config.k];
    for (g, &c) in km.assignments.iter().enumerate() {
        pooled[c].extend_from_slice(&dists.samples[g]);
        n_groups[c] += 1;
    }
    let mut pmfs = Vec::with_capacity(config.k);
    let mut stats = Vec::with_capacity(config.k);
    for c in 0..config.k {
        let (pmf, stat) = if pooled[c].is_empty() {
            // An empty cluster (extremely rare with k-means++): keep a
            // uniform placeholder so indices stay dense.
            (
                Histogram::new(dists.spec).to_pmf(),
                ShapeStats {
                    outlier_prob: 0.0,
                    p25: 0.0,
                    p75: 0.0,
                    p95: 0.0,
                    std: 0.0,
                    n_groups: 0,
                    n_instances: 0,
                },
            )
        } else {
            let pmf = Histogram::from_samples(dists.spec, pooled[c].iter().copied()).to_pmf();
            let stat = ShapeStats::from_samples(&pooled[c], &dists.spec, n_groups[c])
                .expect("pooled samples non-empty");
            (smooth_pmf(&pmf, config.smoothing), stat)
        };
        pmfs.push(pmf);
        stats.push(stat);
    }

    // Rank order mapping: catalog sorts by IQR; recover the permutation to
    // relabel group memberships accordingly.
    let mut order: Vec<usize> = (0..config.k).collect();
    order.sort_by(|&a, &b| {
        stats[a]
            .iqr()
            .partial_cmp(&stats[b].iqr())
            .expect("finite IQRs")
            .then(a.cmp(&b))
    });
    let mut rank_of = vec![0usize; config.k];
    for (rank, &orig) in order.iter().enumerate() {
        rank_of[orig] = rank;
    }

    let catalog = ShapeCatalog::new(config.normalization, dists.spec, pmfs, stats);
    let memberships: BTreeMap<JobGroupKey, usize> = dists
        .keys
        .iter()
        .zip(&km.assignments)
        .map(|(k, &c)| (k.clone(), rank_of[c]))
        .collect();

    Characterization {
        catalog,
        memberships,
        inertia: km.inertia,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_scope::PlanSignature;
    use rv_telemetry::JobTelemetry;

    /// Builds a store with `n_groups` groups of two families: tight groups
    /// (runtimes ~100±1) and wide groups (runtimes 50..200).
    fn synthetic_store(n_tight: usize, n_wide: usize, runs: usize) -> TelemetryStore {
        let mut store = TelemetryStore::new();
        let mut push = |name: String, seq: u32, runtime: f64| {
            store.push(JobTelemetry {
                group: JobGroupKey::new(name, PlanSignature(1)),
                template_id: 0,
                seq,
                submit_time_s: seq as f64,
                runtime_s: runtime,
                disrupted: false,
                operator_counts: vec![0; 18],
                n_stages: 1,
                critical_path: 1,
                total_base_vertices: 1,
                estimated_rows: 1.0,
                estimated_cost: 1.0,
                estimated_input_gb: 1.0,
                data_read_gb: 1.0,
                temp_data_gb: 0.1,
                total_vertices: 1,
                allocated_tokens: 1,
                token_min: 1,
                token_max: 1,
                token_avg: 1.0,
                spare_avg: 0.0,
                spare_preempted: false,
                cpu_seconds: 10.0,
                peak_memory_gb: 0.5,
                sku_fractions: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                sku_vertex_counts: [1, 0, 0, 0, 0, 0],
                sku_util_mean: [0.5; 6],
                sku_util_std: [0.1; 6],
                cluster_load: 0.5,
                spare_fraction: 0.2,
            });
        };
        for g in 0..n_tight {
            for s in 0..runs {
                let jitter = ((s * 7919 + g * 104729) % 100) as f64 / 50.0 - 1.0;
                push(format!("tight-{g}"), s as u32, 100.0 + jitter);
            }
        }
        for g in 0..n_wide {
            for s in 0..runs {
                let spread = ((s * 6271 + g * 31337) % 100) as f64 * 1.5 + 50.0;
                push(format!("wide-{g}"), s as u32, spread);
            }
        }
        store
    }

    fn config(k: usize) -> CharacterizeConfig {
        CharacterizeConfig {
            k,
            min_support: 20,
            ..CharacterizeConfig::paper(Normalization::Ratio)
        }
    }

    #[test]
    fn distributions_respect_support() {
        let store = synthetic_store(5, 5, 25);
        let d = group_distributions(&store, &config(2));
        assert_eq!(d.keys.len(), 10);
        let short = synthetic_store(5, 5, 10); // below support
        let d2 = group_distributions(&short, &config(2));
        assert!(d2.keys.is_empty());
    }

    #[test]
    fn separates_tight_from_wide() {
        let store = synthetic_store(8, 8, 40);
        let ch = characterize(&store, &config(2));
        assert_eq!(ch.catalog.n_shapes(), 2);
        // Shape 0 (smaller IQR) should hold the tight groups.
        for (key, &shape) in &ch.memberships {
            let expected = usize::from(!key.normalized_name.starts_with("tight"));
            assert_eq!(shape, expected, "group {key}");
        }
        assert!(ch.catalog.stats(0).iqr() < ch.catalog.stats(1).iqr());
    }

    #[test]
    fn ratio_catalog_centers_near_one() {
        let store = synthetic_store(8, 0, 40);
        let ch = characterize(&store, &config(1));
        let pmf = ch.catalog.pmf(0);
        // Mass concentrated around ratio 1.0.
        let m = pmf.mean();
        assert!((m - 1.0).abs() < 0.1, "mean ratio {m}");
    }

    #[test]
    fn delta_normalization_works_too() {
        let store = synthetic_store(6, 6, 30);
        let cfg = CharacterizeConfig {
            k: 2,
            min_support: 20,
            ..CharacterizeConfig::paper(Normalization::Delta)
        };
        let ch = characterize(&store, &cfg);
        assert_eq!(ch.catalog.normalization, Normalization::Delta);
        assert!(ch.catalog.stats(0).iqr() <= ch.catalog.stats(1).iqr());
    }

    #[test]
    fn deterministic() {
        let store = synthetic_store(6, 6, 30);
        let a = characterize(&store, &config(3));
        let b = characterize(&store, &config(3));
        assert_eq!(a.memberships, b.memberships);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    #[should_panic(expected = "need at least k")]
    fn too_few_groups_panics() {
        let store = synthetic_store(2, 0, 30);
        characterize(&store, &config(8));
    }
}
