//! The shape catalog: typical runtime distributions and their statistics.
//!
//! A [`ShapeCatalog`] is the output of the clustering analysis (Fig 5): `K`
//! reference PMFs over the shared normalized-runtime bin grid, one per
//! cluster, plus the Table 2 statistics (outlier probability, 25–75th
//! percentile gap, 95th percentile, standard deviation) computed from the
//! pooled normalized samples of each cluster's member groups. Clusters are
//! ranked by their interquartile gap, matching the paper's presentation.

use rand::rngs::SmallRng;
use rand::Rng;

use rv_stats::{BinSpec, Normalization, Pmf, Summary};

/// Table 2 statistics for one shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeStats {
    /// Probability mass in the upper outlier bin (≥10× the median for
    /// Ratio, ≥900 s over the median for Delta).
    pub outlier_prob: f64,
    /// 25th percentile of the normalized runtime.
    pub p25: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Standard deviation.
    pub std: f64,
    /// Number of job groups assigned to this shape during characterization.
    pub n_groups: usize,
    /// Number of job instances pooled into the statistics.
    pub n_instances: usize,
}

impl ShapeStats {
    /// The 25–75th percentile gap the paper ranks clusters by.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }

    /// Computes stats from pooled normalized samples.
    pub fn from_samples(samples: &[f64], spec: &BinSpec, n_groups: usize) -> Option<Self> {
        let summary = Summary::compute(samples)?;
        let outliers = samples
            .iter()
            .filter(|&&v| v.is_nan() || v >= spec.hi)
            .count();
        Some(Self {
            outlier_prob: outliers as f64 / samples.len() as f64,
            p25: summary.p25,
            p75: summary.p75,
            p95: summary.p95,
            std: summary.std_dev,
            n_groups,
            n_instances: samples.len(),
        })
    }
}

/// A catalog of typical normalized-runtime distribution shapes.
#[derive(Debug, Clone)]
pub struct ShapeCatalog {
    /// Which normalization the catalog describes.
    pub normalization: Normalization,
    /// The shared histogram grid.
    pub spec: BinSpec,
    /// Reference PMFs, one per shape, ranked by IQR ascending.
    pmfs: Vec<Pmf>,
    /// Table 2 statistics per shape (same order as `pmfs`).
    stats: Vec<ShapeStats>,
}

impl ShapeCatalog {
    /// Builds a catalog from per-shape PMFs and statistics; shapes are
    /// re-ranked by IQR ascending (the paper's cluster ordering).
    ///
    /// # Panics
    /// Panics if lengths disagree, the catalog is empty, or any PMF uses a
    /// different bin spec.
    pub fn new(
        normalization: Normalization,
        spec: BinSpec,
        pmfs: Vec<Pmf>,
        stats: Vec<ShapeStats>,
    ) -> Self {
        assert_eq!(pmfs.len(), stats.len(), "pmf/stat count mismatch");
        assert!(!pmfs.is_empty(), "catalog must have at least one shape");
        assert!(
            pmfs.iter().all(|p| p.spec() == spec),
            "all shape PMFs must share the catalog bin spec"
        );
        let mut order: Vec<usize> = (0..pmfs.len()).collect();
        order.sort_by(|&a, &b| {
            stats[a]
                .iqr()
                .partial_cmp(&stats[b].iqr())
                .expect("finite IQRs")
                .then(a.cmp(&b))
        });
        let pmfs = order.iter().map(|&i| pmfs[i].clone()).collect();
        let stats = order.iter().map(|&i| stats[i]).collect();
        Self {
            normalization,
            spec,
            pmfs,
            stats,
        }
    }

    /// Number of shapes (the paper's `K = 8`).
    pub fn n_shapes(&self) -> usize {
        self.pmfs.len()
    }

    /// Reference PMF of shape `i`.
    pub fn pmf(&self, i: usize) -> &Pmf {
        &self.pmfs[i]
    }

    /// All reference PMFs, IQR-ranked.
    pub fn pmfs(&self) -> &[Pmf] {
        &self.pmfs
    }

    /// Statistics of shape `i`.
    pub fn stats(&self, i: usize) -> &ShapeStats {
        &self.stats[i]
    }

    /// All statistics, IQR-ranked.
    pub fn all_stats(&self) -> &[ShapeStats] {
        &self.stats
    }

    /// Samples a normalized runtime from shape `i` (bin sampled by PMF
    /// weight, position uniform within the bin). Used to materialize
    /// predicted runtime distributions for the Fig 8 comparison.
    pub fn sample_normalized(&self, i: usize, rng: &mut SmallRng) -> f64 {
        let pmf = &self.pmfs[i];
        let u: f64 = rng.gen_range(0.0..1.0);
        let mut cum = 0.0;
        let mut bin = pmf.probs().len() - 1;
        for (b, &p) in pmf.probs().iter().enumerate() {
            cum += p;
            if u < cum {
                bin = b;
                break;
            }
        }
        let lo = self.spec.bin_lo(bin);
        rng.gen_range(lo..lo + self.spec.bin_width())
    }

    /// Converts a normalized sample back to a raw runtime given the group's
    /// historic median (the inverse of Definition 4.1), floored at zero.
    pub fn denormalize(&self, normalized: f64, historic_median: f64) -> f64 {
        match self.normalization {
            Normalization::Ratio => (normalized * historic_median).max(0.0),
            Normalization::Delta => (normalized + historic_median).max(0.0),
        }
    }

    /// Renders the Table 2 block for this catalog.
    pub fn to_table(&self) -> String {
        let unit = match self.normalization {
            Normalization::Ratio => "",
            Normalization::Delta => " (s)",
        };
        let mut out = format!(
            "{} normalization: cid | outlier(%) | 25-75th{unit} | 95th{unit} | std{unit} | groups\n",
            self.normalization
        );
        for (i, s) in self.stats.iter().enumerate() {
            out.push_str(&format!(
                "{i:>3} | {:>9.2} | {:>8.2} | {:>7.2} | {:>7.2} | {:>6}\n",
                s.outlier_prob * 100.0,
                s.iqr(),
                s.p95,
                s.std,
                s.n_groups
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rv_stats::Histogram;

    fn catalog() -> ShapeCatalog {
        let spec = BinSpec::ratio();
        // Shape A: tight around 1.0; Shape B: wide.
        let tight: Vec<f64> = (0..1000).map(|i| 0.95 + (i % 100) as f64 * 0.001).collect();
        let wide: Vec<f64> = (0..1000).map(|i| 0.5 + (i % 100) as f64 * 0.02).collect();
        let pmf_a = Histogram::from_samples(spec, tight.iter().copied()).to_pmf();
        let pmf_b = Histogram::from_samples(spec, wide.iter().copied()).to_pmf();
        let stats_a = ShapeStats::from_samples(&tight, &spec, 10).expect("non-empty");
        let stats_b = ShapeStats::from_samples(&wide, &spec, 5).expect("non-empty");
        // Deliberately pass the wide shape first: ranking must reorder.
        ShapeCatalog::new(
            Normalization::Ratio,
            spec,
            vec![pmf_b, pmf_a],
            vec![stats_b, stats_a],
        )
    }

    #[test]
    fn shapes_ranked_by_iqr() {
        let c = catalog();
        assert_eq!(c.n_shapes(), 2);
        assert!(c.stats(0).iqr() <= c.stats(1).iqr());
        // The tight shape must now be first.
        assert!(c.stats(0).iqr() < 0.1);
    }

    #[test]
    fn stats_from_samples_outliers() {
        let spec = BinSpec::ratio();
        let mut samples = vec![1.0; 98];
        samples.push(15.0);
        samples.push(20.0);
        let s = ShapeStats::from_samples(&samples, &spec, 1).expect("non-empty");
        assert!((s.outlier_prob - 0.02).abs() < 1e-9);
        assert_eq!(s.n_instances, 100);
    }

    #[test]
    fn sampling_matches_shape() {
        let c = catalog();
        let mut rng = SmallRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..2000)
            .map(|_| c.sample_normalized(0, &mut rng))
            .collect();
        let s = Summary::compute(&samples).expect("non-empty");
        // The tight shape concentrates near 1.0.
        assert!((s.median - 1.0).abs() < 0.1, "median {}", s.median);
        assert!(s.std_dev < 0.1);
    }

    #[test]
    fn denormalize_inverts_definitions() {
        let c = catalog();
        assert_eq!(c.denormalize(2.0, 50.0), 100.0);
        let spec = BinSpec::delta();
        let pmf = Histogram::from_samples(spec, vec![0.0; 10]).to_pmf();
        let stats = ShapeStats::from_samples(&[0.0; 10], &spec, 1).expect("non-empty");
        let cd = ShapeCatalog::new(Normalization::Delta, spec, vec![pmf], vec![stats]);
        assert_eq!(cd.denormalize(30.0, 50.0), 80.0);
        assert_eq!(cd.denormalize(-100.0, 50.0), 0.0);
    }

    #[test]
    fn table_renders_all_shapes() {
        let t = catalog().to_table();
        assert!(t.contains("Ratio normalization"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "share the catalog bin spec")]
    fn mixed_specs_rejected() {
        let ratio = BinSpec::ratio();
        let delta = BinSpec::delta();
        let pmf = Histogram::from_samples(delta, vec![0.0; 5]).to_pmf();
        let stats = ShapeStats::from_samples(&[0.0; 5], &delta, 1).expect("non-empty");
        ShapeCatalog::new(Normalization::Ratio, ratio, vec![pmf], vec![stats]);
    }
}
