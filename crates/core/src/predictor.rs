//! The shape predictor (§5.2): compile-time features → distribution shape.
//!
//! Pipeline, as in the paper: (1) importance-guided feature selection that
//! drops correlated features, (2) optional hyper-parameter sweep, (3) a
//! classifier — LightGBM-style GBDT by default, with RandomForest,
//! GaussianNB, and a soft-voting ensemble available for the model ablation.
//!
//! Labels come from the posterior-likelihood assignment ([`label_groups`]):
//! every group in the training window is associated with the catalog shape
//! its observed runtimes are most likely drawn from, and each of the
//! group's instances inherits that label.

use std::collections::BTreeMap;

use rv_learn::{
    select_features, Classifier, FeatureSelection, GaussianNb, GbdtClassifier, GbdtConfig,
    RandomForestClassifier, RandomForestConfig,
};
use rv_scope::JobGroupKey;
use rv_telemetry::{
    FeatureExtractor, GroupHistory, JobTelemetry, StoreView, TelemetryStore, FEATURE_NAMES,
};

use crate::likelihood::assign_group;
use crate::shapes::ShapeCatalog;

/// Which classifier family to fit.
#[derive(Debug, Clone, Copy)]
pub enum ModelKind {
    /// Histogram GBDT (the paper's best model).
    Gbdt(GbdtConfig),
    /// Bagged random forest.
    RandomForest(RandomForestConfig),
    /// Gaussian naive Bayes.
    NaiveBayes,
    /// Soft vote over GBDT + RandomForest + GaussianNB (§5.2's
    /// `EnsembledClassifier`).
    Ensemble(GbdtConfig, RandomForestConfig),
}

impl Default for ModelKind {
    fn default() -> Self {
        ModelKind::Gbdt(GbdtConfig::default())
    }
}

/// Predictor configuration.
#[derive(Debug, Clone, Copy)]
pub struct PredictorConfig {
    /// Classifier family.
    pub model: ModelKind,
    /// Correlation threshold for feature pruning (1.0 disables pruning of
    /// correlated pairs but still drops zero-importance features).
    pub max_abs_corr: f64,
    /// Rounds of the preliminary importance probe.
    pub probe_rounds: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::default(),
            max_abs_corr: 0.98,
            probe_rounds: 15,
        }
    }
}

/// Labels every group in `view` with its most likely catalog shape, using
/// `history` for normalization medians (falling back to the group's own
/// in-window median for groups without history).
///
/// Takes a borrowed [`StoreView`] so callers can label a time window of a
/// larger store without cloning rows (`store.view()` labels everything).
pub fn label_groups(
    catalog: &ShapeCatalog,
    view: &StoreView<'_>,
    history: &GroupHistory,
) -> BTreeMap<JobGroupKey, usize> {
    let mut labels = BTreeMap::new();
    for key in view.group_keys() {
        let runtimes = view.group_runtimes(key);
        if runtimes.is_empty() {
            continue;
        }
        let median = history
            .median_or(key, &runtimes)
            .expect("group has runtimes");
        let (shape, _) = assign_group(catalog, &runtimes, median);
        labels.insert(key.clone(), shape);
    }
    labels
}

/// A trained classifier in concrete form, so trained predictors can be
/// serialized by the artifact layer (a `Box<dyn Classifier>` cannot).
///
/// The `Ensemble` variant reproduces `SoftVotingEnsemble::weighted`
/// arithmetic exactly: weights are pre-normalized to sum 1 and member
/// probabilities accumulate in GBDT → forest → NB order, so predictions are
/// bit-identical to the boxed ensemble it replaced.
#[derive(Debug, Clone, PartialEq)]
pub enum FittedModel {
    /// Histogram GBDT.
    Gbdt(GbdtClassifier),
    /// Bagged random forest.
    Forest(RandomForestClassifier),
    /// Gaussian naive Bayes.
    NaiveBayes(GaussianNb),
    /// Soft vote over the three members with normalized `weights`.
    Ensemble {
        /// GBDT member.
        gbdt: GbdtClassifier,
        /// Random-forest member.
        forest: RandomForestClassifier,
        /// Naive-Bayes member.
        nb: GaussianNb,
        /// Normalized member weights (sum 1), in member order.
        weights: [f64; 3],
    },
}

impl Classifier for FittedModel {
    fn n_classes(&self) -> usize {
        match self {
            FittedModel::Gbdt(m) => m.n_classes(),
            FittedModel::Forest(m) => m.n_classes(),
            FittedModel::NaiveBayes(m) => m.n_classes(),
            FittedModel::Ensemble { gbdt, .. } => gbdt.n_classes(),
        }
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        match self {
            FittedModel::Gbdt(m) => m.predict_proba(x),
            FittedModel::Forest(m) => m.predict_proba(x),
            FittedModel::NaiveBayes(m) => m.predict_proba(x),
            FittedModel::Ensemble {
                gbdt,
                forest,
                nb,
                weights,
            } => {
                let members: [&dyn Classifier; 3] = [gbdt, forest, nb];
                let mut acc = vec![0.0; gbdt.n_classes()];
                for (m, &w) in members.iter().zip(weights) {
                    for (a, p) in acc.iter_mut().zip(m.predict_proba(x)) {
                        *a += w * p;
                    }
                }
                acc
            }
        }
    }
}

/// A trained shape predictor.
pub struct ShapePredictor {
    extractor: FeatureExtractor,
    selection: FeatureSelection,
    model: FittedModel,
    n_shapes: usize,
    /// Gain importances mapped back to the full schema width.
    full_importances: Vec<f64>,
}

impl ShapePredictor {
    /// Trains on `train` rows whose groups appear in `labels`; rows of
    /// unlabeled groups are skipped. Returns the predictor and the number of
    /// training instances used.
    pub fn train(
        train: &TelemetryStore,
        labels: &BTreeMap<JobGroupKey, usize>,
        extractor: FeatureExtractor,
        n_shapes: usize,
        config: &PredictorConfig,
    ) -> (Self, usize) {
        assert!(n_shapes >= 2, "need at least two shapes");
        let mut x_full: Vec<Vec<f64>> = Vec::new();
        let mut y: Vec<usize> = Vec::new();
        for row in train.rows() {
            if let Some(&label) = labels.get(&row.group) {
                x_full.push(extractor.extract(row));
                y.push(label);
            }
        }
        assert!(!x_full.is_empty(), "no labeled training rows");

        // Importance probe on the full feature set.
        let probe = GbdtClassifier::fit(
            &x_full,
            &y,
            n_shapes,
            &GbdtConfig {
                n_rounds: config.probe_rounds,
                ..GbdtConfig::default()
            },
        );
        let probe_importance = probe.feature_importances();
        let selection = select_features(&x_full, &probe_importance, config.max_abs_corr);
        let x: Vec<Vec<f64>> = selection.project_all(&x_full);

        let (model, kept_importances): (FittedModel, Vec<f64>) = match config.model {
            ModelKind::Gbdt(cfg) => {
                let m = GbdtClassifier::fit(&x, &y, n_shapes, &cfg);
                let imp = m.feature_importances();
                (FittedModel::Gbdt(m), imp)
            }
            ModelKind::RandomForest(cfg) => {
                let m = RandomForestClassifier::fit(&x, &y, n_shapes, &cfg);
                let imp = m.feature_importances();
                (FittedModel::Forest(m), imp)
            }
            ModelKind::NaiveBayes => {
                let m = GaussianNb::fit(&x, &y, n_shapes);
                (FittedModel::NaiveBayes(m), vec![0.0; selection.kept.len()])
            }
            ModelKind::Ensemble(gcfg, rcfg) => {
                let g = GbdtClassifier::fit(&x, &y, n_shapes, &gcfg);
                let imp = g.feature_importances();
                let r = RandomForestClassifier::fit(&x, &y, n_shapes, &rcfg);
                let nb = GaussianNb::fit(&x, &y, n_shapes);
                // Same normalization SoftVotingEnsemble::weighted applies.
                let raw = [2.0, 1.5, 0.5];
                let total: f64 = raw.iter().sum();
                let weights = [raw[0] / total, raw[1] / total, raw[2] / total];
                (
                    FittedModel::Ensemble {
                        gbdt: g,
                        forest: r,
                        nb,
                        weights,
                    },
                    imp,
                )
            }
        };

        let mut full_importances = vec![0.0; x_full[0].len()];
        for (slot, &col) in selection.kept.iter().enumerate() {
            full_importances[col] = kept_importances[slot];
        }

        let n_train = y.len();
        (
            Self {
                extractor,
                selection,
                model,
                n_shapes,
                full_importances,
            },
            n_train,
        )
    }

    /// Full-width feature vector for a row (before selection) — the input
    /// the what-if engine transforms.
    pub fn features_of(&self, row: &JobTelemetry) -> Vec<f64> {
        self.extractor.extract(row)
    }

    /// Predicts the shape from a full-width feature vector.
    pub fn predict_features(&self, full_features: &[f64]) -> usize {
        self.model.predict(&self.selection.project(full_features))
    }

    /// Shape probabilities from a full-width feature vector.
    pub fn predict_proba_features(&self, full_features: &[f64]) -> Vec<f64> {
        self.model
            .predict_proba(&self.selection.project(full_features))
    }

    /// Predicts the shape of one telemetry row.
    pub fn predict_row(&self, row: &JobTelemetry) -> usize {
        self.predict_features(&self.features_of(row))
    }

    /// Shape probabilities of one telemetry row.
    pub fn predict_proba_row(&self, row: &JobTelemetry) -> Vec<f64> {
        self.predict_proba_features(&self.features_of(row))
    }

    /// Number of shapes.
    pub fn n_shapes(&self) -> usize {
        self.n_shapes
    }

    /// The feature selection that was applied.
    pub fn selection(&self) -> &FeatureSelection {
        &self.selection
    }

    /// The feature extractor (with its history).
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// The underlying classifier (for Shapley explanation on *selected*
    /// features).
    pub fn model(&self) -> &dyn Classifier {
        &self.model
    }

    /// The fitted model in concrete form (for serialization).
    pub fn fitted(&self) -> &FittedModel {
        &self.model
    }

    /// Gain importances over the full schema width (for serialization).
    pub fn full_importances(&self) -> &[f64] {
        &self.full_importances
    }

    /// Reassembles a predictor from persisted parts (the deserialization
    /// counterpart of the accessors above).
    pub fn from_parts(
        extractor: FeatureExtractor,
        selection: FeatureSelection,
        model: FittedModel,
        n_shapes: usize,
        full_importances: Vec<f64>,
    ) -> Self {
        Self {
            extractor,
            selection,
            model,
            n_shapes,
            full_importances,
        }
    }

    /// Named gain importances over the full schema, sorted descending,
    /// zero-importance columns omitted.
    pub fn importances(&self) -> Vec<(&'static str, f64)> {
        let mut named: Vec<(&'static str, f64)> = FEATURE_NAMES
            .iter()
            .zip(&self.full_importances)
            .filter(|(_, &v)| v > 0.0)
            .map(|(&n, &v)| (n, v))
            .collect();
        named.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite importances"));
        named
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_scope::PlanSignature;
    use rv_stats::{BinSpec, Histogram, Normalization};

    use crate::shapes::ShapeStats;

    /// Two shapes: tight (ratio ≈ 1) and wide; two families of groups whose
    /// telemetry differs in a visible feature (allocated tokens).
    fn catalog() -> ShapeCatalog {
        let spec = BinSpec::ratio();
        let tight: Vec<f64> = (0..2000).map(|i| 0.97 + (i % 60) as f64 * 0.001).collect();
        let wide: Vec<f64> = (0..2000).map(|i| 0.3 + (i % 100) as f64 * 0.03).collect();
        let mk = |s: &[f64]| {
            (
                Histogram::from_samples(spec, s.iter().copied()).to_pmf(),
                ShapeStats::from_samples(s, &spec, 1).expect("non-empty"),
            )
        };
        let (p1, s1) = mk(&tight);
        let (p2, s2) = mk(&wide);
        ShapeCatalog::new(Normalization::Ratio, spec, vec![p1, p2], vec![s1, s2])
    }

    fn row(name: &str, seq: u32, runtime: f64, tokens: u32) -> JobTelemetry {
        JobTelemetry {
            group: JobGroupKey::new(name, PlanSignature(1)),
            template_id: 0,
            seq,
            submit_time_s: seq as f64 * 100.0,
            runtime_s: runtime,
            disrupted: false,
            operator_counts: vec![1; 18],
            n_stages: 3,
            critical_path: 3,
            total_base_vertices: 10,
            estimated_rows: 100.0,
            estimated_cost: 10.0,
            estimated_input_gb: 1.0,
            data_read_gb: 1.0,
            temp_data_gb: 0.2,
            total_vertices: 10,
            allocated_tokens: tokens,
            token_min: 1,
            token_max: tokens,
            token_avg: tokens as f64 * 0.7,
            spare_avg: 0.0,
            spare_preempted: false,
            cpu_seconds: 10.0,
            peak_memory_gb: 0.5,
            sku_fractions: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            sku_vertex_counts: [10, 0, 0, 0, 0, 0],
            sku_util_mean: [0.5; 6],
            sku_util_std: [0.1; 6],
            cluster_load: 0.5,
            spare_fraction: 0.2,
        }
    }

    fn training_store() -> TelemetryStore {
        let mut store = TelemetryStore::new();
        for g in 0..6 {
            for s in 0..20u32 {
                // Tight groups: runtime 100±1, 64 tokens.
                let jitter = ((s * 13 + g * 7) % 20) as f64 / 10.0 - 1.0;
                store.push(row(&format!("tight-{g}"), s, 100.0 + jitter, 64));
                // Wide groups: runtime 40..160, 8 tokens.
                let spread = 40.0 + ((s * 31 + g * 17) % 40) as f64 * 3.0;
                store.push(row(&format!("wide-{g}"), s, spread, 8));
            }
        }
        store
    }

    #[test]
    fn labels_follow_observed_shape() {
        let store = training_store();
        let history = GroupHistory::compute(&store);
        let labels = label_groups(&catalog(), &store.view(), &history);
        assert_eq!(labels.len(), 12);
        for (key, &label) in &labels {
            let expected = usize::from(!key.normalized_name.starts_with("tight"));
            assert_eq!(label, expected, "group {key}");
        }
    }

    #[test]
    fn trains_and_generalizes() {
        let store = training_store();
        let history = GroupHistory::compute(&store);
        let labels = label_groups(&catalog(), &store.view(), &history);
        let (predictor, n) = ShapePredictor::train(
            &store,
            &labels,
            FeatureExtractor::new(history),
            2,
            &PredictorConfig::default(),
        );
        assert_eq!(n, 240);
        // Predict on fresh rows of the same groups.
        let tight_probe = row("tight-0", 99, 100.5, 64);
        let wide_probe = row("wide-0", 99, 80.0, 8);
        assert_eq!(predictor.predict_row(&tight_probe), 0);
        assert_eq!(predictor.predict_row(&wide_probe), 1);
        let p = predictor.predict_proba_row(&tight_probe);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn importances_are_named_and_positive() {
        let store = training_store();
        let history = GroupHistory::compute(&store);
        let labels = label_groups(&catalog(), &store.view(), &history);
        let (predictor, _) = ShapePredictor::train(
            &store,
            &labels,
            FeatureExtractor::new(history),
            2,
            &PredictorConfig::default(),
        );
        let imps = predictor.importances();
        assert!(!imps.is_empty());
        for (name, v) in &imps {
            assert!(FEATURE_NAMES.contains(name));
            assert!(*v > 0.0);
        }
        // Sorted descending.
        for w in imps.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn model_kinds_all_train() {
        let store = training_store();
        let history = GroupHistory::compute(&store);
        let labels = label_groups(&catalog(), &store.view(), &history);
        let kinds = [
            ModelKind::Gbdt(GbdtConfig {
                n_rounds: 10,
                ..Default::default()
            }),
            ModelKind::RandomForest(RandomForestConfig {
                n_trees: 10,
                ..Default::default()
            }),
            ModelKind::NaiveBayes,
            ModelKind::Ensemble(
                GbdtConfig {
                    n_rounds: 8,
                    ..Default::default()
                },
                RandomForestConfig {
                    n_trees: 8,
                    ..Default::default()
                },
            ),
        ];
        for kind in kinds {
            let (predictor, _) = ShapePredictor::train(
                &store,
                &labels,
                FeatureExtractor::new(GroupHistory::compute(&store)),
                2,
                &PredictorConfig {
                    model: kind,
                    ..Default::default()
                },
            );
            let probe = row("tight-0", 50, 100.0, 64);
            let shape = predictor.predict_row(&probe);
            assert!(shape < 2);
            let _ = labels.len();
            let _ = &history;
        }
    }

    #[test]
    #[should_panic(expected = "no labeled training rows")]
    fn empty_training_panics() {
        let store = TelemetryStore::new();
        ShapePredictor::train(
            &store,
            &BTreeMap::new(),
            FeatureExtractor::new(GroupHistory::default()),
            2,
            &PredictorConfig::default(),
        );
    }
}
