//! §4.1: why scalar metrics fail — the Fig 4 analyses.
//!
//! * [`median_scatter`] pairs every test-window run with its group's
//!   historic median (Fig 4a). Points split into the *diagonal* (runs near
//!   their median) and the *stalagmite* (rare runs far above it).
//! * [`cov_pairs`] pairs each group's historic COV with the COV of its
//!   later observations (Fig 4b): historic COV is a poor predictor of
//!   future COV.

use rv_stats::coefficient_of_variation;
use rv_telemetry::{GroupHistory, TelemetryStore};

/// One Fig 4a point: `(historic_median_s, instance_runtime_s)`.
pub fn median_scatter(test: &TelemetryStore, history: &GroupHistory) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(test.len());
    for row in test.rows() {
        if let Some(h) = history.get(&row.group) {
            out.push((h.median_runtime_s, row.runtime_s));
        }
    }
    out
}

/// Summary of the diagonal-vs-stalagmite split of a Fig 4a scatter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StalagmiteStats {
    /// Total points considered.
    pub n_points: usize,
    /// Points on the stalagmite: runtime at least `threshold ×` the median.
    pub n_stalagmite: usize,
    /// The ratio threshold used.
    pub threshold: f64,
}

impl StalagmiteStats {
    /// Fraction of runs on the stalagmite (the paper reports <5%).
    pub fn fraction(&self) -> f64 {
        if self.n_points == 0 {
            0.0
        } else {
            self.n_stalagmite as f64 / self.n_points as f64
        }
    }
}

/// Classifies Fig 4a points into diagonal vs stalagmite at `threshold ×`
/// the historic median.
pub fn stalagmite_stats(scatter: &[(f64, f64)], threshold: f64) -> StalagmiteStats {
    assert!(threshold > 1.0, "threshold must exceed 1");
    let n_stalagmite = scatter
        .iter()
        .filter(|&&(median, runtime)| median > 0.0 && runtime >= threshold * median)
        .count();
    StalagmiteStats {
        n_points: scatter.len(),
        n_stalagmite,
        threshold,
    }
}

/// One Fig 4b point per group: `(historic_cov, observed_cov)` — the COV of
/// the group's history vs the COV over its rows in `test`. Groups lacking
/// history, with fewer than `min_runs` test rows, or with undefined COV are
/// skipped.
pub fn cov_pairs(
    test: &TelemetryStore,
    history: &GroupHistory,
    min_runs: usize,
) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for key in test.group_keys() {
        let runtimes = test.group_runtimes(key);
        if runtimes.len() < min_runs {
            continue;
        }
        let Some(h) = history.get(key) else { continue };
        if h.mean_runtime_s <= 0.0 {
            continue;
        }
        let hist_cov = h.runtime_std_s / h.mean_runtime_s;
        let Some(obs_cov) = coefficient_of_variation(&runtimes) else {
            continue;
        };
        out.push((hist_cov, obs_cov));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_scope::{JobGroupKey, PlanSignature};
    use rv_telemetry::JobTelemetry;

    fn row(name: &str, seq: u32, runtime: f64) -> JobTelemetry {
        JobTelemetry {
            group: JobGroupKey::new(name, PlanSignature(3)),
            template_id: 0,
            seq,
            submit_time_s: seq as f64,
            runtime_s: runtime,
            disrupted: false,
            operator_counts: vec![0; 18],
            n_stages: 1,
            critical_path: 1,
            total_base_vertices: 1,
            estimated_rows: 1.0,
            estimated_cost: 1.0,
            estimated_input_gb: 1.0,
            data_read_gb: 1.0,
            temp_data_gb: 0.1,
            total_vertices: 1,
            allocated_tokens: 1,
            token_min: 1,
            token_max: 1,
            token_avg: 1.0,
            spare_avg: 0.0,
            spare_preempted: false,
            cpu_seconds: 10.0,
            peak_memory_gb: 0.5,
            sku_fractions: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            sku_vertex_counts: [1, 0, 0, 0, 0, 0],
            sku_util_mean: [0.5; 6],
            sku_util_std: [0.1; 6],
            cluster_load: 0.5,
            spare_fraction: 0.2,
        }
    }

    fn history_store() -> TelemetryStore {
        (0..10).map(|s| row("g", s, 100.0 + s as f64)).collect()
    }

    #[test]
    fn scatter_pairs_median_with_runs() {
        let history = GroupHistory::compute(&history_store());
        let test: TelemetryStore = vec![row("g", 20, 105.0), row("g", 21, 600.0)]
            .into_iter()
            .collect();
        let scatter = median_scatter(&test, &history);
        assert_eq!(scatter.len(), 2);
        assert!((scatter[0].0 - 104.5).abs() < 1e-9);
        assert_eq!(scatter[1].1, 600.0);
    }

    #[test]
    fn stalagmite_detection() {
        let scatter = vec![(100.0, 101.0), (100.0, 98.0), (100.0, 550.0), (100.0, 99.0)];
        let s = stalagmite_stats(&scatter, 5.0);
        assert_eq!(s.n_points, 4);
        assert_eq!(s.n_stalagmite, 1);
        assert!((s.fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unknown_groups_skipped() {
        let history = GroupHistory::compute(&history_store());
        let test: TelemetryStore = vec![row("other", 0, 50.0)].into_iter().collect();
        assert!(median_scatter(&test, &history).is_empty());
        assert!(cov_pairs(&test, &history, 1).is_empty());
    }

    #[test]
    fn cov_pairs_computed_per_group() {
        let history = GroupHistory::compute(&history_store());
        let test: TelemetryStore = (0..5)
            .map(|s| row("g", 20 + s, 100.0 + s as f64 * 10.0))
            .collect();
        let pairs = cov_pairs(&test, &history, 3);
        assert_eq!(pairs.len(), 1);
        let (hist_cov, obs_cov) = pairs[0];
        assert!(hist_cov > 0.0 && hist_cov < 0.1);
        assert!(obs_cov > hist_cov, "test window was more variable");
    }

    #[test]
    fn min_runs_filter() {
        let history = GroupHistory::compute(&history_store());
        let test: TelemetryStore = vec![row("g", 20, 100.0)].into_iter().collect();
        assert!(cov_pairs(&test, &history, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold must exceed 1")]
    fn bad_threshold_panics() {
        stalagmite_stats(&[], 0.5);
    }
}
