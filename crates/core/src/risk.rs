//! SLO risk assessment from predicted runtime distributions.
//!
//! The paper's §1 motivation: pipelines have strong data dependencies, so
//! operators need "the probability that a job runtime may exceed an extreme
//! value". A predicted *distribution* answers that directly where a point
//! estimate cannot: read the breach probability off the predicted shape's
//! PMF.

use rv_telemetry::{JobTelemetry, TelemetryStore};

use crate::predictor::ShapePredictor;
use crate::shapes::ShapeCatalog;

/// Risk severity bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RiskLevel {
    /// Breach probability below 2%.
    Low,
    /// Breach probability in `[2%, 10%)`.
    Medium,
    /// Breach probability of 10% or more.
    High,
}

impl RiskLevel {
    /// Bands a breach probability.
    pub fn from_probability(p: f64) -> Self {
        if p >= 0.10 {
            RiskLevel::High
        } else if p >= 0.02 {
            RiskLevel::Medium
        } else {
            RiskLevel::Low
        }
    }
}

impl std::fmt::Display for RiskLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RiskLevel::Low => "low",
            RiskLevel::Medium => "medium",
            RiskLevel::High => "high",
        })
    }
}

/// One job's SLO risk assessment.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskAssessment {
    /// The predicted shape.
    pub shape: usize,
    /// Probability that the normalized runtime breaches the threshold.
    pub breach_probability: f64,
    /// Banded severity.
    pub level: RiskLevel,
    /// The shape's outlier probability (≥10× / ≥+900 s, per footnote 3).
    pub outlier_probability: f64,
}

/// Probability mass of `shape`'s PMF at or above `threshold` (in normalized
/// units: a ratio for Ratio catalogs, seconds-over-median for Delta).
pub fn breach_probability(catalog: &ShapeCatalog, shape: usize, threshold: f64) -> f64 {
    let pmf = catalog.pmf(shape);
    let spec = catalog.spec;
    pmf.probs()
        .iter()
        .enumerate()
        // A bin contributes if any part of it lies at/above the threshold.
        .filter(|(b, _)| spec.bin_lo(*b) + spec.bin_width() > threshold)
        .map(|(_, &p)| p)
        .sum()
}

/// Assesses one telemetry row against an SLO threshold in normalized units.
pub fn assess_row(
    predictor: &ShapePredictor,
    catalog: &ShapeCatalog,
    row: &JobTelemetry,
    threshold: f64,
) -> RiskAssessment {
    let shape = predictor.predict_row(row);
    let breach = breach_probability(catalog, shape, threshold);
    RiskAssessment {
        shape,
        breach_probability: breach,
        level: RiskLevel::from_probability(breach),
        outlier_probability: catalog.stats(shape).outlier_prob,
    }
}

/// Assesses every group in `store` (one representative row per group) and
/// returns `(group name, assessment)` sorted by descending breach
/// probability.
pub fn assess_store(
    predictor: &ShapePredictor,
    catalog: &ShapeCatalog,
    store: &TelemetryStore,
    threshold: f64,
) -> Vec<(String, RiskAssessment)> {
    let mut out = Vec::new();
    for key in store.group_keys() {
        if let Some(row) = store.group_rows(key).first() {
            out.push((
                key.normalized_name.clone(),
                assess_row(predictor, catalog, row, threshold),
            ));
        }
    }
    out.sort_by(|a, b| {
        b.1.breach_probability
            .partial_cmp(&a.1.breach_probability)
            .expect("finite probabilities")
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_stats::{BinSpec, Histogram, Normalization};

    use crate::shapes::ShapeStats;

    fn catalog() -> ShapeCatalog {
        let spec = BinSpec::ratio();
        // Shape A: all mass near 1.0 — never breaches 2x.
        let tight: Vec<f64> = vec![1.0; 1000];
        // Shape B: 20% of mass at 3x.
        let mut risky: Vec<f64> = vec![1.0; 800];
        risky.extend(vec![3.0; 200]);
        let mk = |s: &[f64]| {
            (
                Histogram::from_samples(spec, s.iter().copied()).to_pmf(),
                ShapeStats::from_samples(s, &spec, 1).expect("non-empty"),
            )
        };
        let (p1, s1) = mk(&tight);
        let (p2, s2) = mk(&risky);
        ShapeCatalog::new(Normalization::Ratio, spec, vec![p1, p2], vec![s1, s2])
    }

    #[test]
    fn breach_probability_reads_the_tail() {
        let c = catalog();
        assert!(breach_probability(&c, 0, 2.0) < 1e-9);
        let b = breach_probability(&c, 1, 2.0);
        assert!((b - 0.2).abs() < 1e-9, "breach {b}");
        // Threshold below all mass → everything breaches.
        assert!((breach_probability(&c, 0, 0.5) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bins_straddling_the_threshold_count() {
        let c = catalog();
        // Mass sits in the bin [1.0, 1.05); a threshold of 1.02 cuts
        // through the bin, which must still be counted (conservative).
        assert!(breach_probability(&c, 0, 1.02) > 0.99);
        // Just past the bin's upper edge it stops counting.
        assert!(breach_probability(&c, 0, 1.051) < 1e-9);
    }

    #[test]
    fn levels_band_correctly() {
        assert_eq!(RiskLevel::from_probability(0.0), RiskLevel::Low);
        assert_eq!(RiskLevel::from_probability(0.019), RiskLevel::Low);
        assert_eq!(RiskLevel::from_probability(0.02), RiskLevel::Medium);
        assert_eq!(RiskLevel::from_probability(0.0999), RiskLevel::Medium);
        assert_eq!(RiskLevel::from_probability(0.1), RiskLevel::High);
        assert_eq!(RiskLevel::from_probability(1.0), RiskLevel::High);
        assert!(RiskLevel::Low < RiskLevel::High);
    }
}
