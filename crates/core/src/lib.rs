//! # rv-core — the runtime-variation framework
//!
//! The paper's contribution (Fig 2), end to end:
//!
//! 1. **Characterize** ([`mod@characterize`], [`shapes`]) — normalize each
//!    recurring job group's runtimes (Ratio and Delta, Definition 4.1),
//!    histogram them (200 bins with outlier-absorbing edges), smooth, and
//!    k-means-cluster the PMF vectors into a small catalog of typical
//!    distribution shapes (Fig 5 / Table 2).
//! 2. **Assign** ([`likelihood`]) — associate any job group (even with few
//!    observations) to its most probable shape via the posterior
//!    log-likelihood of Eq. (9): `argmax_i Σ_h φ_h · log θ^i_h`.
//! 3. **Predict** ([`predictor`]) — train a classifier (GBDT by default,
//!    §5.2) that maps compile-time features to the shape; the
//!    [`regression_baseline`] is the Griffon-style random-forest regressor
//!    the paper outperforms (Fig 8).
//! 4. **Explain** ([`explain`]) — Shapley values over the predictor (§6).
//! 5. **Control** ([`whatif`]) — what-if scenarios (§7): disable spare
//!    tokens, shift vertices to newer SKUs, equalize machine load; measure
//!    predicted shape transitions.
//!
//! [`scalar_metrics`] reproduces §4.1's critique of medians and COV
//! (Fig 4), and [`framework`] wires the whole pipeline behind one call —
//! executed as the staged, fingerprint-cached DAG in [`mod@pipeline`].
//! Operational add-ons: [`risk`] turns predicted shapes into SLO-breach
//! probabilities (§1's motivating question) and [`monitor`] is a streaming
//! drift detector flagging groups whose recent runs no longer match their
//! assigned shape.

pub mod characterize;
pub mod explain;
pub mod framework;
pub mod likelihood;
pub mod monitor;
pub mod persist;
pub mod pipeline;
pub mod predictor;
pub mod regression_baseline;
pub mod report;
pub mod risk;
pub mod scalar_metrics;
pub mod shapes;
pub mod whatif;

pub use characterize::{characterize, CharacterizeConfig};
pub use explain::{explain_shape, ShapeExplanation};
pub use framework::{Framework, FrameworkConfig};
pub use likelihood::{assign_group, assign_samples, log_likelihoods};
pub use monitor::{DriftMonitor, DriftVerdict};
pub use persist::{read_catalog, write_catalog};
pub use pipeline::{
    stage_fingerprints, ArtifactCache, Fingerprint, PipelineError, StageFingerprints,
};
pub use predictor::{FittedModel, ModelKind, PredictorConfig, ShapePredictor};
pub use regression_baseline::{compare_distribution_fidelity, FidelityReport, RuntimeRegressor};
pub use risk::{assess_row, assess_store, breach_probability, RiskAssessment, RiskLevel};
pub use scalar_metrics::{cov_pairs, median_scatter, stalagmite_stats};
pub use shapes::{ShapeCatalog, ShapeStats};
pub use whatif::{Scenario, TransitionMatrix, WhatIfEngine, WhatIfOutcome};

// Re-export the substrate crates so downstream users (examples, benches)
// need only depend on rv-core.
pub use rv_cluster;
pub use rv_learn;
pub use rv_par;
pub use rv_scope;
pub use rv_shap;
pub use rv_sim;
pub use rv_stats;
pub use rv_telemetry;
