//! Drift monitoring: does a job still follow its assigned shape?
//!
//! The paper's opening question (§1): "how likely it is for the next job
//! run to be an outlier compared to historic runs", and when a job's
//! behaviour changes, operators want to know *before* the SLO breaks. The
//! monitor keeps a window of recent normalized runtimes per group and
//! applies two tests against the catalog:
//!
//! 1. **Relative** (likelihood ratio): if the best-scoring shape beats the
//!    group's assigned shape by more than a threshold (nats per
//!    observation), the group now follows a *different known* shape.
//! 2. **Absolute** (goodness of fit): if the assigned shape's realized
//!    log-likelihood per observation falls far below its *expected* value
//!    (`Σ_h θ_h · log θ_h`, the negative entropy), the group has moved to a
//!    region where no catalog shape has mass — e.g. a sudden 2.5× slowdown.
//!    A pure ratio test is blind there, because every shape scores the same
//!    floor.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use rv_scope::JobGroupKey;
use rv_stats::normalize;

use crate::likelihood::log_likelihoods;
use crate::shapes::ShapeCatalog;

/// Verdict for one group at one point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftVerdict {
    /// The shape the group is assigned to (being monitored against).
    pub assigned_shape: usize,
    /// The shape the recent window most likely follows.
    pub best_shape: usize,
    /// Log-likelihood advantage of `best_shape` over `assigned_shape`,
    /// per observation (nats).
    pub advantage_per_obs: f64,
    /// How far the assigned shape's realized fit falls below its expected
    /// log-likelihood per observation (nats; higher = worse fit).
    pub fit_deficit_per_obs: f64,
    /// Whether either drift test fired.
    pub drifted: bool,
    /// Observations in the window.
    pub window_len: usize,
}

/// An observation arrived for a group the monitor was never told to track.
///
/// In production this is a data-quality event (e.g. a stale artifact naming
/// groups the current catalog does not know), not a programming error, so
/// the library surfaces it as a typed error rather than panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UntrackedGroup {
    /// The group that was observed without being tracked.
    pub group: JobGroupKey,
}

impl fmt::Display for UntrackedGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "observation for untracked group {:?}", self.group)
    }
}

impl std::error::Error for UntrackedGroup {}

/// Streaming drift monitor over recurring job groups.
pub struct DriftMonitor {
    catalog: ShapeCatalog,
    /// Assigned shape and historic median per monitored group.
    groups: BTreeMap<JobGroupKey, (usize, f64)>,
    /// Recent normalized runtimes per group.
    windows: BTreeMap<JobGroupKey, VecDeque<f64>>,
    /// Window capacity.
    window: usize,
    /// Minimum observations before verdicts are issued.
    min_obs: usize,
    /// Relative drift threshold in nats per observation.
    threshold: f64,
    /// Absolute (goodness-of-fit) threshold in nats per observation.
    fit_threshold: f64,
    /// Expected log-likelihood per observation of each shape under itself
    /// (negative entropy, with the same mixture smoothing as Eq. 9).
    expected_fit: Vec<f64>,
}

impl DriftMonitor {
    /// Creates a monitor over `catalog` with a rolling window of `window`
    /// observations, requiring `min_obs` before judging, and flagging drift
    /// when another shape beats the assigned one by `threshold` nats per
    /// observation.
    /// The absolute test fires when the realized fit per observation drops
    /// more than `2 × threshold` nats below the shape's expected fit.
    pub fn new(catalog: ShapeCatalog, window: usize, min_obs: usize, threshold: f64) -> Self {
        assert!(window >= 1, "window must hold at least one observation");
        assert!(
            min_obs >= 1 && min_obs <= window,
            "min_obs must fit the window"
        );
        assert!(threshold >= 0.0, "threshold must be non-negative");
        // Expected per-observation log-likelihood of samples from shape i
        // scored against shape i: Σ_h θ_h · log θ'_h, exactly the Eq. 9
        // machinery evaluated on the shape's own PMF.
        let expected_fit: Vec<f64> = (0..catalog.n_shapes())
            .map(|i| crate::likelihood::log_likelihoods_pmf(&catalog, catalog.pmf(i))[i])
            .collect();
        Self {
            catalog,
            groups: BTreeMap::new(),
            windows: BTreeMap::new(),
            window,
            min_obs,
            threshold,
            fit_threshold: 2.0 * threshold,
            expected_fit,
        }
    }

    /// Registers a group with its assigned shape and historic median.
    ///
    /// # Panics
    /// Panics if the shape is out of catalog range or the median is not
    /// positive.
    pub fn track(&mut self, group: JobGroupKey, assigned_shape: usize, historic_median_s: f64) {
        assert!(
            assigned_shape < self.catalog.n_shapes(),
            "shape out of range"
        );
        assert!(historic_median_s > 0.0, "median must be positive");
        self.groups
            .insert(group.clone(), (assigned_shape, historic_median_s));
        self.windows.entry(group).or_default();
    }

    /// Number of tracked groups.
    pub fn n_tracked(&self) -> usize {
        self.groups.len()
    }

    /// Feeds one completed run and returns the current verdict (or
    /// `Ok(None)` until the window holds `min_obs` observations).
    ///
    /// # Errors
    /// Returns [`UntrackedGroup`] if the group was never
    /// [`Self::track`]ed; the observation is discarded.
    pub fn observe(
        &mut self,
        group: &JobGroupKey,
        runtime_s: f64,
    ) -> Result<Option<DriftVerdict>, UntrackedGroup> {
        let Some(&(assigned, median)) = self.groups.get(group) else {
            return Err(UntrackedGroup {
                group: group.clone(),
            });
        };
        let normalized = normalize(self.catalog.normalization, runtime_s, median);
        let w = self
            .windows
            .get_mut(group)
            .expect("tracked group has window");
        if w.len() == self.window {
            w.pop_front();
        }
        w.push_back(normalized);
        if w.len() < self.min_obs {
            return Ok(None);
        }
        let samples: Vec<f64> = w.iter().copied().collect();
        let lls = log_likelihoods(&self.catalog, &samples);
        let best = (0..lls.len())
            .max_by(|&a, &b| lls[a].total_cmp(&lls[b]))
            .expect("catalog non-empty");
        let advantage_per_obs = (lls[best] - lls[assigned]) / samples.len() as f64;
        let fit_deficit_per_obs =
            self.expected_fit[assigned] - lls[assigned] / samples.len() as f64;
        let relative_drift = best != assigned && advantage_per_obs > self.threshold;
        let absolute_drift = fit_deficit_per_obs > self.fit_threshold;
        Ok(Some(DriftVerdict {
            assigned_shape: assigned,
            best_shape: best,
            advantage_per_obs,
            fit_deficit_per_obs,
            drifted: relative_drift || absolute_drift,
            window_len: samples.len(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_scope::PlanSignature;
    use rv_stats::{BinSpec, Histogram, Normalization};

    use crate::shapes::ShapeStats;

    fn catalog() -> ShapeCatalog {
        let spec = BinSpec::ratio();
        let tight: Vec<f64> = (0..2000).map(|i| 0.96 + (i % 80) as f64 * 0.001).collect();
        let slow: Vec<f64> = (0..2000).map(|i| 1.8 + (i % 80) as f64 * 0.005).collect();
        let mk = |s: &[f64]| {
            (
                Histogram::from_samples(spec, s.iter().copied()).to_pmf(),
                ShapeStats::from_samples(s, &spec, 1).expect("non-empty"),
            )
        };
        let (p1, s1) = mk(&tight);
        let (p2, s2) = mk(&slow);
        ShapeCatalog::new(Normalization::Ratio, spec, vec![p1, p2], vec![s1, s2])
    }

    fn key() -> JobGroupKey {
        JobGroupKey::new("pipeline", PlanSignature(1))
    }

    fn monitor() -> DriftMonitor {
        let mut m = DriftMonitor::new(catalog(), 12, 5, 0.5);
        m.track(key(), 0, 100.0);
        m
    }

    #[test]
    fn silent_until_min_obs() {
        let mut m = monitor();
        for i in 0..4 {
            assert!(m
                .observe(&key(), 100.0 + i as f64 * 0.1)
                .expect("tracked")
                .is_none());
        }
        assert!(m.observe(&key(), 100.0).expect("tracked").is_some());
    }

    #[test]
    fn conforming_runs_do_not_drift() {
        let mut m = monitor();
        let mut last = None;
        for i in 0..20 {
            last = m.observe(&key(), 98.0 + (i % 7) as f64).expect("tracked");
        }
        let v = last.expect("window full");
        assert!(!v.drifted, "verdict {v:?}");
        assert_eq!(v.best_shape, 0);
        assert_eq!(v.window_len, 12);
    }

    #[test]
    fn regime_change_is_detected() {
        let mut m = monitor();
        for i in 0..12 {
            m.observe(&key(), 99.0 + (i % 5) as f64).expect("tracked");
        }
        // The job starts running ~2x slower (e.g. its input doubled).
        let mut verdict = None;
        for i in 0..12 {
            verdict = m.observe(&key(), 190.0 + (i % 9) as f64).expect("tracked");
        }
        let v = verdict.expect("window full");
        assert!(v.drifted, "verdict {v:?}");
        assert_eq!(v.best_shape, 1);
        assert!(v.advantage_per_obs > 0.5);
    }

    #[test]
    fn window_forgets_old_behaviour() {
        let mut m = monitor();
        // Drift, then return to normal for a full window: verdict recovers.
        for _ in 0..12 {
            m.observe(&key(), 200.0).expect("tracked");
        }
        let mut verdict = None;
        for i in 0..12 {
            verdict = m
                .observe(&key(), 99.5 + (i % 3) as f64 * 0.3)
                .expect("tracked");
        }
        let v = verdict.expect("window full");
        assert!(!v.drifted, "verdict {v:?}");
    }

    #[test]
    fn off_catalog_regime_fires_absolute_test() {
        // A 4x slowdown lands where NO shape has mass: the ratio test is
        // blind (all shapes score the uniform floor) but the fit test fires.
        let mut m = monitor();
        for i in 0..12 {
            m.observe(&key(), 99.0 + (i % 5) as f64).expect("tracked");
        }
        let mut verdict = None;
        for _ in 0..12 {
            verdict = m.observe(&key(), 400.0).expect("tracked");
        }
        let v = verdict.expect("window full");
        assert!(v.drifted, "verdict {v:?}");
        assert!(v.fit_deficit_per_obs > 1.0);
    }

    #[test]
    fn untracked_group_is_an_error_not_a_panic() {
        let mut m = monitor();
        let stranger = JobGroupKey::new("other", PlanSignature(2));
        let err = m
            .observe(&stranger, 1.0)
            .expect_err("untracked group must surface as an error");
        assert_eq!(err.group, stranger);
        assert!(err.to_string().contains("untracked"), "{err}");
        // The rejected observation leaves the monitor fully usable.
        assert!(m.observe(&key(), 100.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "shape out of range")]
    fn bad_shape_rejected() {
        let mut m = monitor();
        m.track(key(), 99, 100.0);
    }
}
