//! What-if scenarios (§7): predicted impact of control decisions.
//!
//! A scenario is a transformation of the *feature vector* — the levers a
//! platform operator can pull — after which the trained predictor re-scores
//! every test job. The outcome is a shape transition matrix: which jobs the
//! model expects to move to a different runtime-distribution shape, and what
//! that implies for their variation statistics (Table 2).
//!
//! * Scenario 1 — [`Scenario::DisableSpareTokens`]: zero the spare-token
//!   features (historic spare usage and submit-time spare availability).
//! * Scenario 2 — [`Scenario::ShiftSku`]: move the historic vertex fractions
//!   and counts from one SKU generation to another (the paper shifts
//!   Gen3.5 → Gen5.2).
//! * Scenario 3 — [`Scenario::PerfectLoadBalance`]: equal load on all
//!   machines and at all times — per-SKU utilization spread goes to zero
//!   and every utilization level is flattened to the fleet average.

use rv_sim::SkuGeneration;
use rv_telemetry::{FeatureSchema, TelemetryStore};

use crate::predictor::ShapePredictor;
use crate::shapes::ShapeCatalog;

/// A what-if feature transformation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// §7.1 — run without preemptive spare tokens.
    DisableSpareTokens,
    /// §7.2 — execute `from`'s vertices on `to` machines instead.
    ShiftSku {
        /// Generation whose vertices are vacated.
        from: SkuGeneration,
        /// Generation that absorbs them.
        to: SkuGeneration,
    },
    /// §7.3 — equalize machine load "on all machines and at all times":
    /// utilization spread → 0 and every utilization level → `level` (the
    /// fleet's time-averaged utilization).
    PerfectLoadBalance {
        /// The uniform utilization level every machine runs at.
        level: f64,
    },
}

impl Scenario {
    /// Human-readable name.
    pub fn name(&self) -> String {
        match self {
            Scenario::DisableSpareTokens => "disable-spare-tokens".to_string(),
            Scenario::ShiftSku { from, to } => format!("shift-sku-{from}-to-{to}"),
            Scenario::PerfectLoadBalance { level } => {
                format!("perfect-load-balance@{level:.2}")
            }
        }
    }

    /// Applies the transformation to a full-width feature vector in place.
    pub fn apply(&self, features: &mut [f64]) {
        match *self {
            Scenario::DisableSpareTokens => {
                for i in FeatureSchema::spare_indices() {
                    features[i] = 0.0;
                }
            }
            Scenario::ShiftSku { from, to } => {
                let ff = FeatureSchema::sku_fraction_index(from);
                let ft = FeatureSchema::sku_fraction_index(to);
                features[ft] += features[ff];
                features[ff] = 0.0;
                // Vertex counts are stored as ln(1 + count): combine in
                // count space, then re-encode.
                let cf = FeatureSchema::sku_vertex_count_index(from);
                let ct = FeatureSchema::sku_vertex_count_index(to);
                let moved = features[cf].exp_m1().max(0.0);
                let existing = features[ct].exp_m1().max(0.0);
                features[ct] = (existing + moved).ln_1p();
                features[cf] = 0.0;
            }
            Scenario::PerfectLoadBalance { level } => {
                for i in FeatureSchema::util_std_indices() {
                    features[i] = 0.0;
                }
                for g in SkuGeneration::ALL {
                    features[FeatureSchema::util_mean_index(g)] = level;
                }
                features[FeatureSchema::CLUSTER_LOAD] = level;
            }
        }
    }
}

/// Counts of predicted shape changes: `counts[before][after]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionMatrix {
    counts: Vec<Vec<u64>>,
}

impl TransitionMatrix {
    fn new(k: usize) -> Self {
        Self {
            counts: vec![vec![0; k]; k],
        }
    }

    /// Raw counts.
    pub fn counts(&self) -> &[Vec<u64>] {
        &self.counts
    }

    /// Total jobs scored.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Jobs whose predicted shape changed.
    pub fn n_changed(&self) -> u64 {
        self.total()
            - (0..self.counts.len())
                .map(|i| self.counts[i][i])
                .sum::<u64>()
    }

    /// Off-diagonal transitions as `(from, to, count, pct_of_from)`, sorted
    /// by count descending. `pct_of_from` matches the paper's phrasing
    /// ("15% of jobs that were predicted in Cluster 2 are now in Cluster 1").
    pub fn top_transitions(&self) -> Vec<(usize, usize, u64, f64)> {
        let mut out = Vec::new();
        for (from, row) in self.counts.iter().enumerate() {
            let from_total: u64 = row.iter().sum();
            for (to, &c) in row.iter().enumerate() {
                if from != to && c > 0 {
                    out.push((from, to, c, c as f64 / from_total as f64 * 100.0));
                }
            }
        }
        out.sort_by_key(|t| std::cmp::Reverse(t.2));
        out
    }
}

/// The outcome of evaluating one scenario over a test set.
#[derive(Debug, Clone)]
pub struct WhatIfOutcome {
    /// The scenario evaluated.
    pub scenario: Scenario,
    /// Shape transition matrix (baseline prediction → scenario prediction).
    pub transitions: TransitionMatrix,
}

impl WhatIfOutcome {
    /// Fraction of jobs whose predicted shape changed.
    pub fn changed_fraction(&self) -> f64 {
        let total = self.transitions.total();
        if total == 0 {
            0.0
        } else {
            self.transitions.n_changed() as f64 / total as f64
        }
    }

    /// Renders the top transitions with their Table 2 stat deltas.
    pub fn describe(&self, catalog: &ShapeCatalog, top_n: usize) -> String {
        let mut out = format!(
            "scenario {}: {:.2}% of jobs change shape\n",
            self.scenario.name(),
            self.changed_fraction() * 100.0
        );
        for (from, to, count, pct) in self.transitions.top_transitions().into_iter().take(top_n) {
            let sf = catalog.stats(from);
            let st = catalog.stats(to);
            out.push_str(&format!(
                "  {pct:.2}% of cluster {from} -> cluster {to} ({count} jobs): \
                 IQR {:.3} -> {:.3}, outlier {:.2}% -> {:.2}%, std {:.3} -> {:.3}\n",
                sf.iqr(),
                st.iqr(),
                sf.outlier_prob * 100.0,
                st.outlier_prob * 100.0,
                sf.std,
                st.std
            ));
        }
        out
    }
}

/// Evaluates scenarios against a trained predictor.
pub struct WhatIfEngine<'a> {
    predictor: &'a ShapePredictor,
}

impl<'a> WhatIfEngine<'a> {
    /// Creates an engine over a trained predictor.
    pub fn new(predictor: &'a ShapePredictor) -> Self {
        Self { predictor }
    }

    /// Scores every row of `test` under the baseline and the scenario and
    /// tabulates shape transitions.
    pub fn evaluate(&self, test: &TelemetryStore, scenario: Scenario) -> WhatIfOutcome {
        let k = self.predictor.n_shapes();
        let mut transitions = TransitionMatrix::new(k);
        for row in test.rows() {
            let features = self.predictor.features_of(row);
            let before = self.predictor.predict_features(&features);
            let mut transformed = features;
            scenario.apply(&mut transformed);
            let after = self.predictor.predict_features(&transformed);
            transitions.counts[before][after] += 1;
        }
        WhatIfOutcome {
            scenario,
            transitions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disable_spare_zeroes_spare_usage_only() {
        let mut f = vec![1.0; FeatureSchema::WIDTH];
        Scenario::DisableSpareTokens.apply(&mut f);
        for i in FeatureSchema::spare_indices() {
            assert_eq!(f[i], 0.0);
        }
        // Ambient spare capacity and other features untouched.
        assert_eq!(f[FeatureSchema::SPARE_FRACTION], 1.0);
        assert_eq!(f[0], 1.0);
        assert_eq!(f[FeatureSchema::ALLOCATED_TOKENS], 1.0);
    }

    #[test]
    fn shift_sku_moves_fractions_and_counts() {
        let mut f = vec![0.0; FeatureSchema::WIDTH];
        let from = SkuGeneration::Gen3_5;
        let to = SkuGeneration::Gen5_2;
        f[FeatureSchema::sku_fraction_index(from)] = 0.4;
        f[FeatureSchema::sku_fraction_index(to)] = 0.1;
        f[FeatureSchema::sku_vertex_count_index(from)] = (100.0f64).ln_1p();
        f[FeatureSchema::sku_vertex_count_index(to)] = (20.0f64).ln_1p();
        Scenario::ShiftSku { from, to }.apply(&mut f);
        assert_eq!(f[FeatureSchema::sku_fraction_index(from)], 0.0);
        assert!((f[FeatureSchema::sku_fraction_index(to)] - 0.5).abs() < 1e-12);
        assert_eq!(f[FeatureSchema::sku_vertex_count_index(from)], 0.0);
        assert!((f[FeatureSchema::sku_vertex_count_index(to)] - (120.0f64).ln_1p()).abs() < 1e-9);
    }

    #[test]
    fn load_balance_flattens_utilization() {
        let mut f = vec![0.3; FeatureSchema::WIDTH];
        Scenario::PerfectLoadBalance { level: 0.55 }.apply(&mut f);
        for i in FeatureSchema::util_std_indices() {
            assert_eq!(f[i], 0.0);
        }
        for g in SkuGeneration::ALL {
            assert_eq!(f[FeatureSchema::util_mean_index(g)], 0.55);
        }
        assert_eq!(f[FeatureSchema::CLUSTER_LOAD], 0.55);
        // Unrelated features untouched.
        assert_eq!(f[FeatureSchema::ALLOCATED_TOKENS], 0.3);
    }

    #[test]
    fn transition_matrix_accounting() {
        let mut m = TransitionMatrix::new(3);
        m.counts[0][0] = 10;
        m.counts[2][1] = 5;
        m.counts[2][2] = 15;
        assert_eq!(m.total(), 30);
        assert_eq!(m.n_changed(), 5);
        let top = m.top_transitions();
        assert_eq!(top.len(), 1);
        let (from, to, count, pct) = top[0];
        assert_eq!((from, to, count), (2, 1, 5));
        assert!((pct - 25.0).abs() < 1e-9);
    }

    #[test]
    fn scenario_names() {
        assert_eq!(Scenario::DisableSpareTokens.name(), "disable-spare-tokens");
        assert_eq!(
            Scenario::ShiftSku {
                from: SkuGeneration::Gen3_5,
                to: SkuGeneration::Gen5_2
            }
            .name(),
            "shift-sku-Gen3.5-to-Gen5.2"
        );
        assert_eq!(
            Scenario::PerfectLoadBalance { level: 0.5 }.name(),
            "perfect-load-balance@0.50"
        );
    }
}
