//! Posterior-likelihood shape assignment (§5.2, Eqs. 1–9).
//!
//! Given a job group's runtime observations and the catalog of `K`
//! pre-defined shape PMFs `θ^i`, the posterior log-likelihood of cluster
//! `z_i` is (up to a shared constant, with a non-informative prior):
//!
//! ```text
//! log p(z_i | x_1..x_N) ∝ Σ_n log θ^i_{h(x_n)}      (Eq. 8, counts form)
//!                       ∝ Σ_h φ_h · log θ^i_h       (Eq. 9, PMF form)
//! ```
//!
//! The counts form (Eq. 8) is *adaptive to sample size*: more observations
//! sharpen the posterior. The PMF form (Eq. 9) is the sample-size-free dot
//! product between the group's empirical PMF and the catalog's log-PMFs.
//! Catalog probabilities are floored at `EPSILON` so empty bins cannot veto
//! a cluster outright (the paper's smoothed PMFs are implicitly non-zero).

use rv_stats::{Histogram, Pmf};

use crate::shapes::ShapeCatalog;

/// Probability floor applied to catalog bins before taking logs (guards
/// against degenerate zero bins after mixing).
pub const EPSILON: f64 = 1e-12;

/// Uniform-mixture weight applied to catalog PMFs before taking logs.
///
/// The catalog PMFs are only locally smoothed, so bins far from a shape's
/// support carry zero mass; with a bare epsilon floor a *single* stray
/// observation would contribute a ~−20-nat penalty and dominate dozens of
/// conforming observations, making assignments wildly unstable between
/// observation windows. Mixing with `α · uniform` caps the penalty a stray
/// sample can inflict (Laplace smoothing of the catalog, the standard
/// treatment of zero-probability bins in multinomial likelihoods).
pub const SMOOTHING_ALPHA: f64 = 0.05;

/// Log of the uniform-mixed catalog bin probabilities for shape `i`.
fn mixed_log_probs(catalog: &ShapeCatalog, i: usize) -> Vec<f64> {
    let h = catalog.spec.n_bins as f64;
    catalog
        .pmf(i)
        .probs()
        .iter()
        .map(|&p| {
            ((1.0 - SMOOTHING_ALPHA) * p + SMOOTHING_ALPHA / h)
                .max(EPSILON)
                .ln()
        })
        .collect()
}

/// Eq. 8: log-likelihood of each catalog shape given raw normalized
/// observations (scales with `N` — adaptive to sample size).
pub fn log_likelihoods(catalog: &ShapeCatalog, normalized_samples: &[f64]) -> Vec<f64> {
    assert!(
        !normalized_samples.is_empty(),
        "need at least one observation"
    );
    let spec = catalog.spec;
    let mut counts = vec![0.0f64; spec.n_bins];
    for &x in normalized_samples {
        counts[spec.bin_index(x)] += 1.0;
    }
    (0..catalog.n_shapes())
        .map(|i| {
            let log_theta = mixed_log_probs(catalog, i);
            counts
                .iter()
                .zip(&log_theta)
                .map(|(&n_h, &lt)| n_h * lt)
                .sum()
        })
        .collect()
}

/// Eq. 9: log-likelihood of each catalog shape given a group PMF `φ`
/// (normalized per observation, so independent of sample size).
pub fn log_likelihoods_pmf(catalog: &ShapeCatalog, phi: &Pmf) -> Vec<f64> {
    assert_eq!(
        phi.spec(),
        catalog.spec,
        "group PMF must share the catalog bin grid"
    );
    (0..catalog.n_shapes())
        .map(|i| {
            let log_theta = mixed_log_probs(catalog, i);
            phi.probs()
                .iter()
                .zip(&log_theta)
                .map(|(&p, &lt)| p * lt)
                .sum()
        })
        .collect()
}

/// Assigns raw normalized observations to the most likely shape. Returns
/// `(shape_id, log_likelihoods)`.
pub fn assign_samples(catalog: &ShapeCatalog, normalized_samples: &[f64]) -> (usize, Vec<f64>) {
    let lls = log_likelihoods(catalog, normalized_samples);
    (argmax(&lls), lls)
}

/// Assigns a group (given its raw runtimes and historic median) to the most
/// likely shape, normalizing internally.
pub fn assign_group(
    catalog: &ShapeCatalog,
    runtimes: &[f64],
    historic_median: f64,
) -> (usize, Vec<f64>) {
    let normalized = rv_stats::normalize_all(catalog.normalization, runtimes, historic_median);
    assign_samples(catalog, &normalized)
}

/// Posterior probabilities over shapes from log-likelihoods (softmax with a
/// flat prior — Eq. 5 normalized).
pub fn posterior_probs(log_likelihoods: &[f64]) -> Vec<f64> {
    let max = log_likelihoods
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let mut p: Vec<f64> = log_likelihoods.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = p.iter().sum();
    for v in &mut p {
        *v /= sum;
    }
    p
}

/// The empirical PMF of a group's normalized samples on the catalog grid
/// (the `φ` of Eq. 9) — exposed for Fig 6-style reports.
pub fn group_pmf(catalog: &ShapeCatalog, normalized_samples: &[f64]) -> Pmf {
    Histogram::from_samples(catalog.spec, normalized_samples.iter().copied()).to_pmf()
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite log-likelihoods"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_stats::{BinSpec, Normalization};

    use crate::shapes::ShapeStats;

    /// Catalog with a tight shape near ratio 1 and a wide shape.
    fn catalog() -> ShapeCatalog {
        let spec = BinSpec::ratio();
        let tight: Vec<f64> = (0..2000).map(|i| 0.97 + (i % 60) as f64 * 0.001).collect();
        let wide: Vec<f64> = (0..2000).map(|i| 0.3 + (i % 100) as f64 * 0.05).collect();
        let mk = |samples: &[f64]| {
            (
                Histogram::from_samples(spec, samples.iter().copied()).to_pmf(),
                ShapeStats::from_samples(samples, &spec, 1).expect("non-empty"),
            )
        };
        let (p1, s1) = mk(&tight);
        let (p2, s2) = mk(&wide);
        ShapeCatalog::new(Normalization::Ratio, spec, vec![p1, p2], vec![s1, s2])
    }

    #[test]
    fn assigns_matching_shape() {
        let c = catalog();
        let tight_obs: Vec<f64> = (0..15).map(|i| 0.98 + i as f64 * 0.002).collect();
        let (shape, lls) = assign_samples(&c, &tight_obs);
        assert_eq!(shape, 0);
        assert!(lls[0] > lls[1]);

        let wide_obs: Vec<f64> = (0..15).map(|i| 0.5 + i as f64 * 0.2).collect();
        let (shape, _) = assign_samples(&c, &wide_obs);
        assert_eq!(shape, 1);
    }

    #[test]
    fn counts_form_scales_with_n() {
        let c = catalog();
        let obs: Vec<f64> = vec![1.0; 10];
        let ll10 = log_likelihoods(&c, &obs);
        let obs20: Vec<f64> = vec![1.0; 20];
        let ll20 = log_likelihoods(&c, &obs20);
        assert!((ll20[0] - 2.0 * ll10[0]).abs() < 1e-6, "adaptive to N");
    }

    #[test]
    fn pmf_form_matches_counts_form_up_to_n() {
        let c = catalog();
        let obs: Vec<f64> = (0..40).map(|i| 0.9 + i as f64 * 0.005).collect();
        let counts_ll = log_likelihoods(&c, &obs);
        let pmf_ll = log_likelihoods_pmf(&c, &group_pmf(&c, &obs));
        for (a, b) in counts_ll.iter().zip(&pmf_ll) {
            assert!((a - b * obs.len() as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn assign_group_normalizes_internally() {
        let c = catalog();
        // Raw runtimes around 200 s with median 200 → ratios near 1 → tight.
        let runtimes: Vec<f64> = (0..12).map(|i| 196.0 + i as f64).collect();
        let (shape, _) = assign_group(&c, &runtimes, 200.0);
        assert_eq!(shape, 0);
    }

    #[test]
    fn posterior_sums_to_one_and_orders() {
        let p = posterior_probs(&[-400.0, -420.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1]);
        // Extreme gaps do not overflow.
        let p = posterior_probs(&[-1e6, -10.0]);
        assert!(p[1] > 0.999);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn outlier_heavy_group_prefers_outlier_shape() {
        let spec = BinSpec::ratio();
        let clean: Vec<f64> = vec![1.0; 2000];
        let mut tailed: Vec<f64> = vec![1.0; 1900];
        tailed.extend(vec![12.0; 100]); // 5% outliers
        let mk = |s: &[f64]| {
            (
                Histogram::from_samples(spec, s.iter().copied()).to_pmf(),
                ShapeStats::from_samples(s, &spec, 1).expect("non-empty"),
            )
        };
        let (p1, s1) = mk(&clean);
        let (p2, s2) = mk(&tailed);
        let c = ShapeCatalog::new(Normalization::Ratio, spec, vec![p1, p2], vec![s1, s2]);
        // Find which catalog slot is the tailed shape after IQR ranking.
        let tailed_idx = (0..2)
            .max_by(|&a, &b| {
                c.stats(a)
                    .outlier_prob
                    .partial_cmp(&c.stats(b).outlier_prob)
                    .expect("finite")
            })
            .expect("two shapes");
        // A group with one visible outlier out of 10 runs.
        let mut obs = vec![1.0; 9];
        obs.push(15.0);
        let (shape, _) = assign_samples(&c, &obs);
        assert_eq!(shape, tailed_idx);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn empty_observations_panic() {
        log_likelihoods(&catalog(), &[]);
    }
}
