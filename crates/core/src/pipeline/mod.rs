//! The staged artifact pipeline behind [`Framework::run`].
//!
//! A framework run is a linear DAG of stages
//!
//! ```text
//! Simulate → Datasets → Characterize → Label → Train → Evaluate
//!                        (per normalization: Ratio and Delta)
//! ```
//!
//! Each stage produces an artifact tagged with a deterministic
//! [`Fingerprint`]: an FNV-1a hash of exactly the configuration subset that
//! can change the stage's output, chained with its upstream fingerprints.
//! With an [`ArtifactCache`] attached, a stage whose fingerprint matches an
//! on-disk artifact loads it instead of recomputing; because fingerprints
//! chain, editing a config field invalidates that stage *and everything
//! downstream* while everything upstream is reused. Changing only
//! `PredictorConfig`, for example, re-trains and re-evaluates against cached
//! telemetry and characterizations; changing the simulation seed invalidates
//! every artifact.
//!
//! Observability contract: `phase.*` spans wrap only the compute closures,
//! so an uncached run produces exactly the spans, counters, and trace events
//! it always has, while a warm cached run shows zero `phase.simulate` /
//! `phase.characterize` spans — the test-visible signal that work was
//! skipped. Stage-boundary effects (row counters, accuracy gauges, the
//! `framework.pipeline` event) fire whether the artifact was computed or
//! loaded.

pub mod artifact;
mod cache;
pub mod fault;
mod fingerprint;

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Cursor};

use rv_learn::{accuracy, confusion_matrix, LineReader, SerializeError};
use rv_scope::{JobGroupKey, WorkloadGenerator};
use rv_sim::Cluster;
use rv_stats::Normalization;
use rv_telemetry::{
    collect_telemetry, CampaignError, Dataset, DatasetSpec, FeatureExtractor, GroupHistory,
    TelemetryStore,
};

use crate::characterize::{characterize, CharacterizeConfig};
use crate::framework::{Framework, FrameworkConfig, NormalizationPipeline};
use crate::predictor::{label_groups, ShapePredictor};

pub use artifact::{DatasetsArtifact, EvaluationArtifact, LabelsArtifact};
pub use cache::{ArtifactCache, ARTIFACT_VERSION};
pub use fault::{audit, AuditReport, FaultConfig, FaultGuard, FaultPlan};
pub use fingerprint::Fingerprint;

/// Why a pipeline run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The simulator or campaign configuration was rejected.
    Campaign(CampaignError),
    /// Characterization needs at least `k` groups meeting the support
    /// threshold, and the assembled D1 has fewer.
    TooFewGroups {
        /// Groups available at the required support.
        available: usize,
        /// The configured shape count `k`.
        needed: usize,
        /// The support threshold applied.
        min_support: usize,
    },
    /// No D2 row belongs to a labeled group, so training has no data.
    NoLabeledTrainingRows {
        /// The normalization whose pipeline failed.
        normalization: Normalization,
    },
    /// No D3 row belongs to a labeled group, so evaluation has no data.
    NoLabeledTestInstances {
        /// The normalization whose pipeline failed.
        normalization: Normalization,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Campaign(e) => write!(f, "{e}"),
            Self::TooFewGroups {
                available,
                needed,
                min_support,
            } => write!(
                f,
                "only {available} groups with support >= {min_support}, \
                 need at least k = {needed}"
            ),
            Self::NoLabeledTrainingRows { normalization } => {
                write!(
                    f,
                    "no labeled training rows ({normalization} normalization)"
                )
            }
            Self::NoLabeledTestInstances { normalization } => {
                write!(
                    f,
                    "no labeled test instances ({normalization} normalization)"
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Campaign(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CampaignError> for PipelineError {
    fn from(e: CampaignError) -> Self {
        Self::Campaign(e)
    }
}

const CHARACTERIZE_STAGES: [&str; 2] = ["characterize-ratio", "characterize-delta"];
const LABEL_STAGES: [&str; 2] = ["label-ratio", "label-delta"];
const TRAIN_STAGES: [&str; 2] = ["train-ratio", "train-delta"];
const EVALUATE_STAGES: [&str; 2] = ["evaluate-ratio", "evaluate-delta"];

fn norm_index(normalization: Normalization) -> usize {
    match normalization {
        Normalization::Ratio => 0,
        Normalization::Delta => 1,
    }
}

/// The fingerprint of every stage of a run, per normalization where the
/// stage splits. Per-normalization arrays are indexed `[Ratio, Delta]`
/// (the order of [`Normalization::ALL`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageFingerprints {
    /// Campaign simulation.
    pub simulate: Fingerprint,
    /// Dataset assembly + group history.
    pub datasets: Fingerprint,
    /// Shape-catalog clustering.
    pub characterize: [Fingerprint; 2],
    /// Posterior-likelihood labeling.
    pub label: [Fingerprint; 2],
    /// Classifier training.
    pub train: [Fingerprint; 2],
    /// Test-set evaluation.
    pub evaluate: [Fingerprint; 2],
}

fn characterize_config(
    config: &FrameworkConfig,
    normalization: Normalization,
) -> CharacterizeConfig {
    CharacterizeConfig {
        k: config.k,
        min_support: config.characterize_support,
        ..CharacterizeConfig::paper(normalization)
    }
}

/// Computes every stage fingerprint for `config`.
///
/// Each stage hashes a version tag plus the config subset it consumes,
/// chained onto its upstream fingerprint, so edits invalidate exactly the
/// edited stage and its downstream.
pub fn stage_fingerprints(config: &FrameworkConfig) -> StageFingerprints {
    // Hash the generator config as the simulate stage actually uses it.
    let mut generator = config.generator.clone();
    generator.window_days_hint = config.campaign.window_days;
    let simulate = Fingerprint::of_debug(&(
        "simulate-v1",
        &generator,
        &config.cluster,
        &config.sim,
        &config.campaign,
    ));
    let datasets = simulate.combine(Fingerprint::of_debug(&(
        "datasets-v1",
        config.characterize_support,
        config.campaign.window_days,
    )));
    let mut characterize = [datasets; 2];
    let mut label = [datasets; 2];
    let mut train = [datasets; 2];
    let mut evaluate = [datasets; 2];
    for normalization in Normalization::ALL {
        let i = norm_index(normalization);
        characterize[i] = datasets.combine(Fingerprint::of_debug(&(
            "characterize-v1",
            characterize_config(config, normalization),
        )));
        label[i] = characterize[i].combine(Fingerprint::of_debug(&"label-v1"));
        train[i] = label[i].combine(Fingerprint::of_debug(&(
            "train-v1",
            config.predictor,
            config.k,
        )));
        evaluate[i] = train[i].combine(Fingerprint::of_debug(&"evaluate-v1"));
    }
    StageFingerprints {
        simulate,
        datasets,
        characterize,
        label,
        train,
        evaluate,
    }
}

/// Runs one stage through the cache: load on fingerprint match, otherwise
/// compute and persist. Without a cache this is exactly the compute closure
/// — no cache counters are touched, keeping uncached metric snapshots
/// bit-identical to the pre-pipeline framework.
fn cached<T>(
    cache: Option<&ArtifactCache>,
    stage: &'static str,
    fp: Fingerprint,
    read: impl Fn(&mut LineReader<Cursor<Vec<u8>>>) -> Result<T, SerializeError>,
    write: impl FnOnce(&mut Vec<u8>, &T) -> io::Result<()>,
    compute: impl FnOnce() -> Result<T, PipelineError>,
) -> Result<T, PipelineError> {
    let Some(cache) = cache else {
        return compute();
    };
    if let Some(value) = cache.load(stage, fp, read) {
        return Ok(value);
    }
    let value = compute()?;
    if let Err(e) = cache.store(stage, fp, &value, write) {
        eprintln!("warning: failed to persist `{stage}` artifact: {e}");
    }
    Ok(value)
}

/// Runs the full study as a staged pipeline, reusing cached artifacts where
/// fingerprints match.
pub fn run_staged(
    config: FrameworkConfig,
    cache: Option<&ArtifactCache>,
) -> Result<Framework, PipelineError> {
    // Not a `phase.` span: it encloses the phases below, and the report's
    // share column assumes `phase.*` spans are disjoint.
    let _run_span = rv_obs::span("framework.run");
    let fps = stage_fingerprints(&config);

    let store = cached(
        cache,
        "simulate",
        fps.simulate,
        artifact::read_telemetry,
        artifact::write_telemetry,
        || {
            let _span = rv_obs::span("phase.simulate");
            let mut generator_config = config.generator.clone();
            // Keep late-starting ("new job") templates inside the campaign.
            generator_config.window_days_hint = config.campaign.window_days;
            let generator = WorkloadGenerator::new(generator_config);
            let cluster = Cluster::new(config.cluster.clone());
            Ok(collect_telemetry(
                &generator,
                &cluster,
                &config.sim,
                &config.campaign,
            )?)
        },
    )?;
    rv_obs::counter("framework.telemetry_rows").add(store.len() as u64);

    let datasets = cached(
        cache,
        "datasets",
        fps.datasets,
        artifact::read_datasets,
        artifact::write_datasets,
        || {
            let _span = rv_obs::span("phase.datasets");
            let [d1_spec, d2_spec, d3_spec] = DatasetSpec::paper_trio(config.campaign.window_days);
            let d1 = Dataset::assemble(
                &store,
                DatasetSpec {
                    min_support: config.characterize_support,
                    ..d1_spec
                },
            );
            let d2 = Dataset::assemble(&store, d2_spec);
            let d3 = Dataset::assemble(&store, d3_spec);
            let history = GroupHistory::compute(&d1.store);
            Ok(DatasetsArtifact {
                d1,
                d2,
                d3,
                history,
            })
        },
    )?;
    rv_obs::counter("framework.d1_groups").add(datasets.d1.n_groups() as u64);

    let ratio = norm_pipeline(
        Normalization::Ratio,
        &config,
        cache,
        &fps,
        &store,
        &datasets,
    )?;
    let delta = norm_pipeline(
        Normalization::Delta,
        &config,
        cache,
        &fps,
        &store,
        &datasets,
    )?;

    let DatasetsArtifact {
        d1,
        d2,
        d3,
        history,
    } = datasets;
    Ok(Framework {
        config,
        store,
        d1,
        d2,
        d3,
        history,
        ratio,
        delta,
    })
}

fn norm_pipeline(
    normalization: Normalization,
    config: &FrameworkConfig,
    cache: Option<&ArtifactCache>,
    fps: &StageFingerprints,
    store: &TelemetryStore,
    datasets: &DatasetsArtifact,
) -> Result<NormalizationPipeline, PipelineError> {
    let i = norm_index(normalization);

    let characterization = cached(
        cache,
        CHARACTERIZE_STAGES[i],
        fps.characterize[i],
        artifact::read_characterization,
        artifact::write_characterization,
        || {
            // D1 assembly already enforces the support threshold, so its
            // group count is exactly what characterization can cluster.
            let available = datasets.d1.n_groups();
            if available < config.k {
                return Err(PipelineError::TooFewGroups {
                    available,
                    needed: config.k,
                    min_support: config.characterize_support,
                });
            }
            let _span = rv_obs::span("phase.characterize");
            Ok(characterize(
                &datasets.d1.store,
                &characterize_config(config, normalization),
            ))
        },
    )?;

    let labels = cached(
        cache,
        LABEL_STAGES[i],
        fps.label[i],
        artifact::read_labels,
        artifact::write_labels,
        || {
            // Labels are anchored to *long-interval* observations (§2,
            // C2/C4: "we develop the model using the observations of
            // distributions over a long time interval"): a group's training
            // label uses every observation up to the end of the training
            // window, and the test truth uses the group's full observed
            // history. Short-window re-labeling would make the target itself
            // noisy for groups near a shape boundary.
            let _span = rv_obs::span("phase.label");
            let catalog = &characterization.catalog;
            let upto_train_end = store.window_view(0.0, datasets.d2.spec.to_days * 86_400.0);
            let train_all = label_groups(catalog, &upto_train_end, &datasets.history);
            let test_all = label_groups(catalog, &store.view(), &datasets.history);
            let train: BTreeMap<JobGroupKey, usize> = datasets
                .d2
                .store
                .group_keys()
                .filter_map(|k| train_all.get(k).map(|&l| (k.clone(), l)))
                .collect();
            let test: BTreeMap<JobGroupKey, usize> = datasets
                .d3
                .store
                .group_keys()
                .filter_map(|k| test_all.get(k).map(|&l| (k.clone(), l)))
                .collect();
            Ok(LabelsArtifact { train, test })
        },
    )?;

    let predictor = cached(
        cache,
        TRAIN_STAGES[i],
        fps.train[i],
        artifact::read_predictor,
        artifact::write_predictor,
        || {
            if !datasets
                .d2
                .store
                .rows()
                .iter()
                .any(|r| labels.train.contains_key(&r.group))
            {
                return Err(PipelineError::NoLabeledTrainingRows { normalization });
            }
            let _span = rv_obs::span("phase.train");
            let (predictor, _n_train) = ShapePredictor::train(
                &datasets.d2.store,
                &labels.train,
                FeatureExtractor::new(datasets.history.clone()),
                config.k,
                &config.predictor,
            );
            Ok(predictor)
        },
    )?;

    let evaluation = cached(
        cache,
        EVALUATE_STAGES[i],
        fps.evaluate[i],
        artifact::read_evaluation,
        artifact::write_evaluation,
        || {
            // Instance-level evaluation on D3.
            let _span = rv_obs::span("phase.evaluate");
            let mut truth = Vec::new();
            let mut predicted = Vec::new();
            for row in datasets.d3.store.rows() {
                if let Some(&label) = labels.test.get(&row.group) {
                    truth.push(label);
                    predicted.push(predictor.predict_row(row));
                }
            }
            if truth.is_empty() {
                return Err(PipelineError::NoLabeledTestInstances { normalization });
            }
            Ok(EvaluationArtifact {
                test_accuracy: accuracy(&truth, &predicted),
                confusion: confusion_matrix(&truth, &predicted, config.k),
                n_test_instances: truth.len(),
            })
        },
    )?;

    rv_obs::counter("framework.pipelines").inc();
    rv_obs::gauge(&format!(
        "framework.accuracy.{}",
        normalization.name().to_ascii_lowercase()
    ))
    .set(evaluation.test_accuracy);
    rv_obs::emit(
        "framework.pipeline",
        &[
            (
                "normalization",
                rv_obs::FieldValue::from(normalization.name()),
            ),
            (
                "test_accuracy",
                rv_obs::FieldValue::from(evaluation.test_accuracy),
            ),
            (
                "test_instances",
                rv_obs::FieldValue::from(evaluation.n_test_instances),
            ),
        ],
    );

    Ok(NormalizationPipeline {
        normalization,
        characterization,
        train_labels: labels.train,
        test_labels: labels.test,
        predictor,
        test_accuracy: evaluation.test_accuracy,
        confusion: evaluation.confusion,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_across_calls() {
        let a = stage_fingerprints(&FrameworkConfig::small());
        let b = stage_fingerprints(&FrameworkConfig::small());
        assert_eq!(a, b);
    }

    #[test]
    fn predictor_change_only_touches_downstream() {
        let base = FrameworkConfig::small();
        let mut tweaked = base.clone();
        tweaked.predictor.probe_rounds += 1;
        let a = stage_fingerprints(&base);
        let b = stage_fingerprints(&tweaked);
        assert_eq!(a.simulate, b.simulate);
        assert_eq!(a.datasets, b.datasets);
        assert_eq!(a.characterize, b.characterize);
        assert_eq!(a.label, b.label);
        assert_ne!(a.train, b.train);
        assert_ne!(a.evaluate, b.evaluate);
    }

    #[test]
    fn seed_change_invalidates_everything() {
        let base = FrameworkConfig::small();
        let mut tweaked = base.clone();
        tweaked.generator.seed = tweaked.generator.seed.wrapping_add(1);
        let a = stage_fingerprints(&base);
        let b = stage_fingerprints(&tweaked);
        assert_ne!(a.simulate, b.simulate);
        assert_ne!(a.datasets, b.datasets);
        for i in 0..2 {
            assert_ne!(a.characterize[i], b.characterize[i]);
            assert_ne!(a.label[i], b.label[i]);
            assert_ne!(a.train[i], b.train[i]);
            assert_ne!(a.evaluate[i], b.evaluate[i]);
        }
    }

    #[test]
    fn normalizations_get_distinct_stage_fingerprints() {
        let fps = stage_fingerprints(&FrameworkConfig::small());
        assert_ne!(fps.characterize[0], fps.characterize[1]);
        assert_ne!(fps.label[0], fps.label[1]);
        assert_ne!(fps.train[0], fps.train[1]);
        assert_ne!(fps.evaluate[0], fps.evaluate[1]);
    }
}
