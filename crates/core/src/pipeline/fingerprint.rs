//! Deterministic stage fingerprints.
//!
//! Every pipeline stage's output is tagged with a 64-bit FNV-1a hash of the
//! configuration subset that can change it, chained with its upstream
//! stages' fingerprints. No wall-clock or machine state enters the hash, so
//! same-seed runs produce the same fingerprints on any host at any thread
//! width — the property the [`crate::pipeline::ArtifactCache`] relies on to
//! reuse artifacts across processes.
//!
//! Config structs are hashed through their `Debug` rendering: every config
//! in the chain derives `Debug`, and Rust formats `f64` shortest-round-trip,
//! so distinct values always render distinctly and renames/reorderings of
//! fields change the hash (a conservative, correct invalidation).

use std::fmt;

/// A 64-bit FNV-1a content fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// FNV-1a over raw bytes.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let mut h = Self::OFFSET;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        Self(h)
    }

    /// FNV-1a over a value's `Debug` rendering.
    pub fn of_debug<T: fmt::Debug>(value: &T) -> Self {
        Self::of_bytes(format!("{value:?}").as_bytes())
    }

    /// Chains another fingerprint into this one (order-sensitive), used to
    /// mix upstream stage fingerprints into a downstream stage's.
    #[must_use]
    pub fn combine(self, other: Fingerprint) -> Fingerprint {
        let mut h = self.0;
        for b in other.0.to_be_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        Fingerprint(h)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("") is the offset basis; FNV-1a("a") is a published vector.
        assert_eq!(Fingerprint::of_bytes(b"").0, 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fingerprint::of_bytes(b"a").0, 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn debug_hash_distinguishes_values() {
        assert_ne!(
            Fingerprint::of_debug(&(1.0f64, 2u32)),
            Fingerprint::of_debug(&(1.0000000000000002f64, 2u32))
        );
        assert_eq!(
            Fingerprint::of_debug(&(1.0f64, 2u32)),
            Fingerprint::of_debug(&(1.0f64, 2u32))
        );
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = Fingerprint::of_bytes(b"a");
        let b = Fingerprint::of_bytes(b"b");
        assert_ne!(a.combine(b), b.combine(a));
        assert_ne!(a.combine(b), a);
    }

    #[test]
    fn displays_as_16_hex_digits() {
        assert_eq!(format!("{}", Fingerprint(0xab)), "00000000000000ab");
    }
}
