//! Body codecs for staged pipeline artifacts.
//!
//! Each stage output has a `write_*` / `read_*` pair producing the
//! line-oriented text format shared with `rv_learn::serialize`: one record
//! per line, comma-separated, tag first, counts before repeated blocks, and
//! floats through `Display` (shortest-round-trip, so a write→read cycle is
//! bit-lossless). The cache layer prepends a `rv-artifact,v1,<stage>,<fp>`
//! header line; the codecs here are header-free so round-trip tests can
//! exercise them directly.
//!
//! Readers validate before constructing: corrupt files must surface as
//! [`SerializeError`]s (which the cache treats as misses), never as panics
//! inside constructors like `Pmf::from_probs` or `ShapeCatalog::new`.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

use rv_learn::serialize::write_list;
use rv_learn::{
    ConfusionMatrix, FeatureSelection, GaussianNb, GbdtClassifier, LineReader,
    RandomForestClassifier, SerializeError,
};
use rv_scope::{JobGroupKey, PlanSignature};
use rv_stats::{BinSpec, Normalization, Pmf};
use rv_telemetry::{
    read_store, write_store, Dataset, DatasetSpec, FeatureExtractor, GroupHistory, GroupStats,
    TelemetryStore,
};

use crate::characterize::Characterization;
use crate::predictor::{FittedModel, ShapePredictor};
use crate::shapes::{ShapeCatalog, ShapeStats};

/// Output of the `datasets` stage: the Table 1 trio plus D1 group history.
#[derive(Debug, Clone)]
pub struct DatasetsArtifact {
    /// Shape-catalog dataset (long window, high support).
    pub d1: Dataset,
    /// Training dataset.
    pub d2: Dataset,
    /// Test dataset.
    pub d3: Dataset,
    /// Per-group historic statistics over D1.
    pub history: GroupHistory,
}

/// Output of a `label` stage: shape labels for train and test groups.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelsArtifact {
    /// Labels restricted to groups present in D2.
    pub train: BTreeMap<JobGroupKey, usize>,
    /// Labels restricted to groups present in D3.
    pub test: BTreeMap<JobGroupKey, usize>,
}

/// Output of an `evaluate` stage.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationArtifact {
    /// Test-set accuracy.
    pub test_accuracy: f64,
    /// Test-set confusion matrix (`k × k`).
    pub confusion: ConfusionMatrix,
    /// Number of labeled test instances evaluated.
    pub n_test_instances: usize,
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

fn parse_key<R: BufRead>(
    r: &LineReader<R>,
    name: &str,
    sig: &str,
) -> Result<JobGroupKey, SerializeError> {
    let sig = u64::from_str_radix(sig, 16)
        .map_err(|e| r.err(format!("bad plan signature `{sig}`: {e}")))?;
    Ok(JobGroupKey::new(name, PlanSignature(sig)))
}

/// The 28 `f64` statistics of a [`GroupStats`], in serialization order.
fn stats_to_vec(s: &GroupStats) -> Vec<f64> {
    let mut v = vec![
        s.median_runtime_s,
        s.mean_runtime_s,
        s.runtime_std_s,
        s.data_read_avg,
        s.data_read_std,
        s.temp_data_avg,
        s.vertices_avg,
        s.token_min_avg,
        s.token_max_avg,
        s.token_avg_avg,
        s.token_avg_std,
        s.spare_avg,
        s.spare_std,
        s.preemption_rate,
        s.cpu_seconds_avg,
        s.peak_memory_avg,
    ];
    v.extend_from_slice(&s.sku_fraction_avg);
    v.extend_from_slice(&s.sku_vertex_count_avg);
    v
}

fn stats_from_vec(n_runs: usize, v: &[f64]) -> GroupStats {
    let mut sku_fraction_avg = [0.0; 6];
    let mut sku_vertex_count_avg = [0.0; 6];
    sku_fraction_avg.copy_from_slice(&v[16..22]);
    sku_vertex_count_avg.copy_from_slice(&v[22..28]);
    GroupStats {
        n_runs,
        median_runtime_s: v[0],
        mean_runtime_s: v[1],
        runtime_std_s: v[2],
        data_read_avg: v[3],
        data_read_std: v[4],
        temp_data_avg: v[5],
        vertices_avg: v[6],
        token_min_avg: v[7],
        token_max_avg: v[8],
        token_avg_avg: v[9],
        token_avg_std: v[10],
        spare_avg: v[11],
        spare_std: v[12],
        preemption_rate: v[13],
        cpu_seconds_avg: v[14],
        peak_memory_avg: v[15],
        sku_fraction_avg,
        sku_vertex_count_avg,
    }
}

fn write_history<W: Write>(w: &mut W, history: &GroupHistory) -> io::Result<()> {
    writeln!(w, "history,{}", history.len())?;
    for (key, s) in history.iter() {
        write!(
            w,
            "group,{},{:016x},{}",
            key.normalized_name, key.signature.0, s.n_runs
        )?;
        write_list(w, &stats_to_vec(s))?;
    }
    Ok(())
}

fn read_history<R: BufRead>(r: &mut LineReader<R>) -> Result<GroupHistory, SerializeError> {
    let header = r.expect_tag("history")?;
    if header.len() != 1 {
        return Err(r.err("history header needs a group count"));
    }
    let n: usize = r.parse("history group count", &header[0])?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let f = r.expect_tag("group")?;
        if f.len() != 3 + 28 {
            return Err(r.err("group record needs name,signature,n_runs and 28 statistics"));
        }
        let key = parse_key(r, &f[0], &f[1])?;
        let n_runs: usize = r.parse("n_runs", &f[2])?;
        let stats = r.parse_list_n("group statistic", &f[3..], 28)?;
        entries.push((key, stats_from_vec(n_runs, &stats)));
    }
    Ok(entries.into_iter().collect())
}

/// Writes a telemetry store as a row count followed by the CSV export
/// (header line + rows).
fn write_embedded_store<W: Write>(w: &mut W, store: &TelemetryStore) -> io::Result<()> {
    writeln!(w, "rows,{}", store.len())?;
    write_store(store, w)
}

/// Reads an embedded store: the CSV occupies exactly `n_rows + 1` lines.
fn read_embedded_store<R: BufRead>(
    r: &mut LineReader<R>,
) -> Result<TelemetryStore, SerializeError> {
    let header = r.expect_tag("rows")?;
    if header.len() != 1 {
        return Err(r.err("rows header needs a count"));
    }
    let n_rows: usize = r.parse("row count", &header[0])?;
    let first_line = r.line();
    let mut csv = String::new();
    for _ in 0..n_rows + 1 {
        csv.push_str(&r.next_line()?);
        csv.push('\n');
    }
    read_store(io::BufReader::new(csv.as_bytes())).map_err(|e| {
        // Re-anchor the embedded parser's line number in the artifact file.
        SerializeError::at(
            first_line + e.line,
            format!("embedded store: {}", e.message),
        )
    })
}

fn label_map_key(key: &JobGroupKey) -> String {
    format!("{},{:016x}", key.normalized_name, key.signature.0)
}

fn write_label_map<W: Write>(
    w: &mut W,
    tag: &str,
    labels: &BTreeMap<JobGroupKey, usize>,
) -> io::Result<()> {
    writeln!(w, "{tag},{}", labels.len())?;
    for (key, shape) in labels {
        writeln!(w, "label,{},{shape}", label_map_key(key))?;
    }
    Ok(())
}

fn read_label_map<R: BufRead>(
    r: &mut LineReader<R>,
    tag: &str,
) -> Result<BTreeMap<JobGroupKey, usize>, SerializeError> {
    let header = r.expect_tag(tag)?;
    if header.len() != 1 {
        return Err(r.err(format!("{tag} header needs a count")));
    }
    let n: usize = r.parse("label count", &header[0])?;
    let mut map = BTreeMap::new();
    for _ in 0..n {
        let f = r.expect_tag("label")?;
        if f.len() != 3 {
            return Err(r.err("label record needs name,signature,shape"));
        }
        let key = parse_key(r, &f[0], &f[1])?;
        let shape: usize = r.parse("shape id", &f[2])?;
        map.insert(key, shape);
    }
    Ok(map)
}

// ---------------------------------------------------------------------------
// Stage codecs
// ---------------------------------------------------------------------------

/// Writes the `simulate` stage output (the full campaign store).
pub fn write_telemetry<W: Write>(w: &mut W, store: &TelemetryStore) -> io::Result<()> {
    write_embedded_store(w, store)
}

/// Reads a store written by [`write_telemetry`].
pub fn read_telemetry<R: BufRead>(r: &mut LineReader<R>) -> Result<TelemetryStore, SerializeError> {
    read_embedded_store(r)
}

/// Writes the `datasets` stage output: three dataset blocks then the D1
/// group history.
pub fn write_datasets<W: Write>(w: &mut W, a: &DatasetsArtifact) -> io::Result<()> {
    for ds in [&a.d1, &a.d2, &a.d3] {
        writeln!(
            w,
            "dataset,{},{},{},{}",
            ds.spec.name, ds.spec.from_days, ds.spec.to_days, ds.spec.min_support
        )?;
        write_embedded_store(w, &ds.store)?;
    }
    write_history(w, &a.history)
}

/// Reads an artifact written by [`write_datasets`].
pub fn read_datasets<R: BufRead>(
    r: &mut LineReader<R>,
) -> Result<DatasetsArtifact, SerializeError> {
    let mut datasets = Vec::with_capacity(3);
    for _ in 0..3 {
        let f = r.expect_tag("dataset")?;
        if f.len() != 4 {
            return Err(r.err("dataset record needs name,from_days,to_days,min_support"));
        }
        let spec = DatasetSpec {
            name: f[0].clone(),
            from_days: r.parse("from_days", &f[1])?,
            to_days: r.parse("to_days", &f[2])?,
            min_support: r.parse("min_support", &f[3])?,
        };
        let store = read_embedded_store(r)?;
        datasets.push(Dataset { spec, store });
    }
    let history = read_history(r)?;
    let mut it = datasets.into_iter();
    Ok(DatasetsArtifact {
        d1: it.next().expect("three datasets"),
        d2: it.next().expect("three datasets"),
        d3: it.next().expect("three datasets"),
        history,
    })
}

/// Writes a `characterize` stage output: the catalog grid and statistics,
/// per-shape PMFs, then group→shape memberships.
pub fn write_characterization<W: Write>(w: &mut W, c: &Characterization) -> io::Result<()> {
    let cat = &c.catalog;
    writeln!(
        w,
        "catalog,{},{},{},{},{},{}",
        cat.normalization.name(),
        cat.spec.lo,
        cat.spec.hi,
        cat.spec.n_bins,
        cat.n_shapes(),
        c.inertia
    )?;
    for i in 0..cat.n_shapes() {
        let s = cat.stats(i);
        writeln!(
            w,
            "shape,{i},{},{},{},{},{},{},{}",
            s.outlier_prob, s.p25, s.p75, s.p95, s.std, s.n_groups, s.n_instances
        )?;
    }
    for i in 0..cat.n_shapes() {
        write!(w, "pmf,{i}")?;
        write_list(w, cat.pmf(i).probs())?;
    }
    writeln!(w, "members,{}", c.memberships.len())?;
    for (key, shape) in &c.memberships {
        writeln!(w, "member,{},{shape}", label_map_key(key))?;
    }
    Ok(())
}

/// Reads an artifact written by [`write_characterization`].
///
/// Shapes were written in the catalog's IQR-ranked order and
/// `ShapeCatalog::new` re-ranks stably, so the reconstructed catalog is
/// identical to the one serialized.
pub fn read_characterization<R: BufRead>(
    r: &mut LineReader<R>,
) -> Result<Characterization, SerializeError> {
    let f = r.expect_tag("catalog")?;
    if f.len() != 6 {
        return Err(r.err("catalog record needs normalization,lo,hi,n_bins,k,inertia"));
    }
    let normalization = match f[0].as_str() {
        "Ratio" => Normalization::Ratio,
        "Delta" => Normalization::Delta,
        other => return Err(r.err(format!("unknown normalization `{other}`"))),
    };
    let spec = BinSpec {
        lo: r.parse("bin lo", &f[1])?,
        hi: r.parse("bin hi", &f[2])?,
        n_bins: r.parse("bin count", &f[3])?,
    };
    if !(spec.lo.is_finite() && spec.hi.is_finite() && spec.lo < spec.hi && spec.n_bins >= 2) {
        return Err(r.err("invalid bin spec"));
    }
    let k: usize = r.parse("shape count", &f[4])?;
    if k == 0 {
        return Err(r.err("catalog must have at least one shape"));
    }
    let inertia: f64 = r.parse("inertia", &f[5])?;
    let mut stats = Vec::with_capacity(k);
    for i in 0..k {
        let f = r.expect_tag("shape")?;
        if f.len() != 8 {
            return Err(r.err("shape record needs id and 7 statistics"));
        }
        let id: usize = r.parse("shape id", &f[0])?;
        if id != i {
            return Err(r.err(format!(
                "shape records out of order: expected {i}, found {id}"
            )));
        }
        let s = ShapeStats {
            outlier_prob: r.parse("outlier_prob", &f[1])?,
            p25: r.parse("p25", &f[2])?,
            p75: r.parse("p75", &f[3])?,
            p95: r.parse("p95", &f[4])?,
            std: r.parse("std", &f[5])?,
            n_groups: r.parse("n_groups", &f[6])?,
            n_instances: r.parse("n_instances", &f[7])?,
        };
        // ShapeCatalog::new ranks by IQR with partial_cmp; NaN would panic.
        if !s.iqr().is_finite() {
            return Err(r.err("shape percentiles must be finite"));
        }
        stats.push(s);
    }
    let mut pmfs = Vec::with_capacity(k);
    for i in 0..k {
        let f = r.expect_tag("pmf")?;
        let id: usize = r.parse("pmf id", f.first().map(String::as_str).unwrap_or(""))?;
        if id != i {
            return Err(r.err(format!(
                "pmf records out of order: expected {i}, found {id}"
            )));
        }
        let probs: Vec<f64> = r.parse_list_n("pmf probability", &f[1..], spec.n_bins)?;
        // Validate before Pmf::from_probs, which panics on invalid input.
        if !probs.iter().all(|p| p.is_finite() && *p >= 0.0)
            || (probs.iter().sum::<f64>() - 1.0).abs() >= 1e-6
        {
            return Err(r.err("pmf probabilities must be non-negative and sum to 1"));
        }
        pmfs.push(Pmf::from_probs(spec, probs));
    }
    let catalog = ShapeCatalog::new(normalization, spec, pmfs, stats);
    let header = r.expect_tag("members")?;
    if header.len() != 1 {
        return Err(r.err("members header needs a count"));
    }
    let n: usize = r.parse("membership count", &header[0])?;
    let mut memberships = BTreeMap::new();
    for _ in 0..n {
        let f = r.expect_tag("member")?;
        if f.len() != 3 {
            return Err(r.err("member record needs name,signature,shape"));
        }
        let key = parse_key(r, &f[0], &f[1])?;
        let shape: usize = r.parse("member shape", &f[2])?;
        if shape >= k {
            return Err(r.err(format!("member shape {shape} out of range (k = {k})")));
        }
        memberships.insert(key, shape);
    }
    Ok(Characterization {
        catalog,
        memberships,
        inertia,
    })
}

/// Writes a `label` stage output: train then test label maps.
pub fn write_labels<W: Write>(w: &mut W, a: &LabelsArtifact) -> io::Result<()> {
    write_label_map(w, "train", &a.train)?;
    write_label_map(w, "test", &a.test)
}

/// Reads an artifact written by [`write_labels`].
pub fn read_labels<R: BufRead>(r: &mut LineReader<R>) -> Result<LabelsArtifact, SerializeError> {
    Ok(LabelsArtifact {
        train: read_label_map(r, "train")?,
        test: read_label_map(r, "test")?,
    })
}

/// Writes a `train` stage output: the fitted predictor with its feature
/// selection, importances, extractor history, and concrete model.
pub fn write_predictor<W: Write>(w: &mut W, p: &ShapePredictor) -> io::Result<()> {
    writeln!(w, "predictor,{}", p.n_shapes())?;
    let sel = p.selection();
    writeln!(w, "selection,{},{}", sel.kept.len(), sel.dropped.len())?;
    write!(w, "kept")?;
    write_list(w, &sel.kept)?;
    let flat: Vec<usize> = sel.dropped.iter().flat_map(|&(a, b)| [a, b]).collect();
    write!(w, "dropped")?;
    write_list(w, &flat)?;
    write!(w, "importances,{}", p.full_importances().len())?;
    write_list(w, p.full_importances())?;
    write_history(w, p.extractor().history())?;
    match p.fitted() {
        FittedModel::Gbdt(m) => {
            writeln!(w, "model,gbdt")?;
            m.write_text(w)
        }
        FittedModel::Forest(m) => {
            writeln!(w, "model,forest")?;
            m.write_text(w)
        }
        FittedModel::NaiveBayes(m) => {
            writeln!(w, "model,nb")?;
            m.write_text(w)
        }
        FittedModel::Ensemble {
            gbdt,
            forest,
            nb,
            weights,
        } => {
            writeln!(w, "model,ensemble")?;
            write!(w, "weights")?;
            write_list(w, weights)?;
            gbdt.write_text(w)?;
            forest.write_text(w)?;
            nb.write_text(w)
        }
    }
}

/// Reads a predictor written by [`write_predictor`].
pub fn read_predictor<R: BufRead>(r: &mut LineReader<R>) -> Result<ShapePredictor, SerializeError> {
    let header = r.expect_tag("predictor")?;
    if header.len() != 1 {
        return Err(r.err("predictor header needs n_shapes"));
    }
    let n_shapes: usize = r.parse("n_shapes", &header[0])?;
    let sel_header = r.expect_tag("selection")?;
    if sel_header.len() != 2 {
        return Err(r.err("selection header needs kept,dropped counts"));
    }
    let n_kept: usize = r.parse("kept count", &sel_header[0])?;
    let n_dropped: usize = r.parse("dropped count", &sel_header[1])?;
    let kept_fields = r.expect_tag("kept")?;
    let kept: Vec<usize> = r.parse_list_n("kept feature", &kept_fields, n_kept)?;
    let dropped_fields = r.expect_tag("dropped")?;
    let flat: Vec<usize> = r.parse_list_n("dropped feature", &dropped_fields, 2 * n_dropped)?;
    let dropped: Vec<(usize, usize)> = flat.chunks_exact(2).map(|c| (c[0], c[1])).collect();
    let imp_fields = r.expect_tag("importances")?;
    let n_imp: usize = r.parse(
        "importance count",
        imp_fields.first().map(String::as_str).unwrap_or(""),
    )?;
    let full_importances: Vec<f64> = r.parse_list_n("importance", &imp_fields[1..], n_imp)?;
    let history = read_history(r)?;
    let model_fields = r.expect_tag("model")?;
    let kind = model_fields.first().map(String::as_str).unwrap_or("");
    let model = match kind {
        "gbdt" => FittedModel::Gbdt(GbdtClassifier::read_text(r)?),
        "forest" => FittedModel::Forest(RandomForestClassifier::read_text(r)?),
        "nb" => FittedModel::NaiveBayes(GaussianNb::read_text(r)?),
        "ensemble" => {
            let wf = r.expect_tag("weights")?;
            let weights: Vec<f64> = r.parse_list_n("ensemble weight", &wf, 3)?;
            FittedModel::Ensemble {
                gbdt: GbdtClassifier::read_text(r)?,
                forest: RandomForestClassifier::read_text(r)?,
                nb: GaussianNb::read_text(r)?,
                weights: [weights[0], weights[1], weights[2]],
            }
        }
        other => return Err(r.err(format!("unknown model kind `{other}`"))),
    };
    Ok(ShapePredictor::from_parts(
        FeatureExtractor::new(history),
        FeatureSelection { kept, dropped },
        model,
        n_shapes,
        full_importances,
    ))
}

/// Writes an `evaluate` stage output.
pub fn write_evaluation<W: Write>(w: &mut W, a: &EvaluationArtifact) -> io::Result<()> {
    let counts = a.confusion.counts();
    writeln!(
        w,
        "evaluation,{},{},{}",
        a.test_accuracy,
        counts.len(),
        a.n_test_instances
    )?;
    for row in counts {
        write!(w, "confusion")?;
        write_list(w, row)?;
    }
    Ok(())
}

/// Reads an artifact written by [`write_evaluation`].
pub fn read_evaluation<R: BufRead>(
    r: &mut LineReader<R>,
) -> Result<EvaluationArtifact, SerializeError> {
    let f = r.expect_tag("evaluation")?;
    if f.len() != 3 {
        return Err(r.err("evaluation record needs accuracy,k,n_test_instances"));
    }
    let test_accuracy: f64 = r.parse("accuracy", &f[0])?;
    let k: usize = r.parse("confusion size", &f[1])?;
    let n_test_instances: usize = r.parse("test instance count", &f[2])?;
    let mut counts = Vec::with_capacity(k);
    for _ in 0..k {
        let row_fields = r.expect_tag("confusion")?;
        counts.push(r.parse_list_n::<u64>("confusion count", &row_fields, k)?);
    }
    Ok(EvaluationArtifact {
        test_accuracy,
        confusion: ConfusionMatrix::from_counts(counts),
        n_test_instances,
    })
}
