//! On-disk artifact cache keyed by stage name and fingerprint.
//!
//! Files live flat in the cache directory as `<stage>-<fingerprint>.rva`.
//! The first line is a header `rv-artifact,v1,<stage>,<fingerprint>`; the
//! rest is the stage codec's body (see [`super::artifact`]). Writes go
//! through a temp file + rename so a crashed run never leaves a truncated
//! artifact under a valid name, and any parse failure on load — wrong
//! version, wrong fingerprint, corrupt body — degrades to a cache miss with
//! a warning on stderr rather than an error.

use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use rv_learn::{LineReader, SerializeError};
use rv_obs::counter;

use super::fingerprint::Fingerprint;

/// A directory of fingerprinted stage artifacts.
#[derive(Debug)]
pub struct ArtifactCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `(hits, misses)` observed by this handle so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn path(&self, stage: &str, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{stage}-{fp}.rva"))
    }

    /// Attempts to load the artifact for `(stage, fp)` with the stage's body
    /// reader. Returns `None` — recording a miss — when the file is absent
    /// or fails to parse.
    pub fn load<T>(
        &self,
        stage: &'static str,
        fp: Fingerprint,
        read: impl FnOnce(&mut LineReader<BufReader<File>>) -> Result<T, SerializeError>,
    ) -> Option<T> {
        let path = self.path(stage, fp);
        let loaded = File::open(&path).ok().and_then(|file| {
            let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
            let mut r = LineReader::new(BufReader::new(file));
            match Self::check_header(&mut r, stage, fp).and_then(|()| read(&mut r)) {
                Ok(v) => {
                    counter("pipeline.cache.bytes_read").add(bytes);
                    Some(v)
                }
                Err(e) => {
                    eprintln!(
                        "warning: discarding unreadable artifact {}: {e}",
                        path.display()
                    );
                    None
                }
            }
        });
        match &loaded {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                counter("pipeline.cache.hit").inc();
                counter(&format!("pipeline.cache.hit.{stage}")).inc();
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                counter("pipeline.cache.miss").inc();
                counter(&format!("pipeline.cache.miss.{stage}")).inc();
            }
        }
        loaded
    }

    fn check_header<R: io::BufRead>(
        r: &mut LineReader<R>,
        stage: &str,
        fp: Fingerprint,
    ) -> Result<(), SerializeError> {
        let fields = r.expect_tag("rv-artifact")?;
        if fields.len() != 3 {
            return Err(r.err("artifact header needs version,stage,fingerprint"));
        }
        if fields[0] != "v1" {
            return Err(r.err(format!("unsupported artifact version `{}`", fields[0])));
        }
        if fields[1] != stage {
            return Err(r.err(format!(
                "artifact is for stage `{}`, expected `{stage}`",
                fields[1]
            )));
        }
        if fields[2] != fp.to_string() {
            return Err(r.err(format!(
                "artifact fingerprint {} does not match expected {fp}",
                fields[2]
            )));
        }
        Ok(())
    }

    /// Persists an artifact: header plus the stage codec's body, written to
    /// a temp file and renamed into place.
    pub fn store<T: ?Sized>(
        &self,
        stage: &'static str,
        fp: Fingerprint,
        value: &T,
        write: impl FnOnce(&mut BufWriter<File>, &T) -> io::Result<()>,
    ) -> io::Result<()> {
        let path = self.path(stage, fp);
        let tmp = self.dir.join(format!(".{stage}-{fp}.tmp"));
        let mut w = BufWriter::new(File::create(&tmp)?);
        writeln!(w, "rv-artifact,v1,{stage},{fp}")?;
        write(&mut w, value)?;
        w.into_inner().map_err(io::Error::from)?.sync_all()?;
        fs::rename(&tmp, &path)?;
        if let Ok(meta) = fs::metadata(&path) {
            counter("pipeline.cache.bytes_written").add(meta.len());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rv-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn write_num(w: &mut BufWriter<File>, v: &u64) -> io::Result<()> {
        writeln!(w, "num,{v}")
    }

    fn read_num(r: &mut LineReader<BufReader<File>>) -> Result<u64, SerializeError> {
        let f = r.expect_tag("num")?;
        r.parse("num", &f[0])
    }

    #[test]
    fn stores_and_loads_round_trip() {
        let dir = temp_dir("roundtrip");
        let cache = ArtifactCache::new(&dir).expect("create");
        let fp = Fingerprint::of_bytes(b"x");
        assert_eq!(cache.load("simulate", fp, read_num), None);
        cache
            .store("simulate", fp, &42u64, write_num)
            .expect("store");
        assert_eq!(cache.load("simulate", fp, read_num), Some(42));
        assert_eq!(cache.stats(), (1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_fingerprint_or_stage_misses() {
        let dir = temp_dir("keying");
        let cache = ArtifactCache::new(&dir).expect("create");
        let fp = Fingerprint::of_bytes(b"x");
        cache
            .store("simulate", fp, &7u64, write_num)
            .expect("store");
        assert_eq!(
            cache.load("simulate", Fingerprint::of_bytes(b"y"), read_num),
            None
        );
        assert_eq!(cache.load("datasets", fp, read_num), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_is_a_miss_not_a_panic() {
        let dir = temp_dir("corrupt");
        let cache = ArtifactCache::new(&dir).expect("create");
        let fp = Fingerprint::of_bytes(b"x");
        cache
            .store("simulate", fp, &7u64, write_num)
            .expect("store");
        let path = dir.join(format!("simulate-{fp}.rva"));
        fs::write(&path, "rv-artifact,v1,simulate,garbage\n").expect("clobber");
        assert_eq!(cache.load("simulate", fp, read_num), None);
        // Tampered body under a valid header: reader fails, still a miss.
        fs::write(&path, format!("rv-artifact,v1,simulate,{fp}\nnope,1\n")).expect("clobber");
        assert_eq!(cache.load("simulate", fp, read_num), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
