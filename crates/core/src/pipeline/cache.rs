//! On-disk artifact cache keyed by stage name and fingerprint.
//!
//! Files live flat in the cache directory as `<stage>-<fingerprint>.rva`.
//! The first line is a header `rv-artifact,v2,<stage>,<fingerprint>,<body-checksum>`;
//! the rest is the stage codec's body (see [`super::artifact`]). The
//! checksum is an FNV-1a hash of the body bytes, so *any* corruption —
//! truncation, bit flips, partial writes that survived a crash — is
//! detected before the body is parsed, and degrades to a cache miss with a
//! warning on stderr rather than a panic or a silently wrong artifact.
//!
//! Writes serialize to memory once, then go through a temp file + rename
//! with a small bounded retry/backoff loop (`retry.store` counts spent
//! retries); loads read the file into memory and retry the parse only when
//! an installed [`super::fault`] plan injected the corruption (`retry.load`)
//! — real on-disk corruption is deterministic, so re-reading identical
//! bytes would never help and the load degrades to a miss immediately.

use std::fs::{self, File};
use std::io::{self, Cursor, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use rv_learn::{LineReader, SerializeError};
use rv_obs::counter;

use super::fault;
use super::fingerprint::Fingerprint;

/// Artifact format version tag, bumped when the header layout changes.
/// `v2` added the body checksum.
pub const ARTIFACT_VERSION: &str = "v2";

/// Write attempts per store (1 initial + 3 retries) — must exceed
/// `FaultConfig::max_faults_per_site` so injected torn writes always
/// converge.
const MAX_STORE_ATTEMPTS: u32 = 4;

/// Parse attempts per load; only injected corruption is retried.
const MAX_LOAD_ATTEMPTS: u32 = 4;

/// Exponential backoff before retry `attempt` (1-based): 2, 4, 8 ms.
fn backoff(attempt: u32) {
    std::thread::sleep(Duration::from_millis(1 << attempt.min(4)));
}

/// A directory of fingerprinted stage artifacts.
#[derive(Debug)]
pub struct ArtifactCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `(hits, misses)` observed by this handle so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn path(&self, stage: &str, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{stage}-{fp}.rva"))
    }

    /// Attempts to load the artifact for `(stage, fp)` with the stage's body
    /// reader. Returns `None` — recording a miss — when the file is absent
    /// or fails header, checksum, or body validation.
    pub fn load<T>(
        &self,
        stage: &'static str,
        fp: Fingerprint,
        read: impl Fn(&mut LineReader<Cursor<Vec<u8>>>) -> Result<T, SerializeError>,
    ) -> Option<T> {
        let path = self.path(stage, fp);
        let mut loaded = None;
        for attempt in 0..MAX_LOAD_ATTEMPTS {
            if attempt > 0 {
                counter("retry.load").inc();
                backoff(attempt);
            }
            let Ok(mut bytes) = fs::read(&path) else {
                break;
            };
            let n_bytes = bytes.len() as u64;
            let injected = fault::corrupt_load(stage, &mut bytes);
            match Self::parse(stage, fp, bytes, &read) {
                Ok(v) => {
                    counter("pipeline.cache.bytes_read").add(n_bytes);
                    loaded = Some(v);
                    break;
                }
                Err(e) => {
                    // Re-reading genuinely corrupt bytes yields the same
                    // bytes; only injected corruption is worth a retry.
                    if !injected || attempt + 1 == MAX_LOAD_ATTEMPTS {
                        eprintln!(
                            "warning: discarding unreadable artifact {}: {e}",
                            path.display()
                        );
                        break;
                    }
                }
            }
        }
        match &loaded {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                counter("pipeline.cache.hit").inc();
                counter(&format!("pipeline.cache.hit.{stage}")).inc();
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                counter("pipeline.cache.miss").inc();
                counter(&format!("pipeline.cache.miss.{stage}")).inc();
            }
        }
        loaded
    }

    /// Verifies the header (version, stage, fingerprint, body checksum)
    /// against `bytes`, then hands the body to `read`.
    fn parse<T>(
        stage: &str,
        fp: Fingerprint,
        bytes: Vec<u8>,
        read: impl Fn(&mut LineReader<Cursor<Vec<u8>>>) -> Result<T, SerializeError>,
    ) -> Result<T, SerializeError> {
        // No newline (e.g. the file was truncated inside the header line)
        // means an empty body; the checksum comparison rejects it below.
        let body_sum = match bytes.iter().position(|&b| b == b'\n') {
            Some(end) => Fingerprint::of_bytes(&bytes[end + 1..]),
            None => Fingerprint::of_bytes(&[]),
        };
        let mut r = LineReader::new(Cursor::new(bytes));
        let fields = r.expect_tag("rv-artifact")?;
        if fields.len() != 4 {
            return Err(r.err("artifact header needs version,stage,fingerprint,checksum"));
        }
        if fields[0] != ARTIFACT_VERSION {
            return Err(r.err(format!("unsupported artifact version `{}`", fields[0])));
        }
        if fields[1] != stage {
            return Err(r.err(format!(
                "artifact is for stage `{}`, expected `{stage}`",
                fields[1]
            )));
        }
        if fields[2] != fp.to_string() {
            return Err(r.err(format!(
                "artifact fingerprint {} does not match expected {fp}",
                fields[2]
            )));
        }
        if fields[3] != body_sum.to_string() {
            return Err(r.err(format!(
                "artifact body checksum {body_sum} does not match header {}",
                fields[3]
            )));
        }
        read(&mut r)
    }

    /// Persists an artifact: a checksummed header plus the stage codec's
    /// body, serialized to memory once and written through a temp file +
    /// rename, with bounded retry/backoff against transient write failures.
    pub fn store<T: ?Sized>(
        &self,
        stage: &'static str,
        fp: Fingerprint,
        value: &T,
        write: impl FnOnce(&mut Vec<u8>, &T) -> io::Result<()>,
    ) -> io::Result<()> {
        let mut body = Vec::new();
        write(&mut body, value)?;
        let mut buf = Vec::with_capacity(body.len() + 80);
        writeln!(
            buf,
            "rv-artifact,{ARTIFACT_VERSION},{stage},{fp},{}",
            Fingerprint::of_bytes(&body)
        )?;
        buf.extend_from_slice(&body);

        let path = self.path(stage, fp);
        let tmp = self.dir.join(format!(".{stage}-{fp}.tmp"));
        let mut last_err = None;
        for attempt in 0..MAX_STORE_ATTEMPTS {
            if attempt > 0 {
                counter("retry.store").inc();
                backoff(attempt);
            }
            match Self::try_write(&tmp, &path, &buf, stage) {
                Ok(()) => {
                    counter("pipeline.cache.bytes_written").add(buf.len() as u64);
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one attempt ran"))
    }

    /// One write attempt. An installed fault plan can make it die mid-write,
    /// leaving a torn temp file — exactly what a crash between write and
    /// rename produces; the artifact under its real name is never torn.
    fn try_write(tmp: &Path, path: &Path, buf: &[u8], stage: &str) -> io::Result<()> {
        let mut f = File::create(tmp)?;
        if let Some(keep) = fault::torn_write(stage, buf.len()) {
            f.write_all(&buf[..keep])?;
            f.sync_all()?;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!(
                    "injected fault: torn write of `{stage}` after {keep} of {} bytes",
                    buf.len()
                ),
            ));
        }
        f.write_all(buf)?;
        f.sync_all()?;
        fs::rename(tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rv-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn write_num(w: &mut Vec<u8>, v: &u64) -> io::Result<()> {
        writeln!(w, "num,{v}")
    }

    fn read_num(r: &mut LineReader<Cursor<Vec<u8>>>) -> Result<u64, SerializeError> {
        let f = r.expect_tag("num")?;
        r.parse("num", &f[0])
    }

    #[test]
    fn stores_and_loads_round_trip() {
        let dir = temp_dir("roundtrip");
        let cache = ArtifactCache::new(&dir).expect("create");
        let fp = Fingerprint::of_bytes(b"x");
        assert_eq!(cache.load("simulate", fp, read_num), None);
        cache
            .store("simulate", fp, &42u64, write_num)
            .expect("store");
        assert_eq!(cache.load("simulate", fp, read_num), Some(42));
        assert_eq!(cache.stats(), (1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_fingerprint_or_stage_misses() {
        let dir = temp_dir("keying");
        let cache = ArtifactCache::new(&dir).expect("create");
        let fp = Fingerprint::of_bytes(b"x");
        cache
            .store("simulate", fp, &7u64, write_num)
            .expect("store");
        assert_eq!(
            cache.load("simulate", Fingerprint::of_bytes(b"y"), read_num),
            None
        );
        assert_eq!(cache.load("datasets", fp, read_num), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_is_a_miss_not_a_panic() {
        let dir = temp_dir("corrupt");
        let cache = ArtifactCache::new(&dir).expect("create");
        let fp = Fingerprint::of_bytes(b"x");
        cache
            .store("simulate", fp, &7u64, write_num)
            .expect("store");
        let path = dir.join(format!("simulate-{fp}.rva"));
        fs::write(&path, "rv-artifact,v2,simulate,garbage,0\n").expect("clobber");
        assert_eq!(cache.load("simulate", fp, read_num), None);
        // Tampered body under a rebuilt-checksum header: the body parser
        // rejects it, still a miss.
        let body = "nope,1\n";
        let sum = Fingerprint::of_bytes(body.as_bytes());
        fs::write(&path, format!("rv-artifact,v2,simulate,{fp},{sum}\n{body}")).expect("clobber");
        assert_eq!(cache.load("simulate", fp, read_num), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn old_format_version_is_a_miss() {
        let dir = temp_dir("version");
        let cache = ArtifactCache::new(&dir).expect("create");
        let fp = Fingerprint::of_bytes(b"x");
        // A pre-checksum v1 artifact left by an older build: refused.
        let path = dir.join(format!("simulate-{fp}.rva"));
        fs::write(&path, format!("rv-artifact,v1,simulate,{fp}\nnum,7\n")).expect("write v1");
        assert_eq!(cache.load("simulate", fp, read_num), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_detects_parseable_corruption() {
        // A corruption the body parser would happily accept — a digit
        // flipped inside a number — must still be rejected by the checksum.
        let dir = temp_dir("checksum");
        let cache = ArtifactCache::new(&dir).expect("create");
        let fp = Fingerprint::of_bytes(b"x");
        cache
            .store("simulate", fp, &41u64, write_num)
            .expect("store");
        let path = dir.join(format!("simulate-{fp}.rva"));
        let text = fs::read_to_string(&path).expect("read");
        let tampered = text.replace("num,41", "num,43");
        assert_ne!(text, tampered, "tamper target present");
        fs::write(&path, tampered).expect("clobber");
        assert_eq!(
            cache.load("simulate", fp, read_num),
            None,
            "wrong-but-parseable body must not load"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
