//! Deterministic fault injection into the pipeline itself.
//!
//! `rv-sim` injects disruptions into the simulated *workload* (the paper's
//! C2); this module injects them into *our own machinery* — artifact writes
//! that die mid-write, loads that come back truncated or bit-flipped,
//! worker-pool tasks that panic, campaign instances that error — so the
//! retry, isolation, and checksum layers are exercised on every audit
//! instead of only on rare production incidents.
//!
//! Everything is driven by a seeded [`FaultPlan`]: whether a site faults,
//! how many attempts it poisons, and where the corruption lands are all
//! FNV-1a functions of `(seed, site)`. Two runs under the same plan inject
//! exactly the same faults; a run under a different seed explores a
//! different schedule. Faults are *consumed* — a site only poisons its
//! first `n ≤ max_faults_per_site` attempts — so bounded retries always
//! converge, and the converged output must be byte-identical to a
//! fault-free run (checked end to end by [`audit`]).
//!
//! The plan deliberately lives outside [`FrameworkConfig`]: stage
//! fingerprints hash the config, fingerprints are embedded in artifact
//! headers, and the whole point is that faulted and fault-free runs produce
//! identical artifacts. Installation is process-global ([`install`]) and
//! RAII-scoped by [`FaultGuard`].

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use rv_obs::counter;
use rv_par::fault::TaskFault;

use super::cache::ArtifactCache;
use super::fingerprint::Fingerprint;
use super::PipelineError;
use crate::framework::{Framework, FrameworkConfig};

/// Per-site fault probabilities and the consumption bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a stage's artifact write dies mid-write, leaving a
    /// torn temp file.
    pub torn_write_prob: f64,
    /// Probability that a stage's artifact load sees truncated or
    /// bit-flipped bytes.
    pub load_corruption_prob: f64,
    /// Probability that a worker-pool task (per item) panics.
    pub task_panic_prob: f64,
    /// Probability that a campaign instance (per item) fails with a typed
    /// error.
    pub instance_error_prob: f64,
    /// Most attempts a single site may poison; must stay below the retry
    /// budgets (4 attempts on cache and campaign paths) so injected faults
    /// are always transient.
    pub max_faults_per_site: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            torn_write_prob: 0.5,
            load_corruption_prob: 0.5,
            task_panic_prob: 0.02,
            instance_error_prob: 0.02,
            max_faults_per_site: 2,
        }
    }
}

/// A seeded, deterministic schedule of injected faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed selecting the schedule.
    pub seed: u64,
    /// Site probabilities.
    pub config: FaultConfig,
}

impl FaultPlan {
    /// A plan with the default probabilities under `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            config: FaultConfig::default(),
        }
    }

    /// A plan with explicit probabilities.
    pub fn with_config(seed: u64, config: FaultConfig) -> Self {
        Self { seed, config }
    }

    /// The plan's deterministic decision hash for `(kind, key, salt)`.
    fn site_hash(&self, kind: &str, key: &str, salt: u64) -> u64 {
        let mut buf = Vec::with_capacity(kind.len() + key.len() + 17);
        buf.extend_from_slice(&self.seed.to_le_bytes());
        buf.extend_from_slice(&salt.to_le_bytes());
        buf.extend_from_slice(kind.as_bytes());
        buf.push(0);
        buf.extend_from_slice(key.as_bytes());
        Fingerprint::of_bytes(&buf).0
    }
}

/// Maps a hash to a uniform fraction in `[0, 1)`.
fn frac(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The installed plan plus per-site attempt counts (for consumption).
struct Injector {
    plan: FaultPlan,
    attempts: Mutex<BTreeMap<(String, String), u32>>,
}

impl Injector {
    /// Consumes one attempt at `(kind, key)` and reports whether this
    /// attempt should fault: the site is selected with probability `prob`
    /// and poisons only its first `1..=max_faults_per_site` attempts.
    fn should_fault(&self, kind: &str, key: &str, prob: f64) -> bool {
        let h = self.plan.site_hash(kind, key, 0);
        if frac(h) >= prob {
            return false;
        }
        let planned =
            1 + ((h >> 17) % u64::from(self.plan.config.max_faults_per_site.max(1))) as u32;
        let mut attempts = self.attempts.lock().unwrap_or_else(|p| p.into_inner());
        let n = attempts
            .entry((kind.to_string(), key.to_string()))
            .or_insert(0);
        *n += 1;
        *n <= planned
    }

    /// The worker-pool hook: decides whether task `index` at `site` should
    /// panic or error on this attempt.
    fn task_fault(&self, site: &str, index: u64) -> Option<TaskFault> {
        let key = format!("{site}#{index}");
        let h = self.plan.site_hash("task", &key, 1);
        let x = frac(h);
        let c = self.plan.config;
        let kind = if x < c.task_panic_prob {
            TaskFault::Panic
        } else if x < c.task_panic_prob + c.instance_error_prob {
            TaskFault::Error
        } else {
            return None;
        };
        if !self.should_fault("task", &key, 1.0) {
            return None;
        }
        match kind {
            TaskFault::Panic => counter("fault.injected.task_panic").inc(),
            TaskFault::Error => counter("fault.injected.instance_error").inc(),
        }
        Some(kind)
    }
}

static ACTIVE_ON: AtomicBool = AtomicBool::new(false);
static ACTIVE: Mutex<Option<Arc<Injector>>> = Mutex::new(None);

fn active() -> Option<Arc<Injector>> {
    if !ACTIVE_ON.load(Ordering::Acquire) {
        return None;
    }
    ACTIVE.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Keeps a [`FaultPlan`] installed; dropping it uninstalls the plan and the
/// worker-pool hook.
#[must_use = "dropping the guard immediately uninstalls the plan"]
pub struct FaultGuard {
    _priv: (),
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        rv_par::fault::set_hook(None);
        ACTIVE_ON.store(false, Ordering::Release);
        *ACTIVE.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }
}

/// Installs `plan` process-wide: cache stores/loads and fault-aware task
/// sites (via the `rv-par` hook) start faulting on the plan's schedule.
///
/// # Panics
/// Panics if another plan is already installed — fault sessions must not
/// overlap, or their attempt accounting would interleave.
pub fn install(plan: FaultPlan) -> FaultGuard {
    rv_par::fault::install_quiet_panic_filter();
    let injector = Arc::new(Injector {
        plan,
        attempts: Mutex::new(BTreeMap::new()),
    });
    {
        let mut slot = ACTIVE.lock().unwrap_or_else(|p| p.into_inner());
        assert!(
            slot.is_none(),
            "a FaultPlan is already installed; drop its FaultGuard first"
        );
        *slot = Some(Arc::clone(&injector));
    }
    ACTIVE_ON.store(true, Ordering::Release);
    let hook = Arc::clone(&injector);
    rv_par::fault::set_hook(Some(Arc::new(move |site, idx| hook.task_fault(site, idx))));
    FaultGuard { _priv: () }
}

/// Consulted by [`ArtifactCache::store`] once per write attempt: `Some(keep)`
/// means this attempt must die after flushing only `keep` of `len` bytes.
pub(crate) fn torn_write(stage: &str, len: usize) -> Option<usize> {
    let inj = active()?;
    let prob = inj.plan.config.torn_write_prob;
    if !inj.should_fault("store", stage, prob) {
        return None;
    }
    counter("fault.injected.torn_write").inc();
    Some((inj.plan.site_hash("store-keep", stage, 2) as usize) % len.max(1))
}

/// Consulted by [`ArtifactCache::load`] once per parse attempt: corrupts
/// `bytes` in place (truncation or a single bit flip at a plan-chosen
/// offset) and reports whether it did.
pub(crate) fn corrupt_load(stage: &str, bytes: &mut Vec<u8>) -> bool {
    let Some(inj) = active() else {
        return false;
    };
    if bytes.is_empty() {
        return false;
    }
    let prob = inj.plan.config.load_corruption_prob;
    if !inj.should_fault("load", stage, prob) {
        return false;
    }
    let h = inj.plan.site_hash("load-at", stage, 3);
    let at = (h as usize) % bytes.len();
    if h & 1 == 0 {
        counter("fault.injected.load_truncate").inc();
        bytes.truncate(at);
    } else {
        counter("fault.injected.load_bitflip").inc();
        bytes[at] ^= 1 << ((h >> 8) % 8);
    }
    true
}

/// Why an [`audit`] could not even establish its baseline.
#[derive(Debug)]
pub enum AuditError {
    /// The fault-free baseline run failed.
    Pipeline(PipelineError),
    /// The work directory could not be prepared or read.
    Io(io::Error),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Pipeline(e) => write!(f, "baseline run failed: {e}"),
            Self::Io(e) => write!(f, "audit work directory: {e}"),
        }
    }
}

impl std::error::Error for AuditError {}

impl From<PipelineError> for AuditError {
    fn from(e: PipelineError) -> Self {
        Self::Pipeline(e)
    }
}

impl From<io::Error> for AuditError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// One fault schedule's outcome.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// The schedule's plan seed.
    pub seed: u64,
    /// `fault.*` counter deltas over the schedule's two runs.
    pub injected: Vec<(String, u64)>,
    /// `retry.*` counter deltas over the schedule's two runs.
    pub retries: Vec<(String, u64)>,
    /// `None` when cold run, warm run, and on-disk artifacts all matched
    /// the fault-free baseline byte for byte; otherwise what diverged.
    pub divergence: Option<String>,
}

/// The result of replaying a run under several fault schedules.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Artifacts the fault-free baseline produced.
    pub n_artifacts: usize,
    /// Per-schedule outcomes.
    pub schedules: Vec<ScheduleOutcome>,
}

impl AuditReport {
    /// Whether every schedule converged to the fault-free artifacts.
    pub fn converged(&self) -> bool {
        self.schedules.iter().all(|s| s.divergence.is_none())
    }

    /// Total faults injected across all schedules.
    pub fn total_injected(&self) -> u64 {
        self.schedules
            .iter()
            .flat_map(|s| s.injected.iter().map(|(_, v)| v))
            .sum()
    }

    /// Total retries spent recovering across all schedules.
    pub fn total_retries(&self) -> u64 {
        self.schedules
            .iter()
            .flat_map(|s| s.retries.iter().map(|(_, v)| v))
            .sum()
    }
}

/// Serializes a run's externally visible results (campaign, both catalogs,
/// every D3 prediction, both accuracies) — the digest divergence is judged
/// against.
fn run_digest(f: &Framework) -> Vec<u8> {
    let mut bytes = Vec::new();
    rv_telemetry::write_store(&f.store, &mut bytes).expect("in-memory write cannot fail");
    for pipe in [&f.ratio, &f.delta] {
        crate::persist::write_catalog(&pipe.characterization.catalog, &mut bytes)
            .expect("in-memory write cannot fail");
        for row in f.d3.store.rows() {
            bytes.push(pipe.predictor.predict_row(row) as u8);
        }
        bytes.extend_from_slice(&pipe.test_accuracy.to_be_bytes());
    }
    bytes
}

/// Every `.rva` artifact in `dir`, as `name → bytes`.
fn read_artifacts(dir: &Path) -> io::Result<BTreeMap<String, Vec<u8>>> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".rva") {
            out.insert(name, fs::read(entry.path())?);
        }
    }
    Ok(out)
}

/// First difference between a schedule's artifacts and the baseline's.
fn diff_artifacts(
    baseline: &BTreeMap<String, Vec<u8>>,
    faulted: &BTreeMap<String, Vec<u8>>,
) -> Option<String> {
    for (name, bytes) in baseline {
        match faulted.get(name) {
            None => return Some(format!("artifact `{name}` missing under faults")),
            Some(other) if other != bytes => {
                return Some(format!("artifact `{name}` differs from fault-free bytes"))
            }
            Some(_) => {}
        }
    }
    faulted
        .keys()
        .find(|name| !baseline.contains_key(*name))
        .map(|name| format!("unexpected artifact `{name}` under faults"))
}

fn counter_deltas(before: &[(String, u64)], after: &[(String, u64)]) -> Vec<(String, u64)> {
    let base: BTreeMap<&str, u64> = before.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    after
        .iter()
        .filter_map(|(n, v)| {
            let d = v - base.get(n.as_str()).copied().unwrap_or(0);
            (d > 0).then(|| (n.clone(), d))
        })
        .collect()
}

/// Replays `config` under `n_schedules` distinct fault schedules (seeds
/// `seed..seed+n`) and checks each converges — through retries, checksum
/// rejection, and task isolation — to artifacts byte-identical to a
/// fault-free baseline.
///
/// Each schedule runs the pipeline twice against its own cache directory
/// under `workdir`: a cold run (exercising write faults and task faults)
/// and a warm run (exercising load faults). Both runs' result digests and
/// the final cache contents are compared against the baseline.
///
/// # Errors
/// Fails only when the baseline itself cannot run or the work directory is
/// unusable; a diverging schedule is reported in its [`ScheduleOutcome`],
/// not as an error.
pub fn audit(
    config: &FrameworkConfig,
    n_schedules: u64,
    seed: u64,
    workdir: &Path,
) -> Result<AuditReport, AuditError> {
    let baseline_dir = workdir.join("baseline");
    let _ = fs::remove_dir_all(&baseline_dir);
    let cache = ArtifactCache::new(&baseline_dir)?;
    let baseline = Framework::run_cached(config.clone(), &cache)?;
    let baseline_digest = run_digest(&baseline);
    let baseline_files = read_artifacts(&baseline_dir)?;

    let mut schedules = Vec::new();
    for s in 0..n_schedules {
        let plan_seed = seed.wrapping_add(s);
        let dir = workdir.join(format!("schedule-{s}"));
        let _ = fs::remove_dir_all(&dir);
        let cache = ArtifactCache::new(&dir)?;

        let faults_before = rv_obs::counters_with_prefix("fault.");
        let retries_before = rv_obs::counters_with_prefix("retry.");
        let guard = install(FaultPlan::new(plan_seed));
        let cold = Framework::run_cached(config.clone(), &cache);
        let warm = Framework::run_cached(config.clone(), &cache);
        drop(guard);
        let injected = counter_deltas(&faults_before, &rv_obs::counters_with_prefix("fault."));
        let retries = counter_deltas(&retries_before, &rv_obs::counters_with_prefix("retry."));

        let divergence = check_schedule(cold, warm, &baseline_digest, &baseline_files, &dir);
        schedules.push(ScheduleOutcome {
            seed: plan_seed,
            injected,
            retries,
            divergence,
        });
    }
    Ok(AuditReport {
        n_artifacts: baseline_files.len(),
        schedules,
    })
}

fn check_schedule(
    cold: Result<Framework, PipelineError>,
    warm: Result<Framework, PipelineError>,
    baseline_digest: &[u8],
    baseline_files: &BTreeMap<String, Vec<u8>>,
    dir: &Path,
) -> Option<String> {
    let cold = match cold {
        Ok(f) => f,
        Err(e) => return Some(format!("cold run failed under faults: {e}")),
    };
    let warm = match warm {
        Ok(f) => f,
        Err(e) => return Some(format!("warm run failed under faults: {e}")),
    };
    if run_digest(&cold) != baseline_digest {
        return Some("cold run results differ from fault-free baseline".into());
    }
    if run_digest(&warm) != baseline_digest {
        return Some("warm (cache-loaded) run results differ from fault-free baseline".into());
    }
    match read_artifacts(dir) {
        Ok(files) => diff_artifacts(baseline_files, &files),
        Err(e) => Some(format!("could not read schedule artifacts: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(7);
        let b = FaultPlan::new(7);
        let c = FaultPlan::new(8);
        assert_eq!(
            a.site_hash("store", "simulate", 0),
            b.site_hash("store", "simulate", 0)
        );
        assert_ne!(
            a.site_hash("store", "simulate", 0),
            c.site_hash("store", "simulate", 0)
        );
        assert_ne!(
            a.site_hash("store", "simulate", 0),
            a.site_hash("load", "simulate", 0)
        );
    }

    #[test]
    fn faults_are_consumed_within_the_budget() {
        let inj = Injector {
            plan: FaultPlan::with_config(
                3,
                FaultConfig {
                    torn_write_prob: 1.0,
                    max_faults_per_site: 2,
                    ..FaultConfig::default()
                },
            ),
            attempts: Mutex::new(BTreeMap::new()),
        };
        let fired: Vec<bool> = (0..6)
            .map(|_| inj.should_fault("store", "simulate", 1.0))
            .collect();
        let n_fired = fired.iter().filter(|&&f| f).count();
        assert!(
            (1..=2).contains(&n_fired),
            "planned faults must be within 1..=max, got {n_fired}"
        );
        assert!(
            fired.iter().skip(2).all(|&f| !f),
            "attempts past the budget must run clean: {fired:?}"
        );
        // The first attempts are the poisoned ones.
        assert!(fired[0]);
    }

    #[test]
    fn frac_is_a_unit_fraction() {
        for h in [0, 1, u64::MAX, 0x9e37_79b9_7f4a_7c15] {
            let x = frac(h);
            assert!((0.0..1.0).contains(&x), "frac({h}) = {x}");
        }
    }

    #[test]
    fn no_plan_installed_means_no_faults() {
        // Must hold even when other tests in this binary install plans,
        // because attempt state is keyed by an installed injector.
        if active().is_none() {
            assert_eq!(torn_write("simulate", 100), None);
            let mut bytes = vec![1, 2, 3];
            assert!(!corrupt_load("simulate", &mut bytes));
            assert_eq!(bytes, vec![1, 2, 3]);
        }
    }
}
