//! Shapley-value explanation of the shape predictor (§6).
//!
//! For a target shape (e.g. the high-variance "Cluster 6" of Fig 9), we
//! estimate each feature's Shapley contribution to the predicted probability
//! of that shape over a sample of instances, then aggregate into per-feature
//! magnitude and direction statistics. Feature names come from the telemetry
//! schema so insights read like the paper's ("jobs with larger inputs ...
//! are more likely to have a large variation").

use rv_shap::{shap_summary, shapley_values, FeatureShapStats, ShapConfig};
use rv_telemetry::{JobTelemetry, FEATURE_NAMES};

use crate::predictor::ShapePredictor;

/// Per-feature explanation statistics for one target shape, named.
#[derive(Debug, Clone)]
pub struct ShapeExplanation {
    /// The shape being explained.
    pub target_shape: usize,
    /// Named per-feature statistics, sorted by mean |φ| descending. Names
    /// refer to the *full* feature schema.
    pub features: Vec<(&'static str, FeatureShapStats)>,
    /// Raw per-instance Shapley rows over the selected feature space
    /// (parallel to the instance sample used).
    pub shap_rows: Vec<Vec<f64>>,
}

impl ShapeExplanation {
    /// The statistics for one feature by schema name, if it survived feature
    /// selection.
    pub fn feature(&self, name: &str) -> Option<&FeatureShapStats> {
        self.features
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s)
    }

    /// Renders the top contributors with direction arrows.
    pub fn to_table(&self, top_n: usize) -> String {
        let mut out = format!(
            "Shapley attribution toward shape {} (top {top_n}):\n",
            self.target_shape
        );
        for (name, s) in self.features.iter().take(top_n) {
            let dir = if s.value_correlation > 0.15 {
                "higher value -> more likely"
            } else if s.value_correlation < -0.15 {
                "higher value -> less likely"
            } else {
                "direction mixed"
            };
            out.push_str(&format!(
                "  {name:<28} mean|phi| {:.5}  corr {:+.2}  ({dir})\n",
                s.mean_abs, s.value_correlation
            ));
        }
        out
    }
}

/// Explains the predictor's attraction toward `target_shape` over a sample
/// of telemetry rows, using `background_rows` as the Shapley background.
pub fn explain_shape(
    predictor: &ShapePredictor,
    sample_rows: &[&JobTelemetry],
    background_rows: &[&JobTelemetry],
    target_shape: usize,
    config: &ShapConfig,
) -> ShapeExplanation {
    assert!(!sample_rows.is_empty(), "need instances to explain");
    assert!(!background_rows.is_empty(), "need background instances");
    assert!(
        target_shape < predictor.n_shapes(),
        "target shape out of range"
    );

    let selection = predictor.selection();
    let background: Vec<Vec<f64>> = background_rows
        .iter()
        .map(|r| selection.project(&predictor.features_of(r)))
        .collect();
    let samples: Vec<Vec<f64>> = sample_rows
        .iter()
        .map(|r| selection.project(&predictor.features_of(r)))
        .collect();

    let shap_rows: Vec<Vec<f64>> = samples
        .iter()
        .map(|x| shapley_values(predictor.model(), x, target_shape, &background, config))
        .collect();
    let stats = shap_summary(&shap_rows, &samples);

    // Map selected-space feature indices back to schema names.
    let features: Vec<(&'static str, FeatureShapStats)> = stats
        .into_iter()
        .map(|s| (FEATURE_NAMES[selection.kept[s.feature]], s))
        .collect();

    ShapeExplanation {
        target_shape,
        features,
        shap_rows,
    }
}

#[cfg(test)]
mod tests {
    // End-to-end explanation behaviour is covered by the integration tests
    // (tests/end_to_end.rs) and the Fig 9 experiment; here we only check the
    // report-shaping helpers.
    use super::*;

    fn stats(feature: usize, mean_abs: f64, corr: f64) -> FeatureShapStats {
        FeatureShapStats {
            feature,
            mean_abs,
            mean: 0.0,
            value_correlation: corr,
            min: -mean_abs,
            max: mean_abs,
        }
    }

    #[test]
    fn lookup_and_table() {
        let e = ShapeExplanation {
            target_shape: 6,
            features: vec![
                ("log_hist_data_read_avg", stats(0, 0.2, 0.9)),
                ("allocated_tokens", stats(1, 0.1, -0.8)),
                ("cluster_load", stats(2, 0.01, 0.0)),
            ],
            shap_rows: vec![],
        };
        assert!(e.feature("allocated_tokens").is_some());
        assert!(e.feature("nonexistent").is_none());
        let t = e.to_table(2);
        assert!(t.contains("shape 6"));
        assert!(t.contains("log_hist_data_read_avg"));
        assert!(t.contains("more likely"));
        assert!(t.contains("less likely"));
        assert!(!t.contains("cluster_load"), "top_n=2 should truncate");
    }
}
