//! The end-to-end framework (Fig 2): one call from workload to predictor.
//!
//! [`Framework::run`] executes the whole study: simulate the measurement
//! campaign, assemble the D1/D2/D3 datasets (Table 1), characterize shapes
//! on D1 (Fig 5 / Table 2), label D2/D3 groups by posterior likelihood,
//! train the classifier on D2, and evaluate on D3 (Fig 7) — for both
//! normalizations. The returned struct exposes every intermediate product so
//! examples, experiments, and what-if analyses can be built on top.

use std::collections::BTreeMap;

use rv_learn::{accuracy, confusion_matrix, ConfusionMatrix};
use rv_scope::{GeneratorConfig, JobGroupKey, WorkloadGenerator};
use rv_sim::{Cluster, ClusterConfig, SimConfig};
use rv_stats::Normalization;
use rv_telemetry::{
    collect_telemetry, CampaignConfig, CampaignError, Dataset, DatasetSpec, FeatureExtractor,
    GroupHistory, TelemetryStore,
};

use crate::characterize::{characterize, Characterization, CharacterizeConfig};
use crate::predictor::{label_groups, PredictorConfig, ShapePredictor};

/// Configuration of a full framework run.
#[derive(Debug, Clone)]
pub struct FrameworkConfig {
    /// Workload population.
    pub generator: GeneratorConfig,
    /// Cluster provisioning.
    pub cluster: ClusterConfig,
    /// Execution physics.
    pub sim: SimConfig,
    /// Campaign length etc.
    pub campaign: CampaignConfig,
    /// Shape count for the catalog (the paper's 8).
    pub k: usize,
    /// Support threshold for characterization groups (the paper's 20).
    pub characterize_support: usize,
    /// Predictor configuration.
    pub predictor: PredictorConfig,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        Self {
            generator: GeneratorConfig {
                n_templates: 400,
                ..Default::default()
            },
            cluster: ClusterConfig::default(),
            sim: SimConfig::default(),
            campaign: CampaignConfig {
                window_days: 30.0,
                ..Default::default()
            },
            k: 8,
            characterize_support: 20,
            predictor: PredictorConfig {
                model: crate::predictor::ModelKind::Gbdt(rv_learn::GbdtConfig {
                    n_rounds: 100,
                    ..Default::default()
                }),
                ..PredictorConfig::default()
            },
        }
    }
}

impl FrameworkConfig {
    /// A scaled-down configuration for tests and quick demos (~1–2 s).
    pub fn small() -> Self {
        Self {
            generator: GeneratorConfig {
                n_templates: 48,
                ..Default::default()
            },
            campaign: CampaignConfig {
                window_days: 14.0,
                ..Default::default()
            },
            k: 4,
            characterize_support: 9,
            predictor: PredictorConfig {
                model: crate::predictor::ModelKind::Gbdt(rv_learn::GbdtConfig {
                    n_rounds: 25,
                    ..Default::default()
                }),
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// The per-normalization pipeline products.
pub struct NormalizationPipeline {
    /// Which normalization this pipeline used.
    pub normalization: Normalization,
    /// Shape catalog + D1 group memberships.
    pub characterization: Characterization,
    /// Posterior-likelihood shape labels for D2 groups.
    pub train_labels: BTreeMap<JobGroupKey, usize>,
    /// Posterior-likelihood shape labels for D3 groups.
    pub test_labels: BTreeMap<JobGroupKey, usize>,
    /// The trained predictor.
    pub predictor: ShapePredictor,
    /// Instance-level accuracy on D3.
    pub test_accuracy: f64,
    /// Instance-level confusion matrix on D3 (Fig 7a).
    pub confusion: ConfusionMatrix,
}

impl NormalizationPipeline {
    /// Per-instance `(truth, prediction, group)` triples over D3.
    pub fn test_predictions(&self, d3: &Dataset) -> Vec<(usize, usize, JobGroupKey)> {
        let mut out = Vec::new();
        for row in d3.store.rows() {
            if let Some(&truth) = self.test_labels.get(&row.group) {
                out.push((truth, self.predictor.predict_row(row), row.group.clone()));
            }
        }
        out
    }
}

/// All products of a full framework run.
pub struct Framework {
    /// The configuration used.
    pub config: FrameworkConfig,
    /// The full campaign telemetry.
    pub store: TelemetryStore,
    /// Characterization dataset (Table 1 D1 analog).
    pub d1: Dataset,
    /// Training dataset (D2 analog).
    pub d2: Dataset,
    /// Test dataset (D3 analog).
    pub d3: Dataset,
    /// Historic per-group statistics from D1 (feature source + normalization
    /// medians).
    pub history: GroupHistory,
    /// Ratio-normalization pipeline.
    pub ratio: NormalizationPipeline,
    /// Delta-normalization pipeline.
    pub delta: NormalizationPipeline,
}

impl Framework {
    /// Runs the full study.
    ///
    /// # Errors
    /// Returns [`CampaignError`] if the simulator or campaign configuration
    /// is invalid (see [`collect_telemetry`]).
    pub fn run(config: FrameworkConfig) -> Result<Self, CampaignError> {
        // Not a `phase.` span: it encloses the phases below, and the report's
        // share column assumes `phase.*` spans are disjoint.
        let _run_span = rv_obs::span("framework.run");
        let store = {
            let _span = rv_obs::span("phase.simulate");
            let mut generator_config = config.generator.clone();
            // Keep late-starting ("new job") templates inside the campaign.
            generator_config.window_days_hint = config.campaign.window_days;
            let generator = WorkloadGenerator::new(generator_config);
            let cluster = Cluster::new(config.cluster.clone());
            let store = collect_telemetry(&generator, &cluster, &config.sim, &config.campaign)?;
            rv_obs::counter("framework.telemetry_rows").add(store.len() as u64);
            store
        };

        let (d1, d2, d3, history) = {
            let _span = rv_obs::span("phase.datasets");
            let [d1_spec, d2_spec, d3_spec] = DatasetSpec::paper_trio(config.campaign.window_days);
            let d1 = Dataset::assemble(
                &store,
                DatasetSpec {
                    min_support: config.characterize_support,
                    ..d1_spec
                },
            );
            let d2 = Dataset::assemble(&store, d2_spec);
            let d3 = Dataset::assemble(&store, d3_spec);
            let history = GroupHistory::compute(&d1.store);
            rv_obs::counter("framework.d1_groups").add(d1.n_groups() as u64);
            (d1, d2, d3, history)
        };

        let ratio = Self::pipeline(
            Normalization::Ratio,
            &config,
            &store,
            &d1,
            &d2,
            &d3,
            &history,
        );
        let delta = Self::pipeline(
            Normalization::Delta,
            &config,
            &store,
            &d1,
            &d2,
            &d3,
            &history,
        );

        Ok(Self {
            config,
            store,
            d1,
            d2,
            d3,
            history,
            ratio,
            delta,
        })
    }

    fn pipeline(
        normalization: Normalization,
        config: &FrameworkConfig,
        full: &TelemetryStore,
        d1: &Dataset,
        d2: &Dataset,
        d3: &Dataset,
        history: &GroupHistory,
    ) -> NormalizationPipeline {
        let ch_config = CharacterizeConfig {
            k: config.k,
            min_support: config.characterize_support,
            ..CharacterizeConfig::paper(normalization)
        };
        let characterization = {
            let _span = rv_obs::span("phase.characterize");
            characterize(&d1.store, &ch_config)
        };
        let catalog = &characterization.catalog;

        // Labels are anchored to *long-interval* observations (§2, C2/C4:
        // "we develop the model using the observations of distributions
        // over a long time interval"): a group's training label uses every
        // observation up to the end of the training window, and the test
        // truth uses the group's full observed history. Short-window
        // re-labeling would make the target itself noisy for groups near a
        // shape boundary.
        let _label_span = rv_obs::span("phase.label");
        let upto_train_end: rv_telemetry::TelemetryStore = full
            .rows_in_window(0.0, d2.spec.to_days * 86_400.0)
            .into_iter()
            .cloned()
            .collect();
        let train_labels_all = label_groups(catalog, &upto_train_end, history);
        let test_labels_all = label_groups(catalog, full, history);
        let train_labels: BTreeMap<JobGroupKey, usize> = d2
            .store
            .group_keys()
            .filter_map(|k| train_labels_all.get(k).map(|&l| (k.clone(), l)))
            .collect();
        let test_labels: BTreeMap<JobGroupKey, usize> = d3
            .store
            .group_keys()
            .filter_map(|k| test_labels_all.get(k).map(|&l| (k.clone(), l)))
            .collect();

        drop(_label_span);

        let (predictor, _n_train) = {
            let _span = rv_obs::span("phase.train");
            ShapePredictor::train(
                &d2.store,
                &train_labels,
                FeatureExtractor::new(history.clone()),
                config.k,
                &config.predictor,
            )
        };

        // Instance-level evaluation on D3.
        let _eval_span = rv_obs::span("phase.evaluate");
        let mut truth = Vec::new();
        let mut predicted = Vec::new();
        for row in d3.store.rows() {
            if let Some(&label) = test_labels.get(&row.group) {
                truth.push(label);
                predicted.push(predictor.predict_row(row));
            }
        }
        assert!(!truth.is_empty(), "no labeled test instances");
        let test_accuracy = accuracy(&truth, &predicted);
        let confusion = confusion_matrix(&truth, &predicted, config.k);
        drop(_eval_span);
        rv_obs::counter("framework.pipelines").inc();
        rv_obs::gauge(&format!(
            "framework.accuracy.{}",
            normalization.name().to_ascii_lowercase()
        ))
        .set(test_accuracy);
        rv_obs::emit(
            "framework.pipeline",
            &[
                (
                    "normalization",
                    rv_obs::FieldValue::from(normalization.name()),
                ),
                ("test_accuracy", rv_obs::FieldValue::from(test_accuracy)),
                ("test_instances", rv_obs::FieldValue::from(truth.len())),
            ],
        );

        NormalizationPipeline {
            normalization,
            characterization,
            train_labels,
            test_labels,
            predictor,
            test_accuracy,
            confusion,
        }
    }

    /// The pipeline for one normalization.
    pub fn pipeline_for(&self, normalization: Normalization) -> &NormalizationPipeline {
        match normalization {
            Normalization::Ratio => &self.ratio,
            Normalization::Delta => &self.delta,
        }
    }

    /// Table 1 analog: `(name, n_groups, n_instances, support)` per dataset.
    pub fn dataset_summary(&self) -> Vec<(String, usize, usize, usize)> {
        [&self.d1, &self.d2, &self.d3]
            .iter()
            .map(|d| {
                (
                    d.spec.name.clone(),
                    d.n_groups(),
                    d.n_instances(),
                    d.spec.min_support,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One shared small run for all assertions (the run itself is the
    // expensive part).
    fn framework() -> &'static Framework {
        use std::sync::OnceLock;
        static FRAMEWORK: OnceLock<Framework> = OnceLock::new();
        FRAMEWORK.get_or_init(|| {
            Framework::run(FrameworkConfig::small()).expect("small config is valid")
        })
    }

    #[test]
    fn datasets_partition_campaign() {
        let f = framework();
        let summary = f.dataset_summary();
        assert_eq!(summary.len(), 3);
        assert_eq!(summary[0].0, "D1");
        // D1 must dominate instance counts (71% of the window, support 20).
        assert!(summary[0].2 > summary[1].2);
        assert!(summary[1].2 > 0 && summary[2].2 > 0);
        assert_eq!(summary[0].3, f.config.characterize_support);
        assert_eq!(summary[2].3, 3);
    }

    #[test]
    fn catalogs_have_k_ranked_shapes() {
        let f = framework();
        for pipe in [&f.ratio, &f.delta] {
            let cat = &pipe.characterization.catalog;
            assert_eq!(cat.n_shapes(), f.config.k);
            for i in 1..cat.n_shapes() {
                assert!(cat.stats(i).iqr() >= cat.stats(i - 1).iqr());
            }
        }
    }

    #[test]
    fn predictor_beats_chance_substantially() {
        let f = framework();
        let chance = 1.0 / f.config.k as f64;
        assert!(
            f.ratio.test_accuracy > chance + 0.3,
            "ratio accuracy {}",
            f.ratio.test_accuracy
        );
        assert!(
            f.delta.test_accuracy > chance + 0.3,
            "delta accuracy {}",
            f.delta.test_accuracy
        );
    }

    #[test]
    fn confusion_matches_accuracy() {
        let f = framework();
        assert!((f.ratio.confusion.accuracy() - f.ratio.test_accuracy).abs() < 1e-12);
    }

    #[test]
    fn labels_cover_test_groups() {
        let f = framework();
        assert!(!f.ratio.test_labels.is_empty());
        for key in f.d3.store.group_keys() {
            assert!(f.ratio.test_labels.contains_key(key), "unlabeled {key}");
        }
    }
}
