//! The end-to-end framework (Fig 2): one call from workload to predictor.
//!
//! [`Framework::run`] executes the whole study: simulate the measurement
//! campaign, assemble the D1/D2/D3 datasets (Table 1), characterize shapes
//! on D1 (Fig 5 / Table 2), label D2/D3 groups by posterior likelihood,
//! train the classifier on D2, and evaluate on D3 (Fig 7) — for both
//! normalizations. The returned struct exposes every intermediate product so
//! examples, experiments, and what-if analyses can be built on top.

use std::collections::BTreeMap;

use rv_learn::ConfusionMatrix;
use rv_scope::{GeneratorConfig, JobGroupKey};
use rv_sim::{ClusterConfig, SimConfig};
use rv_stats::Normalization;
use rv_telemetry::{CampaignConfig, Dataset, GroupHistory, TelemetryStore};

use crate::characterize::Characterization;
use crate::pipeline::{run_staged, ArtifactCache, PipelineError};
use crate::predictor::{PredictorConfig, ShapePredictor};

/// Configuration of a full framework run.
#[derive(Debug, Clone)]
pub struct FrameworkConfig {
    /// Workload population.
    pub generator: GeneratorConfig,
    /// Cluster provisioning.
    pub cluster: ClusterConfig,
    /// Execution physics.
    pub sim: SimConfig,
    /// Campaign length etc.
    pub campaign: CampaignConfig,
    /// Shape count for the catalog (the paper's 8).
    pub k: usize,
    /// Support threshold for characterization groups (the paper's 20).
    pub characterize_support: usize,
    /// Predictor configuration.
    pub predictor: PredictorConfig,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        Self {
            generator: GeneratorConfig {
                n_templates: 400,
                ..Default::default()
            },
            cluster: ClusterConfig::default(),
            sim: SimConfig::default(),
            campaign: CampaignConfig {
                window_days: 30.0,
                ..Default::default()
            },
            k: 8,
            characterize_support: 20,
            predictor: PredictorConfig {
                model: crate::predictor::ModelKind::Gbdt(rv_learn::GbdtConfig {
                    n_rounds: 100,
                    ..Default::default()
                }),
                ..PredictorConfig::default()
            },
        }
    }
}

impl FrameworkConfig {
    /// A scaled-down configuration for tests and quick demos (~1–2 s).
    pub fn small() -> Self {
        Self {
            generator: GeneratorConfig {
                n_templates: 48,
                ..Default::default()
            },
            campaign: CampaignConfig {
                window_days: 14.0,
                ..Default::default()
            },
            k: 4,
            characterize_support: 9,
            predictor: PredictorConfig {
                model: crate::predictor::ModelKind::Gbdt(rv_learn::GbdtConfig {
                    n_rounds: 25,
                    ..Default::default()
                }),
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// The per-normalization pipeline products.
pub struct NormalizationPipeline {
    /// Which normalization this pipeline used.
    pub normalization: Normalization,
    /// Shape catalog + D1 group memberships.
    pub characterization: Characterization,
    /// Posterior-likelihood shape labels for D2 groups.
    pub train_labels: BTreeMap<JobGroupKey, usize>,
    /// Posterior-likelihood shape labels for D3 groups.
    pub test_labels: BTreeMap<JobGroupKey, usize>,
    /// The trained predictor.
    pub predictor: ShapePredictor,
    /// Instance-level accuracy on D3.
    pub test_accuracy: f64,
    /// Instance-level confusion matrix on D3 (Fig 7a).
    pub confusion: ConfusionMatrix,
}

impl NormalizationPipeline {
    /// Per-instance `(truth, prediction, group)` triples over D3.
    pub fn test_predictions(&self, d3: &Dataset) -> Vec<(usize, usize, JobGroupKey)> {
        let mut out = Vec::new();
        for row in d3.store.rows() {
            if let Some(&truth) = self.test_labels.get(&row.group) {
                out.push((truth, self.predictor.predict_row(row), row.group.clone()));
            }
        }
        out
    }
}

/// All products of a full framework run.
pub struct Framework {
    /// The configuration used.
    pub config: FrameworkConfig,
    /// The full campaign telemetry.
    pub store: TelemetryStore,
    /// Characterization dataset (Table 1 D1 analog).
    pub d1: Dataset,
    /// Training dataset (D2 analog).
    pub d2: Dataset,
    /// Test dataset (D3 analog).
    pub d3: Dataset,
    /// Historic per-group statistics from D1 (feature source + normalization
    /// medians).
    pub history: GroupHistory,
    /// Ratio-normalization pipeline.
    pub ratio: NormalizationPipeline,
    /// Delta-normalization pipeline.
    pub delta: NormalizationPipeline,
}

impl Framework {
    /// Runs the full study as a staged pipeline (no caching).
    ///
    /// # Errors
    /// Returns [`PipelineError`] if the simulator or campaign configuration
    /// is invalid, or if a degenerate configuration leaves a stage with no
    /// usable data (too few groups for the catalog, no labeled training
    /// rows, no labeled test instances).
    pub fn run(config: FrameworkConfig) -> Result<Self, PipelineError> {
        run_staged(config, None)
    }

    /// Runs the full study, loading stage artifacts from `cache` where their
    /// fingerprints match and persisting recomputed ones.
    ///
    /// # Errors
    /// As [`Framework::run`]; cache I/O problems degrade to recomputation,
    /// never errors.
    pub fn run_cached(
        config: FrameworkConfig,
        cache: &ArtifactCache,
    ) -> Result<Self, PipelineError> {
        run_staged(config, Some(cache))
    }

    /// The pipeline for one normalization.
    pub fn pipeline_for(&self, normalization: Normalization) -> &NormalizationPipeline {
        match normalization {
            Normalization::Ratio => &self.ratio,
            Normalization::Delta => &self.delta,
        }
    }

    /// Table 1 analog: `(name, n_groups, n_instances, support)` per dataset.
    pub fn dataset_summary(&self) -> Vec<(String, usize, usize, usize)> {
        [&self.d1, &self.d2, &self.d3]
            .iter()
            .map(|d| {
                (
                    d.spec.name.clone(),
                    d.n_groups(),
                    d.n_instances(),
                    d.spec.min_support,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One shared small run for all assertions (the run itself is the
    // expensive part).
    fn framework() -> &'static Framework {
        use std::sync::OnceLock;
        static FRAMEWORK: OnceLock<Framework> = OnceLock::new();
        FRAMEWORK.get_or_init(|| {
            Framework::run(FrameworkConfig::small()).expect("small config is valid")
        })
    }

    #[test]
    fn datasets_partition_campaign() {
        let f = framework();
        let summary = f.dataset_summary();
        assert_eq!(summary.len(), 3);
        assert_eq!(summary[0].0, "D1");
        // D1 must dominate instance counts (71% of the window, support 20).
        assert!(summary[0].2 > summary[1].2);
        assert!(summary[1].2 > 0 && summary[2].2 > 0);
        assert_eq!(summary[0].3, f.config.characterize_support);
        assert_eq!(summary[2].3, 3);
    }

    #[test]
    fn catalogs_have_k_ranked_shapes() {
        let f = framework();
        for pipe in [&f.ratio, &f.delta] {
            let cat = &pipe.characterization.catalog;
            assert_eq!(cat.n_shapes(), f.config.k);
            for i in 1..cat.n_shapes() {
                assert!(cat.stats(i).iqr() >= cat.stats(i - 1).iqr());
            }
        }
    }

    #[test]
    fn predictor_beats_chance_substantially() {
        let f = framework();
        let chance = 1.0 / f.config.k as f64;
        assert!(
            f.ratio.test_accuracy > chance + 0.3,
            "ratio accuracy {}",
            f.ratio.test_accuracy
        );
        assert!(
            f.delta.test_accuracy > chance + 0.3,
            "delta accuracy {}",
            f.delta.test_accuracy
        );
    }

    #[test]
    fn confusion_matches_accuracy() {
        let f = framework();
        assert!((f.ratio.confusion.accuracy() - f.ratio.test_accuracy).abs() < 1e-12);
    }

    #[test]
    fn labels_cover_test_groups() {
        let f = framework();
        assert!(!f.ratio.test_labels.is_empty());
        for key in f.d3.store.group_keys() {
            assert!(f.ratio.test_labels.contains_key(key), "unlabeled {key}");
        }
    }
}
