//! The Griffon-style regression baseline and the Fig 8 comparison.
//!
//! §5.2 extends the random-forest regression model of Griffon \[65\] "by
//! adding more query optimizer and near-real-time machine status information
//! as features to predict the job runtime as the label", then shows that the
//! proposed classification approach reproduces the *distribution* of
//! runtimes better — especially the high percentiles where outliers live —
//! measured by Q–Q mean absolute error and Kolmogorov–Smirnov distance.
//!
//! The comparison runs in *normalized-runtime* space (runtime over/minus the
//! group's historic median, matching the paper's normalized axes): a point
//! regressor necessarily concentrates each group's predicted mass at its
//! conditional mean, so it cannot reproduce the within-group spread or the
//! rare-outlier tail; the classification approach samples from the predicted
//! shape PMF and can.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use rv_learn::{RandomForestConfig, RandomForestRegressor, Regressor};
use rv_stats::{ks_distance, qq_mae, qq_tail_mae};
use rv_telemetry::{FeatureExtractor, JobTelemetry, TelemetryStore};

use crate::predictor::ShapePredictor;
use crate::shapes::ShapeCatalog;

/// A random-forest runtime regressor over the same feature schema as the
/// shape predictor (log-runtime target for numeric stability, as is
/// standard for heavy-tailed latencies).
pub struct RuntimeRegressor {
    extractor: FeatureExtractor,
    model: RandomForestRegressor,
}

impl RuntimeRegressor {
    /// Trains on every row of `train`.
    pub fn train(
        train: &TelemetryStore,
        extractor: FeatureExtractor,
        config: &RandomForestConfig,
    ) -> Self {
        assert!(!train.is_empty(), "need training rows");
        let x: Vec<Vec<f64>> = train.rows().iter().map(|r| extractor.extract(r)).collect();
        let y: Vec<f64> = train.rows().iter().map(|r| r.runtime_s.ln_1p()).collect();
        let model = RandomForestRegressor::fit(&x, &y, config);
        Self { extractor, model }
    }

    /// Predicted runtime (seconds) for one row.
    pub fn predict_row(&self, row: &JobTelemetry) -> f64 {
        self.model
            .predict(&self.extractor.extract(row))
            .exp_m1()
            .max(0.0)
    }
}

/// The Fig 8 report: distribution fidelity of the two approaches, in
/// normalized-runtime units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityReport {
    /// Q–Q MAE of the regression baseline against actual runtimes.
    pub qq_mae_regression: f64,
    /// Q–Q MAE of the proposed classification approach.
    pub qq_mae_classification: f64,
    /// Q–Q MAE restricted to the ≥90th percentile (the outlier region).
    pub tail_mae_regression: f64,
    /// Tail Q–Q MAE of the classification approach.
    pub tail_mae_classification: f64,
    /// KS distance of the regression baseline.
    pub ks_regression: f64,
    /// KS distance of the classification approach.
    pub ks_classification: f64,
}

impl FidelityReport {
    /// Relative KS reduction of classification vs regression, in percent
    /// (the paper reports 9.2%).
    pub fn ks_reduction_pct(&self) -> f64 {
        if self.ks_regression == 0.0 {
            0.0
        } else {
            (self.ks_regression - self.ks_classification) / self.ks_regression * 100.0
        }
    }
}

/// Materializes both predicted runtime distributions over the test set and
/// compares them to the actual distribution (Fig 8).
///
/// For the classification approach each test row contributes one sample:
/// draw a normalized runtime from the row's *predicted* shape PMF and
/// denormalize it with the group's historic median (falling back to the
/// group's in-window median).
pub fn compare_distribution_fidelity(
    test: &TelemetryStore,
    predictor: &ShapePredictor,
    catalog: &ShapeCatalog,
    regressor: &RuntimeRegressor,
    seed: u64,
) -> FidelityReport {
    assert!(!test.is_empty(), "need test rows");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut actual = Vec::with_capacity(test.len());
    let mut reg_pred = Vec::with_capacity(test.len());
    let mut cls_pred = Vec::with_capacity(test.len());

    for row in test.rows() {
        let median = predictor
            .extractor()
            .history()
            .median_or(&row.group, &test.group_runtimes(&row.group))
            .expect("group has runtimes");
        // Everything is compared in normalized-runtime units.
        let norm = |runtime: f64| rv_stats::normalize(catalog.normalization, runtime, median);
        actual.push(norm(row.runtime_s));
        reg_pred.push(norm(regressor.predict_row(row)));
        let shape = predictor.predict_row(row);
        cls_pred.push(catalog.sample_normalized(shape, &mut rng));
    }

    let n_points = 200.min(actual.len());
    FidelityReport {
        qq_mae_regression: qq_mae(&actual, &reg_pred, n_points).expect("non-empty"),
        qq_mae_classification: qq_mae(&actual, &cls_pred, n_points).expect("non-empty"),
        tail_mae_regression: qq_tail_mae(&actual, &reg_pred, n_points, 0.9).expect("non-empty"),
        tail_mae_classification: qq_tail_mae(&actual, &cls_pred, n_points, 0.9).expect("non-empty"),
        ks_regression: ks_distance(&actual, &reg_pred).expect("non-empty"),
        ks_classification: ks_distance(&actual, &cls_pred).expect("non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ks_reduction_math() {
        let r = FidelityReport {
            qq_mae_regression: 2.0,
            qq_mae_classification: 1.0,
            tail_mae_regression: 5.0,
            tail_mae_classification: 2.0,
            ks_regression: 0.5,
            ks_classification: 0.45,
        };
        assert!((r.ks_reduction_pct() - 10.0).abs() < 1e-9);
        let z = FidelityReport {
            ks_regression: 0.0,
            ..r
        };
        assert_eq!(z.ks_reduction_pct(), 0.0);
    }
}
