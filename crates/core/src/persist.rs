//! Shape-catalog persistence.
//!
//! A catalog learned from a long characterization window (the expensive
//! step: months of telemetry in the paper) is reusable across sessions and
//! services. This module round-trips a [`ShapeCatalog`] through a compact,
//! serde-free text format: a header line with the normalization and bin
//! grid, one stats line per shape, then the PMF rows as sparse
//! `shape,bin,probability` triples (most of the 200 bins are empty).

use std::io::{BufRead, Write};

use rv_stats::{BinSpec, Normalization, Pmf};

use crate::shapes::{ShapeCatalog, ShapeStats};

/// Writes the catalog.
pub fn write_catalog<W: Write>(catalog: &ShapeCatalog, out: &mut W) -> std::io::Result<()> {
    writeln!(
        out,
        "catalog,{},{},{},{}",
        catalog.normalization.name(),
        catalog.spec.lo,
        catalog.spec.hi,
        catalog.spec.n_bins
    )?;
    for i in 0..catalog.n_shapes() {
        let s = catalog.stats(i);
        writeln!(
            out,
            "stats,{i},{},{},{},{},{},{},{}",
            s.outlier_prob, s.p25, s.p75, s.p95, s.std, s.n_groups, s.n_instances
        )?;
    }
    for i in 0..catalog.n_shapes() {
        for (b, &p) in catalog.pmf(i).probs().iter().enumerate() {
            if p > 0.0 {
                writeln!(out, "pmf,{i},{b},{p}")?;
            }
        }
    }
    Ok(())
}

/// Catalog parse error.
#[derive(Debug)]
pub struct CatalogParseError(pub String);

impl std::fmt::Display for CatalogParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "catalog parse error: {}", self.0)
    }
}

impl std::error::Error for CatalogParseError {}

/// Reads a catalog previously written by [`write_catalog`].
pub fn read_catalog<R: BufRead>(input: R) -> Result<ShapeCatalog, CatalogParseError> {
    let err = |m: String| CatalogParseError(m);
    let mut header: Option<(Normalization, BinSpec)> = None;
    let mut stats: Vec<(usize, ShapeStats)> = Vec::new();
    let mut weights: Vec<Vec<f64>> = Vec::new();

    for line in input.lines() {
        let line = line.map_err(|e| err(e.to_string()))?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let pf = |s: &str| -> Result<f64, CatalogParseError> {
            s.parse().map_err(|_| err(format!("bad float {s:?}")))
        };
        let pu = |s: &str| -> Result<usize, CatalogParseError> {
            s.parse().map_err(|_| err(format!("bad integer {s:?}")))
        };
        match fields[0] {
            "catalog" => {
                if fields.len() != 5 {
                    return Err(err("malformed catalog header".into()));
                }
                let normalization = match fields[1] {
                    "Ratio" => Normalization::Ratio,
                    "Delta" => Normalization::Delta,
                    other => return Err(err(format!("unknown normalization {other:?}"))),
                };
                let spec = BinSpec::new(pf(fields[2])?, pf(fields[3])?, pu(fields[4])?);
                header = Some((normalization, spec));
            }
            "stats" => {
                if fields.len() != 9 {
                    return Err(err("malformed stats line".into()));
                }
                stats.push((
                    pu(fields[1])?,
                    ShapeStats {
                        outlier_prob: pf(fields[2])?,
                        p25: pf(fields[3])?,
                        p75: pf(fields[4])?,
                        p95: pf(fields[5])?,
                        std: pf(fields[6])?,
                        n_groups: pu(fields[7])?,
                        n_instances: pu(fields[8])?,
                    },
                ));
            }
            "pmf" => {
                if fields.len() != 4 {
                    return Err(err("malformed pmf line".into()));
                }
                let (_, spec) = header.ok_or_else(|| err("pmf before header".into()))?;
                let shape = pu(fields[1])?;
                let bin = pu(fields[2])?;
                if bin >= spec.n_bins {
                    return Err(err(format!("bin {bin} out of range")));
                }
                while weights.len() <= shape {
                    weights.push(vec![0.0; spec.n_bins]);
                }
                weights[shape][bin] = pf(fields[3])?;
            }
            other => return Err(err(format!("unknown record kind {other:?}"))),
        }
    }

    let (normalization, spec) = header.ok_or_else(|| err("missing header".into()))?;
    if stats.len() != weights.len() || stats.is_empty() {
        return Err(err(format!(
            "shape count mismatch: {} stats vs {} pmfs",
            stats.len(),
            weights.len()
        )));
    }
    stats.sort_by_key(|&(i, _)| i);
    let pmfs: Vec<Pmf> = weights.iter().map(|w| Pmf::from_weights(spec, w)).collect();
    Ok(ShapeCatalog::new(
        normalization,
        spec,
        pmfs,
        stats.into_iter().map(|(_, s)| s).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_stats::Histogram;

    fn catalog() -> ShapeCatalog {
        let spec = BinSpec::ratio();
        let a: Vec<f64> = (0..500).map(|i| 0.9 + (i % 40) as f64 * 0.005).collect();
        let mut b: Vec<f64> = (0..500).map(|i| 0.5 + (i % 80) as f64 * 0.03).collect();
        b.extend(vec![12.0; 10]);
        let mk = |s: &[f64]| {
            (
                Histogram::from_samples(spec, s.iter().copied()).to_pmf(),
                ShapeStats::from_samples(s, &spec, 7).expect("non-empty"),
            )
        };
        let (p1, s1) = mk(&a);
        let (p2, s2) = mk(&b);
        ShapeCatalog::new(Normalization::Ratio, spec, vec![p1, p2], vec![s1, s2])
    }

    #[test]
    fn round_trip_preserves_catalog() {
        let c = catalog();
        let mut buf = Vec::new();
        write_catalog(&c, &mut buf).expect("write");
        let restored = read_catalog(std::io::BufReader::new(&buf[..])).expect("parse");
        assert_eq!(restored.normalization, c.normalization);
        assert_eq!(restored.spec, c.spec);
        assert_eq!(restored.n_shapes(), c.n_shapes());
        for i in 0..c.n_shapes() {
            assert_eq!(restored.stats(i), c.stats(i));
            for (a, b) in restored.pmf(i).probs().iter().zip(c.pmf(i).probs()) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn assignment_identical_after_round_trip() {
        let c = catalog();
        let mut buf = Vec::new();
        write_catalog(&c, &mut buf).expect("write");
        let restored = read_catalog(std::io::BufReader::new(&buf[..])).expect("parse");
        let obs: Vec<f64> = vec![0.95, 1.0, 1.02, 0.98, 11.0];
        let (s1, ll1) = crate::likelihood::assign_samples(&c, &obs);
        let (s2, ll2) = crate::likelihood::assign_samples(&restored, &obs);
        assert_eq!(s1, s2);
        for (a, b) in ll1.iter().zip(&ll2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_catalog(std::io::BufReader::new("nonsense,1,2\n".as_bytes())).is_err());
        assert!(read_catalog(std::io::BufReader::new("".as_bytes())).is_err());
        assert!(read_catalog(std::io::BufReader::new("pmf,0,5,0.5\n".as_bytes())).is_err());
        // Bin out of range.
        let bad = "catalog,Ratio,0,10,200\nstats,0,0,0,0,0,0,1,1\npmf,0,999,1.0\n";
        assert!(read_catalog(std::io::BufReader::new(bad.as_bytes())).is_err());
    }
}
