//! Report helpers: CSV writing and aligned text tables for the experiment
//! harness.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Writes rows of `f64` columns (with a header) as CSV.
pub fn write_csv(
    path: &Path,
    header: &[&str],
    rows: impl IntoIterator<Item = Vec<f64>>,
) -> io::Result<()> {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let mut first = true;
        for v in row {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "{v}");
            first = false;
        }
        out.push('\n');
    }
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, out)
}

/// Writes pre-formatted string records as CSV (caller handles quoting).
pub fn write_csv_records(
    path: &Path,
    header: &[&str],
    rows: impl IntoIterator<Item = Vec<String>>,
) -> io::Result<()> {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, out)
}

/// Renders an aligned text table with a header row.
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), n_cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        let _ = write!(out, "{:>width$}  ", h, width = widths[i]);
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:>width$}  ", cell, width = widths[i]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("rv-core-report-test");
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], vec![vec![1.0, 2.5], vec![3.0, 4.0]]).expect("write");
        let content = fs::read_to_string(&path).expect("read");
        assert_eq!(content, "a,b\n1,2.5\n3,4\n");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn records_csv() {
        let dir = std::env::temp_dir().join("rv-core-report-test2");
        let path = dir.join("r.csv");
        write_csv_records(
            &path,
            &["name", "v"],
            vec![vec!["x".to_string(), "1".to_string()]],
        )
        .expect("write");
        assert_eq!(fs::read_to_string(&path).expect("read"), "name,v\nx,1\n");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_alignment() {
        let t = text_table(
            &["id", "value"],
            &[
                vec!["1".into(), "10.5".into()],
                vec!["22".into(), "3".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("id"));
        assert!(lines[1].ends_with("10.5  "));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_table_panics() {
        text_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
