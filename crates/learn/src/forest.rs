//! Random forests: bagged CART trees with per-split feature subsampling.
//!
//! `RandomForestClassifier` is one of the §5.2 model family;
//! `RandomForestRegressor` is the Griffon-style \[65\] baseline that predicts
//! the raw runtime directly (extended, as in the paper, with optimizer and
//! machine-status features). Trees train in parallel through `rv-par`
//! (which this module's original ad-hoc pool was generalized into).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::data::BinnedMatrix;
use crate::tree::{ClassificationTree, GradientTree, TreeConfig};
use crate::{Classifier, Regressor};

/// Random forest hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree hyper-parameters. `features_per_split = None` defaults to
    /// `sqrt(n_features)` for classification and `n_features / 3` for
    /// regression, the conventional choices.
    pub tree: TreeConfig,
    /// Bootstrap sample fraction (1.0 = classic bagging with replacement).
    pub sample_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for tree fitting (`0` = auto via `rv-par`,
    /// `1` = sequential). Thread count never changes the fitted forest.
    pub n_threads: usize,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 60,
            tree: TreeConfig {
                max_depth: 12,
                min_samples_leaf: 3,
                ..Default::default()
            },
            sample_fraction: 1.0,
            seed: 0xf0e5,
            n_threads: 0,
        }
    }
}

fn bootstrap_rows(n: usize, fraction: f64, rng: &mut SmallRng) -> Vec<usize> {
    let k = ((n as f64 * fraction).round() as usize).max(1);
    (0..k).map(|_| rng.gen_range(0..n)).collect()
}

fn default_mtry_classification(n_features: usize) -> usize {
    (n_features as f64).sqrt().round().max(1.0) as usize
}

fn default_mtry_regression(n_features: usize) -> usize {
    (n_features / 3).max(1)
}

/// A bagged ensemble of Gini classification trees.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForestClassifier {
    trees: Vec<ClassificationTree>,
    n_classes: usize,
    n_features: usize,
}

impl RandomForestClassifier {
    /// Fits the forest on row-major features `x` and labels `y` (dense
    /// `0..n_classes`).
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, config: &RandomForestConfig) -> Self {
        assert_eq!(x.len(), y.len(), "row/label count mismatch");
        assert!(!x.is_empty(), "need training data");
        let binned = BinnedMatrix::from_rows(x, 32);
        let n_features = binned.n_features();
        let mut tree_cfg = config.tree;
        if tree_cfg.features_per_split.is_none() {
            tree_cfg.features_per_split = Some(default_mtry_classification(n_features));
        }
        // Trees already saturate the pool; keep each tree's own split
        // search serial rather than nesting worker pools.
        tree_cfg.n_threads = 1;
        let trees = rv_par::par_map(config.n_trees, config.n_threads, |i| {
            let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(i as u64 * 7919));
            let rows = bootstrap_rows(x.len(), config.sample_fraction, &mut rng);
            ClassificationTree::fit(&binned, y, n_classes, &rows, &tree_cfg, &mut rng)
        });
        Self {
            trees,
            n_classes,
            n_features,
        }
    }

    /// The fitted trees.
    pub fn trees(&self) -> &[ClassificationTree] {
        &self.trees
    }

    /// Mean impurity-decrease importance per feature, normalized to sum 1.
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for t in &self.trees {
            t.tree().accumulate_importance(&mut imp);
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Writes as a `forest` header followed by one `ctree` block per tree.
    pub fn write_text<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        writeln!(
            w,
            "forest,{},{},{}",
            self.trees.len(),
            self.n_classes,
            self.n_features
        )?;
        for t in &self.trees {
            t.write_text(w)?;
        }
        Ok(())
    }

    /// Reads a model written by [`RandomForestClassifier::write_text`].
    pub fn read_text<R: std::io::BufRead>(
        r: &mut crate::serialize::LineReader<R>,
    ) -> Result<Self, crate::serialize::SerializeError> {
        let header = r.expect_tag("forest")?;
        if header.len() != 3 {
            return Err(r.err("forest header needs n_trees,n_classes,n_features"));
        }
        let n_trees: usize = r.parse("n_trees", &header[0])?;
        let n_classes: usize = r.parse("n_classes", &header[1])?;
        let n_features: usize = r.parse("n_features", &header[2])?;
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            trees.push(ClassificationTree::read_text(r)?);
        }
        Ok(Self {
            trees,
            n_classes,
            n_features,
        })
    }
}

impl Classifier for RandomForestClassifier {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_classes];
        for t in &self.trees {
            for (a, p) in acc.iter_mut().zip(t.predict_proba(x)) {
                *a += p;
            }
        }
        let n = self.trees.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }
}

/// A bagged ensemble of variance-reduction regression trees.
///
/// Implemented on the gradient-tree machinery with squared loss: with
/// gradients `-(y - 0)` and unit hessians, unregularized leaves recover the
/// local target mean.
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    trees: Vec<GradientTree>,
}

impl RandomForestRegressor {
    /// Fits the forest on row-major features `x` and continuous targets `y`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: &RandomForestConfig) -> Self {
        assert_eq!(x.len(), y.len(), "row/target count mismatch");
        assert!(!x.is_empty(), "need training data");
        let binned = BinnedMatrix::from_rows(x, 32);
        let grad: Vec<f64> = y.iter().map(|&v| -v).collect();
        let hess = vec![1.0; y.len()];
        let mut tree_cfg = config.tree;
        tree_cfg.lambda = 0.0;
        if tree_cfg.features_per_split.is_none() {
            tree_cfg.features_per_split = Some(default_mtry_regression(binned.n_features()));
        }
        tree_cfg.n_threads = 1;
        let trees = rv_par::par_map(config.n_trees, config.n_threads, |i| {
            let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(i as u64 * 6271));
            let rows = bootstrap_rows(x.len(), config.sample_fraction, &mut rng);
            GradientTree::fit(&binned, &grad, &hess, &rows, &tree_cfg, &mut rng)
        });
        Self { trees }
    }
}

impl Regressor for RandomForestRegressor {
    fn predict(&self, x: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-class task: class = which third x0 falls in, plus a noise feature.
    fn task() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let v = (i % 30) as f64;
            x.push(vec![v, (i % 13) as f64]);
            y.push(if v < 10.0 {
                0
            } else if v < 20.0 {
                1
            } else {
                2
            });
        }
        (x, y)
    }

    #[test]
    fn classifier_learns_clean_task() {
        let (x, y) = task();
        let rf = RandomForestClassifier::fit(
            &x,
            &y,
            3,
            &RandomForestConfig {
                n_trees: 20,
                ..Default::default()
            },
        );
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| rf.predict(xi) == yi)
            .count() as f64
            / x.len() as f64;
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn proba_valid() {
        let (x, y) = task();
        let rf = RandomForestClassifier::fit(
            &x,
            &y,
            3,
            &RandomForestConfig {
                n_trees: 10,
                ..Default::default()
            },
        );
        let p = rf.predict_proba(&x[0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = task();
        let cfg = RandomForestConfig {
            n_trees: 8,
            seed: 77,
            ..Default::default()
        };
        let a = RandomForestClassifier::fit(&x, &y, 3, &cfg);
        let b = RandomForestClassifier::fit(&x, &y, 3, &cfg);
        for xi in x.iter().take(30) {
            assert_eq!(a.predict_proba(xi), b.predict_proba(xi));
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (x, y) = task();
        let base = RandomForestConfig {
            n_trees: 8,
            seed: 5,
            ..Default::default()
        };
        let seq = RandomForestClassifier::fit(
            &x,
            &y,
            3,
            &RandomForestConfig {
                n_threads: 1,
                ..base
            },
        );
        let par = RandomForestClassifier::fit(
            &x,
            &y,
            3,
            &RandomForestConfig {
                n_threads: 4,
                ..base
            },
        );
        for xi in x.iter().take(30) {
            assert_eq!(seq.predict_proba(xi), par.predict_proba(xi));
        }
    }

    #[test]
    fn importances_favor_informative_feature() {
        let (x, y) = task();
        let rf = RandomForestClassifier::fit(
            &x,
            &y,
            3,
            &RandomForestConfig {
                n_trees: 20,
                ..Default::default()
            },
        );
        let imp = rf.feature_importances();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.8, "importances {imp:?}");
    }

    #[test]
    fn regressor_fits_step_function() {
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 20) as f64]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] < 10.0 { 5.0 } else { 25.0 })
            .collect();
        let rf = RandomForestRegressor::fit(
            &x,
            &y,
            &RandomForestConfig {
                n_trees: 20,
                ..Default::default()
            },
        );
        for (xi, yi) in x.iter().zip(&y).take(40) {
            assert!(
                (rf.predict(xi) - yi).abs() < 2.0,
                "pred {} vs {}",
                rf.predict(xi),
                yi
            );
        }
    }

    #[test]
    fn regressor_underestimates_rare_outliers() {
        // The paper's Fig 8 point: a mean-seeking regressor cannot place
        // mass on rare outliers — predictions cluster near the bulk mean.
        let mut x: Vec<Vec<f64>> = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            x.push(vec![(i % 10) as f64]);
            // Outliers land on a schedule co-prime with the feature cycle,
            // so they are unpredictable from x (like rare disruptions).
            y.push(if i % 21 == 0 { 500.0 } else { 10.0 });
        }
        let rf = RandomForestRegressor::fit(&x, &y, &RandomForestConfig::default());
        let preds: Vec<f64> = x.iter().map(|xi| rf.predict(xi)).collect();
        let max_pred = preds.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max_pred < 200.0,
            "regressor should not reproduce the 500 s tail, got {max_pred}"
        );
    }
}
